//! Cross-crate correctness: for every TPC-H query, the simulated engine
//! (shared and unshared, every policy) must produce exactly the rows
//! the synchronous reference executor and the naive straight-line
//! implementations produce.

use cordoba::engine::{run_once, EngineConfig, Policy};
use cordoba::exec::reference;
use cordoba::storage::tpch::{generate, TpchConfig};
use cordoba::storage::Value;
use cordoba::workload::queries::all;
use cordoba::workload::CostProfile;

fn catalog() -> cordoba::storage::Catalog {
    generate(&TpchConfig {
        scale_factor: 0.002,
        seed: 99,
        ..TpchConfig::default()
    })
}

#[test]
fn every_query_matches_reference_unshared_and_shared() {
    let catalog = catalog();
    for spec in all(&CostProfile::paper()) {
        let expected = reference::execute(&catalog, &spec.plan);
        assert!(!expected.is_empty(), "{} must return rows", spec.name);
        for (policy, label) in [
            (Policy::NeverShare, "never"),
            (Policy::AlwaysShare, "always"),
        ] {
            let cfg = EngineConfig {
                contexts: 4,
                policy,
                ..EngineConfig::default()
            };
            let out = run_once(&catalog, &vec![spec.clone(); 3], &cfg);
            for (i, rows) in out.results.iter().enumerate() {
                assert_eq!(
                    rows, &expected,
                    "{} member {i} under {label} diverged",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn shared_groups_form_only_under_sharing_policies() {
    let catalog = catalog();
    let spec = &all(&CostProfile::paper())[0];
    let never = run_once(
        &catalog,
        &vec![spec.clone(); 4],
        &EngineConfig {
            contexts: 2,
            policy: Policy::NeverShare,
            ..EngineConfig::default()
        },
    );
    assert_eq!(never.group_sizes, vec![1, 1, 1, 1]);
    let always = run_once(
        &catalog,
        &vec![spec.clone(); 4],
        &EngineConfig {
            contexts: 2,
            policy: Policy::AlwaysShare,
            ..EngineConfig::default()
        },
    );
    assert_eq!(always.group_sizes, vec![4]);
}

#[test]
fn q6_revenue_matches_naive_through_the_simulated_engine() {
    let catalog = catalog();
    let spec = cordoba::workload::q6(&CostProfile::paper());
    let cfg = EngineConfig {
        contexts: 8,
        policy: Policy::AlwaysShare,
        ..EngineConfig::default()
    };
    let out = run_once(&catalog, &vec![spec; 2], &cfg);
    let naive = cordoba::workload::naive::q6(&catalog);
    for rows in &out.results {
        assert_eq!(rows.len(), 1);
        let got = rows[0][0].as_float().unwrap();
        assert!((got - naive).abs() < 1e-6 * naive.abs());
    }
}

#[test]
fn mixed_q1_q6_group_merges_at_the_common_scan_and_stays_correct() {
    // Q1 and Q6 share the identical lineitem scan: a mixed group must
    // merge into one scan and still produce each query's own answer.
    let catalog = catalog();
    let costs = CostProfile::paper();
    let q1 = cordoba::workload::q1(&costs);
    let q6 = cordoba::workload::q6(&costs);
    let cfg = EngineConfig {
        contexts: 4,
        policy: Policy::AlwaysShare,
        ..EngineConfig::default()
    };
    let out = run_once(&catalog, &[q1.clone(), q6.clone(), q1.clone()], &cfg);
    assert_eq!(out.group_sizes, vec![3], "Q1+Q6 must merge at the scan");
    let expect_q1 = reference::execute(&catalog, &q1.plan);
    let expect_q6 = reference::execute(&catalog, &q6.plan);
    assert_eq!(out.results[0], expect_q1);
    assert_eq!(out.results[1], expect_q6);
    assert_eq!(out.results[2], expect_q1);
}

#[test]
fn clients_with_different_predicates_share_one_scan() {
    // The paper's Figure 1 setup verbatim: "Different clients use
    // different predicates, however, all clients share the common task
    // of scanning the same large table before applying their private
    // predicates."
    use cordoba::workload::{q6_with_params, Q6Params};
    let catalog = catalog();
    let costs = CostProfile::paper();
    let clients: Vec<_> = (0..6)
        .map(|c| q6_with_params(&costs, Q6Params::for_client(c)))
        .collect();
    let cfg = EngineConfig {
        contexts: 4,
        policy: Policy::AlwaysShare,
        ..EngineConfig::default()
    };
    let out = run_once(&catalog, &clients, &cfg);
    // One group, one scan, six private filter/aggregate chains.
    assert_eq!(out.group_sizes, vec![6]);
    let scans = out
        .task_stats
        .iter()
        .filter(|(n, _)| n.contains("scan(lineitem)"))
        .count();
    assert_eq!(scans, 1, "exactly one shared scan instance");
    // Every client gets its own (distinct, correct) answer.
    let mut revenues = Vec::new();
    for (spec, rows) in clients.iter().zip(&out.results) {
        let expected = reference::execute(&catalog, &spec.plan);
        assert_eq!(rows, &expected, "{:?}", spec.name);
        revenues.push(rows[0][0].as_float().unwrap());
    }
    let distinct = {
        let mut r: Vec<u64> = revenues.iter().map(|v| v.to_bits()).collect();
        r.sort_unstable();
        r.dedup();
        r.len()
    };
    assert!(
        distinct >= 4,
        "different predicates give different revenues: {revenues:?}"
    );
}

#[test]
fn model_guided_policy_results_always_correct() {
    // Whatever the policy decides, answers must not change.
    let catalog = catalog();
    let costs = CostProfile::paper();
    let specs = [
        cordoba::workload::q4(&costs),
        cordoba::workload::q4(&costs),
        cordoba::workload::q13(&costs),
    ];
    let models = {
        let mut m = std::collections::HashMap::new();
        for spec in [
            cordoba::workload::q4(&costs),
            cordoba::workload::q13(&costs),
        ] {
            let (info, _) = cordoba::engine::profiling::profile_query(
                &catalog,
                &spec,
                &EngineConfig::default(),
            )
            .expect("profiling succeeds");
            m.insert(spec.name.clone(), info);
        }
        m
    };
    let cfg = EngineConfig {
        contexts: 2,
        policy: Policy::ModelGuided {
            models,
            hysteresis: 0.0,
        },
        ..EngineConfig::default()
    };
    let out = run_once(&catalog, &specs, &cfg);
    for (spec, rows) in specs.iter().zip(&out.results) {
        assert_eq!(
            rows,
            &reference::execute(&catalog, &spec.plan),
            "{}",
            spec.name
        );
    }
}

#[test]
fn results_are_deterministic_across_runs() {
    let catalog = catalog();
    let spec = cordoba::workload::q13(&CostProfile::paper());
    let cfg = EngineConfig {
        contexts: 8,
        policy: Policy::AlwaysShare,
        ..EngineConfig::default()
    };
    let a = run_once(&catalog, &vec![spec.clone(); 3], &cfg);
    let b = run_once(&catalog, &vec![spec.clone(); 3], &cfg);
    assert_eq!(a.results, b.results);
    assert_eq!(a.makespan, b.makespan, "virtual time must be bit-identical");
    let rows_a: Vec<Vec<Value>> = a.results.into_iter().flatten().collect();
    assert!(!rows_a.is_empty());
}
