//! The simulator and the analytical model must agree on pipelined
//! execution rates: a synthetic pipeline with known per-tuple costs,
//! run under the simulator, must achieve the model's x(n) within a few
//! percent (pipeline-fill and page-granularity effects).

use cordoba::exec::ops::{Fanout, ScanTask, SinkTask};
use cordoba::exec::OpCost;
use cordoba::model::{OperatorSpec, PlanSpec, QueryModel};
use cordoba::sim::{channel, Simulator};
use cordoba::storage::{DataType, Field, Schema, TableBuilder, Value};

const ROWS: usize = 20_000;

/// Builds scan -> filterless relay stages with given per-tuple costs,
/// runs on `contexts`, returns tuples per virtual time.
fn simulated_rate(stage_costs: &[f64], contexts: usize) -> f64 {
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    let mut tb = TableBuilder::new("t", schema.clone());
    for i in 0..ROWS {
        tb.push_row(&[Value::Int(i as i64)]);
    }
    let table = tb.finish();
    let mut sim = Simulator::new(contexts);
    let (tx0, mut prev_rx) = channel::bounded(16);
    sim.spawn(
        "scan",
        Box::new(ScanTask::new(
            table.pages().to_vec(),
            OpCost::per_tuple(stage_costs[0]),
            Fanout::new(vec![tx0], 0.0),
        )),
    );
    // Middle stages: model them as pass-through filters with the given
    // per-tuple work (FilterTask with True predicate would change the
    // cost shape; reuse ScanTask-like relays via exec's Source relay is
    // 0-cost, so use FilterTask with Predicate::True and exact cost).
    for (i, &c) in stage_costs[1..].iter().enumerate() {
        let (tx, rx) = channel::bounded(16);
        sim.spawn(
            format!("stage{i}"),
            Box::new(
                cordoba::exec::ops::FilterTask::new(
                    prev_rx,
                    schema.clone(),
                    cordoba::exec::expr::Predicate::True,
                    OpCost::per_tuple(c),
                    Fanout::new(vec![tx], 0.0),
                )
                .expect("True predicate compiles"),
            ),
        );
        prev_rx = rx;
    }
    sim.spawn(
        "sink",
        Box::new(SinkTask::new(prev_rx, OpCost::per_tuple(0.0))),
    );
    let out = sim.run_to_idle();
    assert!(out.completed_all(), "{out:?}");
    ROWS as f64 / sim.now() as f64
}

fn model_rate(stage_costs: &[f64], contexts: usize) -> f64 {
    let plan = PlanSpec::pipeline(
        stage_costs
            .iter()
            .enumerate()
            .map(|(i, &c)| OperatorSpec::new(format!("s{i}"), vec![c], vec![]))
            .collect(),
    )
    .unwrap();
    QueryModel::new(&plan).rate(contexts as f64).unwrap()
}

fn assert_close(stage_costs: &[f64], contexts: usize, tolerance: f64) {
    let sim = simulated_rate(stage_costs, contexts);
    let model = model_rate(stage_costs, contexts);
    let rel = (sim - model).abs() / model;
    assert!(
        rel < tolerance,
        "costs {stage_costs:?} n={contexts}: sim {sim:.6} vs model {model:.6} ({:.1}% off)",
        rel * 100.0
    );
}

#[test]
fn single_context_rate_is_one_over_total_work() {
    assert_close(&[10.0, 30.0, 10.0], 1, 0.03);
}

#[test]
fn saturated_pipeline_runs_at_bottleneck_rate() {
    // u = 50/30 < 2 contexts: peak rate 1/30.
    assert_close(&[10.0, 30.0, 10.0], 2, 0.05);
    assert_close(&[10.0, 30.0, 10.0], 8, 0.05);
}

#[test]
fn balanced_pipeline_time_shares_fairly() {
    // u = 3 balanced stages; n = 2 -> x = 2/u' (time-sharing regime).
    assert_close(&[10.0, 10.0, 10.0], 2, 0.06);
}

#[test]
fn deep_pipeline_tracks_model_across_context_counts() {
    // Uneven stages in the time-sharing regime accumulate round-robin
    // granularity effects; ~10% agreement is the realistic bound here
    // (the paper's own model carries 5-30% error against hardware).
    let costs = [4.0, 8.0, 2.0, 16.0, 6.0];
    for n in [1usize, 2, 3, 4, 8] {
        assert_close(&costs, n, 0.12);
    }
}

#[test]
fn shared_fanout_matches_model_pivot_equation() {
    // A scan with out_per_tuple = s serving M consumers must be active
    // exactly (w + M s) per tuple — the model's p_phi(M).
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    let mut tb = TableBuilder::new("t", schema.clone());
    for i in 0..5000 {
        tb.push_row(&[Value::Int(i)]);
    }
    let table = tb.finish();
    for m in [1usize, 2, 4, 8] {
        let mut sim = Simulator::new(m + 1);
        let mut txs = Vec::new();
        for _ in 0..m {
            let (tx, rx) = channel::bounded(16);
            txs.push(tx);
            sim.spawn("sink", Box::new(SinkTask::new(rx, OpCost::per_tuple(0.0))));
        }
        let scan = sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table.pages().to_vec(),
                OpCost::new(9.66, 10.34),
                Fanout::new(txs, 10.34),
            )),
        );
        sim.run_to_idle();
        let stats = sim.task_stats(scan);
        let p = stats.active as f64 / stats.progress;
        let expected = 9.66 + 10.34 * m as f64;
        assert!(
            (p - expected).abs() / expected < 0.01,
            "m={m}: p={p:.3} vs w+Ms={expected:.3}"
        );
    }
}
