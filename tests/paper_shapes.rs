//! End-to-end checks that the reproduced system exhibits the paper's
//! qualitative results (the "shape" criteria of DESIGN.md), at reduced
//! scale so the suite stays fast.

use cordoba::engine::{measure_throughput, EngineConfig, Policy};
use cordoba::storage::tpch::{generate, TpchConfig};
use cordoba::workload::{mix::q1_q4_mix, q1, q4, q6, CostProfile};

fn catalog() -> cordoba::storage::Catalog {
    generate(&TpchConfig {
        scale_factor: 0.002,
        seed: 3,
        ..TpchConfig::default()
    })
}

/// The paper's engine runs one thread per operator: every shape
/// reproduced here pins `workers = 1` so a `CORDOBA_WORKERS` override
/// (the CI parallel leg) cannot change the figures under test — the
/// (m × k) interaction is covered by the fig5 worker grid instead.
fn serial_engine() -> EngineConfig {
    EngineConfig {
        parallel: cordoba::engine::ParallelConfig::with_workers(1),
        ..EngineConfig::default()
    }
}

fn z_of(
    catalog: &cordoba::storage::Catalog,
    spec: &cordoba::engine::QuerySpec,
    m: usize,
    n: usize,
) -> f64 {
    let clients = vec![spec.clone(); m];
    let cap = 4_000_000_000;
    let run = |policy: Policy| {
        let cfg = EngineConfig {
            contexts: n,
            policy,
            ..serial_engine()
        };
        measure_throughput(catalog, &clients, &cfg, 16.max(2 * m), cap).per_time
    };
    run(Policy::AlwaysShare) / run(Policy::NeverShare)
}

#[test]
fn figure1_q6_sharing_helps_uniprocessor_hurts_cmp() {
    let catalog = catalog();
    let spec = q6(&CostProfile::paper());
    let z1 = z_of(&catalog, &spec, 8, 1);
    assert!(z1 > 1.3 && z1 < 2.2, "1 CPU: expected ~1.4-1.8x, got {z1}");
    let z32 = z_of(&catalog, &spec, 16, 32);
    assert!(z32 < 0.35, "32 CPU: expected large loss, got {z32}");
    // Monotone story: more processors, less attractive sharing.
    let z8 = z_of(&catalog, &spec, 8, 8);
    assert!(z1 > z8 && z8 > z32, "z1={z1} z8={z8} z32={z32}");
}

#[test]
fn figure2_scan_heavy_flattens_join_heavy_keeps_growing() {
    let catalog = catalog();
    let costs = CostProfile::paper();
    // Scan-heavy speedup levels off with clients on 1 CPU ...
    let q6 = q6(&costs);
    let z_small = z_of(&catalog, &q6, 4, 1);
    let z_large = z_of(&catalog, &q6, 24, 1);
    assert!(
        z_large < z_small * 1.8,
        "q6 should plateau: {z_small} -> {z_large}"
    );
    assert!(
        z_large > z_small,
        "but still grow slightly: {z_small} -> {z_large}"
    );
    // ... while join-heavy speedup keeps climbing roughly with m.
    let q4 = q4(&costs);
    let j_small = z_of(&catalog, &q4, 4, 1);
    let j_large = z_of(&catalog, &q4, 16, 1);
    assert!(
        j_large > j_small * 2.0,
        "q4 keeps growing: {j_small} -> {j_large}"
    );
    assert!(
        j_large > 8.0,
        "q4 at m=16, 1 CPU should be large, got {j_large}"
    );
}

#[test]
fn figure2_join_heavy_sharing_never_loses() {
    let catalog = catalog();
    let q4 = q4(&CostProfile::paper());
    for (m, n) in [(4usize, 2usize), (8, 8), (16, 32)] {
        let z = z_of(&catalog, &q4, m, n);
        assert!(z > 0.97, "q4 m={m} n={n}: z={z}");
    }
}

#[test]
fn figure6_policy_ordering_on_large_machine() {
    let catalog = catalog();
    let costs = CostProfile::paper();
    let models = {
        let mut map = std::collections::HashMap::new();
        for spec in [q1(&costs), q4(&costs)] {
            let (info, _) =
                cordoba::engine::profiling::profile_query(&catalog, &spec, &serial_engine())
                    .expect("profiling succeeds");
            map.insert(spec.name.clone(), info);
        }
        map
    };
    let clients = q1_q4_mix(&costs, 24, 0.5);
    let cap = 8_000_000_000;
    let run = |policy: Policy| {
        let cfg = EngineConfig {
            contexts: 32,
            policy,
            ..serial_engine()
        };
        measure_throughput(&catalog, &clients, &cfg, 48, cap).per_time
    };
    let never = run(Policy::NeverShare);
    let always = run(Policy::AlwaysShare);
    let model = run(Policy::ModelGuided {
        models,
        hysteresis: 0.0,
    });
    // The paper's 32-CPU panel: model > never >> always.
    assert!(model >= never * 0.98, "model {model} vs never {never}");
    assert!(never > always * 1.3, "never {never} vs always {always}");
    assert!(model > always * 1.3, "model {model} vs always {always}");
}

#[test]
fn figure6_policy_ordering_on_small_machine() {
    let catalog = catalog();
    let costs = CostProfile::paper();
    let models = {
        let mut map = std::collections::HashMap::new();
        for spec in [q1(&costs), q4(&costs)] {
            let (info, _) =
                cordoba::engine::profiling::profile_query(&catalog, &spec, &serial_engine())
                    .expect("profiling succeeds");
            map.insert(spec.name.clone(), info);
        }
        map
    };
    let clients = q1_q4_mix(&costs, 12, 0.5);
    let cap = 8_000_000_000;
    let run = |policy: Policy| {
        let cfg = EngineConfig {
            contexts: 2,
            policy,
            ..serial_engine()
        };
        measure_throughput(&catalog, &clients, &cfg, 32, cap).per_time
    };
    let never = run(Policy::NeverShare);
    let always = run(Policy::AlwaysShare);
    let model = run(Policy::ModelGuided {
        models,
        hysteresis: 0.0,
    });
    // The paper's 2-CPU panel: always-share wins; model tracks it.
    assert!(always > never, "always {always} vs never {never}");
    assert!(
        model >= always * 0.9,
        "model {model} must track always {always}"
    );
}

#[test]
fn shared_utilization_is_capped_while_unshared_scales() {
    // Section 6.1's utilization argument, observed on the engine: the
    // shared run leaves a 32-context machine mostly idle.
    use cordoba::engine::ClosedLoop;
    let catalog = catalog();
    let spec = q6(&CostProfile::paper());
    let clients = vec![spec; 16];
    let mut shared = ClosedLoop::new(
        &catalog,
        &clients,
        &EngineConfig {
            contexts: 32,
            policy: Policy::AlwaysShare,
            ..serial_engine()
        },
    );
    shared.run_until_completions(64, 8_000_000_000);
    let mut unshared = ClosedLoop::new(
        &catalog,
        &clients,
        &EngineConfig {
            contexts: 32,
            policy: Policy::NeverShare,
            ..serial_engine()
        },
    );
    unshared.run_until_completions(64, 8_000_000_000);
    let busy_shared = shared.stats().mean_busy_contexts();
    let busy_unshared = unshared.stats().mean_busy_contexts();
    assert!(
        busy_shared < 6.0,
        "shared Q6 should use only a few contexts, got {busy_shared:.1}"
    );
    assert!(
        busy_unshared > 16.0,
        "unshared Q6 should use most of the machine, got {busy_unshared:.1}"
    );
}
