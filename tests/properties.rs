//! Property-based tests over the core invariants of the reproduction:
//! model laws, storage round-trips, operator/executor equivalence, and
//! estimator recovery under arbitrary (valid) inputs.

use cordoba::exec::expr::{CmpOp, Predicate};
use cordoba::exec::{reference, OpCost, PhysicalPlan};
use cordoba::model::estimate::{fit_pivot, PivotObservation};
use cordoba::model::sharing::SharingEvaluator;
use cordoba::model::{OperatorSpec, PlanSpec, QueryModel};
use cordoba::storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
use proptest::prelude::*;

fn cost() -> impl Strategy<Value = f64> {
    (1u32..=2000).prop_map(|v| v as f64 / 100.0)
}

fn pipeline_costs() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(cost(), 2..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// x(n) is non-decreasing in n and capped at the peak rate 1/p_max.
    #[test]
    fn model_rate_monotone_and_capped(costs in pipeline_costs(), steps in 1usize..6) {
        let plan = PlanSpec::pipeline(
            costs.iter().enumerate()
                .map(|(i, &c)| OperatorSpec::new(format!("s{i}"), vec![c], vec![]))
                .collect(),
        ).unwrap();
        let q = QueryModel::new(&plan);
        let mut prev = 0.0;
        for k in 1..=steps {
            let x = q.rate(k as f64).unwrap();
            prop_assert!(x + 1e-12 >= prev);
            prop_assert!(x <= q.peak_rate() + 1e-12);
            prev = x;
        }
    }

    /// Z(1, n) == 1: a group of one neither wins nor loses.
    #[test]
    fn singleton_group_is_neutral(below in cost(), w in cost(), s in cost(), above in cost(), n in 1u32..64) {
        let mut b = PlanSpec::new();
        let bot = b.add_leaf(OperatorSpec::new("b", vec![below], vec![]));
        let piv = b.add_node(OperatorSpec::new("p", vec![w], vec![s]), vec![bot]);
        let top = b.add_node(OperatorSpec::new("t", vec![above], vec![]), vec![piv]);
        let plan = b.finish(top).unwrap();
        let ev = SharingEvaluator::homogeneous(&plan, piv, 1).unwrap();
        prop_assert!((ev.speedup(n as f64) - 1.0).abs() < 1e-9);
    }

    /// On a uniprocessor, sharing never hurts (any saved work helps,
    /// Section 3.3) — for fully pipelinable plans.
    #[test]
    fn uniprocessor_sharing_never_hurts(below in cost(), w in cost(), s in cost(), above in cost(), m in 2usize..32) {
        let mut b = PlanSpec::new();
        let bot = b.add_leaf(OperatorSpec::new("b", vec![below], vec![]));
        let piv = b.add_node(OperatorSpec::new("p", vec![w], vec![s]), vec![bot]);
        let top = b.add_node(OperatorSpec::new("t", vec![above], vec![]), vec![piv]);
        let plan = b.finish(top).unwrap();
        let ev = SharingEvaluator::homogeneous(&plan, piv, m).unwrap();
        prop_assert!(ev.speedup(1.0) >= 1.0 - 1e-9);
    }

    /// The pivot fit recovers exact (w, s) from noiseless observations.
    #[test]
    fn estimator_recovers_exact_parameters(w in cost(), s in cost()) {
        let obs: Vec<PivotObservation> = [1usize, 2, 5, 9]
            .iter()
            .map(|&m| PivotObservation {
                sharers: m,
                active_time: (w + s * m as f64) * 1000.0,
                progress_units: 1000.0,
            })
            .collect();
        let fit = fit_pivot(&obs).unwrap();
        prop_assert!((fit.w - w).abs() < 1e-6, "w {} vs {}", fit.w, w);
        prop_assert!((fit.s - s).abs() < 1e-6, "s {} vs {}", fit.s, s);
    }

    /// Page storage round-trips arbitrary rows bit-exactly.
    #[test]
    fn page_round_trip(rows in proptest::collection::vec(
        (any::<i64>(), any::<f64>(), -100_000i32..100_000, "[ -~]{0,12}"), 1..200)
    ) {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("d", DataType::Date),
            Field::new("s", DataType::Str(12)),
        ]);
        let mut tb = TableBuilder::with_page_size("t", schema, 256);
        let mut expected = Vec::new();
        for (i, f, d, s) in &rows {
            // Trailing spaces are not preserved (fixed-width padding).
            let s = s.trim_end_matches(' ').to_string();
            let row = vec![
                Value::Int(*i),
                Value::Float(*f),
                Value::Date(cordoba::storage::Date(*d)),
                Value::Str(s),
            ];
            tb.push_row(&row);
            expected.push(row);
        }
        let table = tb.finish();
        let got: Vec<Vec<Value>> = table.scan_values().collect();
        // NaN != NaN under PartialEq; compare with bit-equality for floats.
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g.len(), e.len());
            for (gv, ev) in g.iter().zip(e) {
                match (gv, ev) {
                    (Value::Float(a), Value::Float(b)) => {
                        prop_assert_eq!(a.to_bits(), b.to_bits())
                    }
                    _ => prop_assert_eq!(gv, ev),
                }
            }
        }
    }

    /// LIKE matching agrees with a naive backtracking oracle.
    #[test]
    fn like_matches_oracle(s in "[a-c]{0,12}", pattern in "[a-c%]{0,8}") {
        fn oracle(s: &str, p: &str) -> bool {
            // Classic recursive matcher over bytes.
            fn go(s: &[u8], p: &[u8]) -> bool {
                match p.first() {
                    None => s.is_empty(),
                    Some(b'%') => {
                        (0..=s.len()).any(|k| go(&s[k..], &p[1..]))
                    }
                    Some(&c) => s.first() == Some(&c) && go(&s[1..], &p[1..]),
                }
            }
            go(s.as_bytes(), p.as_bytes())
        }
        prop_assert_eq!(
            cordoba::exec::expr::like_match(&s, &pattern),
            oracle(&s, &pattern),
            "s={:?} pattern={:?}", s, pattern
        );
    }

    /// A merge join over sorted inputs equals a hash inner join on the
    /// same data (§5.3's claim that the join families are semantically
    /// interchangeable once their blocking phases are accounted for).
    #[test]
    fn merge_join_equals_hash_join(
        left in proptest::collection::vec((0i64..20, 0i64..1000), 0..60),
        right in proptest::collection::vec((0i64..20, 0i64..1000), 0..60),
    ) {
        let schema_l = Schema::new(vec![
            Field::new("lk", DataType::Int),
            Field::new("lv", DataType::Int),
        ]);
        let schema_r = Schema::new(vec![
            Field::new("rk", DataType::Int),
            Field::new("rv", DataType::Int),
        ]);
        let mut tl = TableBuilder::new("l", schema_l);
        for (k, v) in &left {
            tl.push_row(&[Value::Int(*k), Value::Int(*v)]);
        }
        let mut tr = TableBuilder::new("r", schema_r);
        for (k, v) in &right {
            tr.push_row(&[Value::Int(*k), Value::Int(*v)]);
        }
        let mut catalog = Catalog::new();
        catalog.register(tl.finish());
        catalog.register(tr.finish());
        let sorted = |t: &str| Box::new(PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::Scan { table: t.into(), cost: OpCost::default() }),
            keys: vec![0],
            cost: OpCost::default(),
        });
        let mj = PhysicalPlan::MergeJoin {
            left: sorted("l"),
            right: sorted("r"),
            left_key: 0,
            right_key: 0,
            cost: OpCost::default(),
        };
        let hj = PhysicalPlan::HashJoin {
            build: Box::new(PhysicalPlan::Scan { table: "r".into(), cost: OpCost::default() }),
            probe: Box::new(PhysicalPlan::Scan { table: "l".into(), cost: OpCost::default() }),
            build_key: 0,
            probe_key: 0,
            kind: cordoba::exec::JoinKind::Inner,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let mj_rows = reference::canonicalize(reference::execute(&catalog, &mj));
        let hj_rows = reference::canonicalize(reference::execute(&catalog, &hj));
        prop_assert_eq!(mj_rows, hj_rows);
    }

    /// Filter through the reference executor equals a plain row filter.
    #[test]
    fn reference_filter_equals_direct_filter(
        keys in proptest::collection::vec(-50i64..50, 1..300),
        threshold in -50i64..50,
    ) {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let mut tb = TableBuilder::new("t", schema);
        for &k in &keys {
            tb.push_row(&[Value::Int(k)]);
        }
        let mut catalog = Catalog::new();
        catalog.register(tb.finish());
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan { table: "t".into(), cost: OpCost::default() }),
            predicate: Predicate::col_cmp(0, CmpOp::Lt, threshold),
            cost: OpCost::default(),
        };
        let got: Vec<i64> = reference::execute(&catalog, &plan)
            .into_iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        let want: Vec<i64> = keys.iter().copied().filter(|&k| k < threshold).collect();
        prop_assert_eq!(got, want);
    }
}
