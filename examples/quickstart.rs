//! Quickstart: the paper's headline result in ~60 lines.
//!
//! Generates a small TPC-H database, runs 8 concurrent copies of Q6
//! with and without work sharing on simulated 1-context and 32-context
//! machines, and compares against the analytical model's predictions.
//!
//! Run with: `cargo run --release --example quickstart`

use cordoba::engine::profiling::profile_query;
use cordoba::engine::{measure_throughput, EngineConfig, Policy};
use cordoba::model::sharing::SharingEvaluator;
use cordoba::storage::tpch::{generate, TpchConfig};
use cordoba::workload::{q6, CostProfile};

fn main() {
    // 1. A memory-resident TPC-H subset (deterministic).
    let catalog = generate(&TpchConfig::scale(0.002));
    println!(
        "database: {} lineitem rows, {} orders, {} customers ({} KiB)",
        catalog.expect("lineitem").row_count(),
        catalog.expect("orders").row_count(),
        catalog.expect("customer").row_count(),
        catalog.byte_size() / 1024,
    );

    // 2. TPC-H Q6, shareable at its lineitem scan.
    let spec = q6(&CostProfile::paper());
    let clients = vec![spec.clone(); 8];

    // 3. Measure shared vs unshared throughput on 1 and 32 contexts.
    println!(
        "\n{:>9} {:>12} {:>12} {:>9}",
        "contexts", "shared", "unshared", "Z"
    );
    let mut measured = Vec::new();
    for contexts in [1usize, 32] {
        let run = |policy: Policy| {
            let cfg = EngineConfig {
                contexts,
                policy,
                ..EngineConfig::default()
            };
            measure_throughput(&catalog, &clients, &cfg, 24, 2_000_000_000).per_time
        };
        let shared = run(Policy::AlwaysShare);
        let unshared = run(Policy::NeverShare);
        let z = shared / unshared;
        measured.push((contexts, z));
        println!(
            "{contexts:>9} {:>12.4} {:>12.4} {z:>9.3}",
            shared * 1e6,
            unshared * 1e6
        );
    }

    // 4. The model predicts this from profiled parameters (Section 3.1).
    let (info, report) =
        profile_query(&catalog, &spec, &EngineConfig::default()).expect("profiling succeeds");
    println!(
        "\nprofiled scan parameters: w = {:.2}, s = {:.2} (paper: 9.66, 10.34)",
        report.pivot_w, report.pivot_s
    );
    for (contexts, z_measured) in measured {
        let z_model = SharingEvaluator::homogeneous(&info.plan, info.pivot, 8)
            .unwrap()
            .speedup(contexts as f64);
        println!(
            "n = {contexts:>2}: measured Z = {z_measured:.3}, model Z = {z_model:.3} -> {}",
            if z_model > 1.0 {
                "SHARE"
            } else {
                "DON'T SHARE"
            }
        );
    }
    println!("\nSharing a scan-heavy query helps on a uniprocessor and hurts on a CMP —");
    println!("the trade-off of 'To Share or Not To Share?' (VLDB 2007).");
}
