//! Policy comparison on a mixed workload (paper Section 8.2 in
//! miniature): always-share vs never-share vs model-guided on a 50/50
//! Q1/Q4 mix, on small and large simulated machines.
//!
//! Run with: `cargo run --release --example policy_comparison`

use cordoba::engine::profiling::profile_query;
use cordoba::engine::{measure_throughput, EngineConfig, Policy};
use cordoba::storage::tpch::{generate, TpchConfig};
use cordoba::workload::mix::q1_q4_mix;
use cordoba::workload::{q1, q4, CostProfile};
use std::collections::HashMap;

fn main() {
    let costs = CostProfile::paper();
    let catalog = generate(&TpchConfig::scale(0.002));

    // Profile Q1 and Q4 once (offline parameter estimation).
    let mut models = HashMap::new();
    for spec in [q1(&costs), q4(&costs)] {
        let (info, _) =
            profile_query(&catalog, &spec, &EngineConfig::default()).expect("profiling succeeds");
        models.insert(spec.name.clone(), info);
    }

    let clients = q1_q4_mix(&costs, 16, 0.5);
    println!("16 clients, 50% Q1 / 50% Q4, throughput in queries per M work units:\n");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>10}",
        "contexts", "never", "always", "model", "winner"
    );
    for contexts in [2usize, 8, 32] {
        let run = |policy: Policy| {
            let cfg = EngineConfig {
                contexts,
                policy,
                ..EngineConfig::default()
            };
            measure_throughput(&catalog, &clients, &cfg, 32, 4_000_000_000).per_time * 1e6
        };
        let never = run(Policy::NeverShare);
        let always = run(Policy::AlwaysShare);
        let model = run(Policy::ModelGuided {
            models: models.clone(),
            hysteresis: 0.0,
        });
        let winner = if model >= never && model >= always {
            "model"
        } else if always >= never {
            "always"
        } else {
            "never"
        };
        println!("{contexts:>9} {never:>12.3} {always:>12.3} {model:>12.3} {winner:>10}");
    }
    println!("\nSmall machines: sharing everything wins; large machines: indiscriminate");
    println!("sharing collapses. The model-guided policy is the only one good everywhere.");
}
