//! Share advisor: profiles the four TPC-H queries and prints a
//! share/don't-share decision matrix over machine sizes and client
//! counts — the model applied exactly as a DBMS would at runtime.
//!
//! Run with: `cargo run --release --example share_advisor`

use cordoba::engine::profiling::profile_query;
use cordoba::engine::EngineConfig;
use cordoba::model::sharing::SharingEvaluator;
use cordoba::storage::tpch::{generate, TpchConfig};
use cordoba::workload::queries::all;
use cordoba::workload::CostProfile;

fn main() {
    let catalog = generate(&TpchConfig::scale(0.002));
    let contexts = [1usize, 2, 8, 32];
    let clients = [2usize, 8, 32];

    println!("Share/don't-share decision matrix (model-guided, profiled parameters)\n");
    for spec in all(&CostProfile::paper()) {
        let (info, report) =
            profile_query(&catalog, &spec, &EngineConfig::default()).expect("profiling succeeds");
        println!(
            "== {} ==  pivot w = {:.2}, s = {:.2}",
            spec.name, report.pivot_w, report.pivot_s
        );
        print!("{:>12}", "m \\ n");
        for n in contexts {
            print!("{n:>8}");
        }
        println!();
        for m in clients {
            print!("{m:>12}");
            for n in contexts {
                let z = SharingEvaluator::homogeneous(&info.plan, info.pivot, m)
                    .unwrap()
                    .speedup(n as f64);
                let verdict = if z > 1.0 + 1e-9 {
                    format!("+{z:.2}")
                } else if z < 1.0 - 1e-9 {
                    format!("-{z:.2}")
                } else {
                    "=1.00".to_string()
                };
                print!("{verdict:>8}");
            }
            println!();
        }
        println!("  (+Z share, -Z don't, =1 indifferent)\n");
    }
}
