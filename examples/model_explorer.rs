//! Interactive model explorer: evaluate the work-sharing trade-off for
//! an arbitrary three-stage query from the command line — no database,
//! no simulation, just the paper's equations.
//!
//! Usage:
//!   cargo run --release --example model_explorer -- \
//!       [below_p] [pivot_w] [pivot_s] [above_p]
//!
//! Defaults reproduce the paper's Section 6 baseline (10 / 6 / 1 / 10).

use cordoba::model::sharing::SharingEvaluator;
use cordoba::model::{OperatorSpec, PlanSpec, QueryModel};

fn arg(n: usize, default: f64) -> f64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let below_p = arg(1, 10.0);
    let pivot_w = arg(2, 6.0);
    let pivot_s = arg(3, 1.0);
    let above_p = arg(4, 10.0);

    let mut b = PlanSpec::new();
    let bottom = b.add_leaf(OperatorSpec::new("below", vec![below_p], vec![]));
    let pivot = b.add_node(
        OperatorSpec::new("pivot", vec![pivot_w], vec![pivot_s]),
        vec![bottom],
    );
    let top = b.add_node(
        OperatorSpec::new("above", vec![above_p], vec![]),
        vec![pivot],
    );
    let plan = b.finish(top).expect("valid pipeline");

    let q = QueryModel::new(&plan);
    println!("query: below p={below_p}, pivot w={pivot_w} s={pivot_s}, above p={above_p}");
    println!(
        "p_max = {:.2}, u' = {:.2}, peak utilization u = {:.2} processors\n",
        q.p_max(),
        q.total_work(),
        q.peak_utilization()
    );

    let eliminated = (below_p + pivot_w) / (below_p + pivot_w + pivot_s + above_p);
    println!(
        "sharing eliminates {:.0}% of each query's work, but serializes",
        eliminated * 100.0
    );
    println!("s = {pivot_s} per consumer at the pivot. Z(m, n) = x_shared / x_unshared:\n");

    let ms = [2usize, 4, 8, 16, 32, 48];
    let ns = [1usize, 2, 4, 8, 16, 32];
    print!("{:>8}", "m \\ n");
    for n in ns {
        print!("{n:>8}");
    }
    println!();
    for m in ms {
        print!("{m:>8}");
        let ev = SharingEvaluator::homogeneous(&plan, pivot, m).expect("valid group");
        for n in ns {
            print!("{:>8.2}", ev.speedup(n as f64));
        }
        println!();
    }
    println!("\nZ > 1: share.  Z < 1: the serialization at the pivot outweighs the");
    println!("eliminated work — run the queries independently instead.");
}
