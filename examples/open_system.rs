//! Open vs closed systems (paper Section 5.1): in an open system,
//! arrivals are independent of response times — sharing opportunities
//! only exist when queries happen to co-arrive, and the benefit of
//! sharing shows up in response times rather than peak throughput.
//!
//! This example drives Poisson arrivals of Q6 through the engine at
//! increasing load and reports mean response time and realized group
//! sizes for always-share vs never-share.
//!
//! Run with: `cargo run --release --example open_system`

use cordoba::engine::{poisson_arrivals, run_open_loop, EngineConfig, Policy};
use cordoba::storage::tpch::{generate, TpchConfig};
use cordoba::workload::{q6, CostProfile};

fn main() {
    let catalog = generate(&TpchConfig::scale(0.002));
    let spec = q6(&CostProfile::paper());
    let queries = 40;

    println!("Open system: Poisson arrivals of Q6, 2 contexts, {queries} queries\n");
    println!(
        "{:>14} {:>14} {:>14} {:>11} {:>11}",
        "mean gap", "resp(never)", "resp(always)", "ratio", "avg group"
    );
    // Sweep offered load: long gaps = idle system, short gaps = overload.
    for mean_gap in [2_000_000u64, 500_000, 150_000, 50_000] {
        let run = |policy: Policy| {
            let schedule = poisson_arrivals(&spec, queries, mean_gap, 11);
            let cfg = EngineConfig {
                contexts: 2,
                policy,
                ..EngineConfig::default()
            };
            run_open_loop(&catalog, schedule, &cfg, u64::MAX / 4)
        };
        let never = run(Policy::NeverShare);
        let always = run(Policy::AlwaysShare);
        assert_eq!(never.completed, queries);
        assert_eq!(always.completed, queries);
        let group: f64 =
            always.group_sizes.iter().sum::<usize>() as f64 / always.group_sizes.len() as f64;
        // Both runs completed every query (asserted above), so the
        // means exist.
        let resp_never = never.mean_response().expect("completions");
        let resp_always = always.mean_response().expect("completions");
        println!(
            "{:>14} {:>14.0} {:>14.0} {:>11.2} {:>11.2}",
            mean_gap,
            resp_never,
            resp_always,
            resp_never / resp_always.max(1.0),
            group,
        );
    }
    println!(
        "\nAt low load arrivals rarely overlap (groups ~1, sharing moot); as load\n\
         grows, queueing makes co-arrival common — groups form and sharing cuts\n\
         response times. The paper's point: in an open system, unshared queries\n\
         can be modeled as throttled to the slowest sharer with no loss."
    );
}
