//! Real-thread shared scan: the engine's sharing machinery on OS
//! threads with wall-clock timing (the simulator is the measurement
//! substrate for the paper's figures; this shows the design also runs
//! on real hardware).
//!
//! Run with: `cargo run --release --example threaded_engine`

use cordoba::engine::thread_exec::{run_shared, run_unshared};
use cordoba::storage::tpch::{generate, TpchConfig};
use cordoba::workload::{q6, CostProfile};

fn main() {
    let catalog = generate(&TpchConfig::scale(0.01));
    let spec = q6(&CostProfile::paper());
    let m = 6;
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);

    println!("running {m} copies of Q6 over {host_threads} host threads...\n");
    let unshared = run_unshared(&catalog, &spec, m, host_threads);
    let shared = run_shared(&catalog, &spec, m);

    assert_eq!(
        shared.results, unshared.results,
        "shared results must match"
    );
    println!(
        "unshared: {:>10.2?}  ({} queries, each scanning privately)",
        unshared.elapsed, m
    );
    println!(
        "shared:   {:>10.2?}  (one scan fanned out to {} consumers)",
        shared.elapsed, m
    );
    let ratio = unshared.elapsed.as_secs_f64() / shared.elapsed.as_secs_f64().max(1e-9);
    println!("\nwall-clock speedup of sharing: {ratio:.2}x on this host");
    println!("(on a machine with >= {m} idle cores, expect sharing to win less or lose —");
    println!(" the exact trade-off the analytical model predicts)");
}
