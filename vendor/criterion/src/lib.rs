//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the API subset the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups, throughput
//! annotation, and `Bencher::iter` — over a simple median-of-samples
//! wall-clock harness. No statistics, plots, or baselines: each
//! benchmark runs `sample_size` timed samples and prints the median
//! per-iteration time (plus throughput when annotated). Good enough to
//! exercise every bench target and spot order-of-magnitude regressions;
//! swap in the real criterion for publishable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_benchmark(name, sample_size, measurement_time, None, f);
        self
    }
}

/// A named benchmark id, optionally parameterized.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            full: name.to_string(),
        }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (tuples, steps, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the shim has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.full);
        run_benchmark(
            &name,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Benchmarks a nullary closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into().full);
        run_benchmark(
            &name,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples (or fewer if the
    /// measurement-time budget runs out).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64()),
        Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64()),
    });
    println!(
        "{name:<50} median {median:>12?} over {} samples{}",
        b.samples.len(),
        rate.unwrap_or_default()
    );
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
