//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use, over a deterministic per-test seeded RNG:
//!
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for integer
//!   ranges, tuples, and `[class]{lo,hi}` pattern strings;
//! * [`any`] for `i64` / `f64` (full bit range);
//! * [`collection::vec`];
//! * [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], and
//!   [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with its assert message and the case index), uniform rather than
//! edge-biased sampling, and pattern strings support exactly the
//! `[class]{lo,hi}` shape rather than full regex syntax. Seeds are
//! fixed per (test name, case index), so failures reproduce exactly.

use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `&str` literals act as pattern strategies: `[class]{lo,hi}` draws a
/// string of `lo..=hi` chars uniformly from the class (ranges like
/// `a-c` and literals, e.g. `"[a-c%]{0,8}"`).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{lo,hi}` into (alphabet, lo, hi).
///
/// # Panics
///
/// Panics on any other shape — the shim supports exactly what the
/// workspace's tests use; extend it here if a new pattern appears.
fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    fn bad(pattern: &str) -> ! {
        panic!("proptest shim: unsupported pattern {pattern:?} (want `[class]{{lo,hi}}`)")
    }
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| bad(pattern));
    let (class, counts) = rest.split_once(']').unwrap_or_else(|| bad(pattern));
    let counts = counts
        .strip_prefix('{')
        .and_then(|c| c.strip_suffix('}'))
        .unwrap_or_else(|| bad(pattern));
    let (lo, hi) = counts.split_once(',').unwrap_or_else(|| bad(pattern));
    let (lo, hi): (usize, usize) = (
        lo.trim().parse().unwrap_or_else(|_| bad(pattern)),
        hi.trim().parse().unwrap_or_else(|_| bad(pattern)),
    );
    assert!(lo <= hi, "proptest shim: empty repetition in {pattern:?}");
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            assert!(
                chars[i] <= chars[i + 2],
                "proptest shim: bad range in {pattern:?}"
            );
            for c in chars[i]..=chars[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(
        !alphabet.is_empty(),
        "proptest shim: empty class in {pattern:?}"
    );
    (alphabet, lo, hi)
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    /// Arbitrary bit patterns — includes infinities and NaNs, which is
    /// what a storage round-trip test wants.
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The full-range strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: each sample draws a length in `len`, then that
    /// many elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// `config.cases` times with fresh samples, deterministically seeded
/// from the test name and case index.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case as u64);
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)*
                $body
            }
        }
    )*};
}
