//! Deterministic RNG backing the [`proptest!`](crate::proptest) shim.

/// SplitMix64 generator seeded from (test name, case index) so every
/// failure reproduces bit-exactly.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`; `span` of 0 means the full range.
    pub fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            return self.next_u64();
        }
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}
