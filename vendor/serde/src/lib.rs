//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! The public registry is unreachable from this build environment, so
//! this crate vendors the minimal trait surface the workspace compiles
//! against: `Serialize` / `Deserialize` marker impls produced by no-op
//! derives, plus the `Serializer` / `Deserializer` vocabulary used by
//! the handful of manual impls. No wire format is implemented; swapping
//! in the real `serde` later only requires editing the workspace
//! manifest, not the source tree.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization vocabulary (subset).
pub mod ser {
    use std::fmt::Display;

    /// Error raised by a [`Serializer`](crate::Serializer).
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization vocabulary (subset).
pub mod de {
    use std::fmt::Display;

    /// Error raised by a [`Deserializer`](crate::Deserializer).
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a display-able message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A serialization back end (subset: enough for derived no-op impls).
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Serializes a unit value — the only shape the no-op derives emit.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
}

/// A deserialization back end (subset).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
}
