//! Self-tests for the model checker: it must *find* a planted race,
//! *pass* race-free code under every schedule, and *report* deadlocks.
//! Run with `cargo test -p shuttle-lite --features model`.
#![cfg(feature = "model")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use shuttle_lite::sync::atomic::{AtomicUsize, Ordering};
use shuttle_lite::sync::{Arc, Mutex};
use shuttle_lite::{model, model_random, model_with, thread, ModelConfig};

#[test]
fn finds_lost_update_in_unsynchronized_increment() {
    // Classic read-modify-write race: both threads may load 0 and both
    // store 1. DFS must reach that schedule and fail the assertion.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = c.clone();
            let h = thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
    }));
    let msg = match outcome {
        Ok(_) => panic!("model missed the lost-update interleaving"),
        Err(payload) => *payload.downcast::<String>().expect("string panic payload"),
    };
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
    assert!(
        msg.contains("replay with schedule"),
        "no replay info: {msg}"
    );
}

#[test]
fn cas_increment_survives_every_schedule() {
    // The fix for the race above: a compare-exchange loop. Exhaustive
    // DFS over both threads' load/CAS windows must find no schedule
    // that loses an update.
    let report = model(|| {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        let h = thread::spawn(move || {
            c2.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| Some(v + 1))
                .expect("updater never bails");
        });
        c.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| Some(v + 1))
            .expect("updater never bails");
        h.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    assert!(report.exhausted, "DFS should exhaust this small tree");
    assert!(
        report.iterations > 1,
        "two racing threads must yield multiple schedules"
    );
}

#[test]
fn mutex_provides_mutual_exclusion_and_wakes_waiters() {
    let report = model(|| {
        let m = Arc::new(Mutex::new(0usize));
        let m2 = m.clone();
        let h = thread::spawn(move || {
            *m2.lock().unwrap() += 1;
        });
        *m.lock().unwrap() += 1;
        h.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
    assert!(report.exhausted);
}

#[test]
fn reports_abba_deadlock_with_schedule() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let h = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_ga, _gb));
            h.join().unwrap();
        });
    }));
    let msg = match outcome {
        Ok(_) => panic!("model missed the ABBA deadlock"),
        Err(payload) => *payload.downcast::<String>().expect("string panic payload"),
    };
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn iteration_budget_caps_exploration() {
    let report = model_with(
        ModelConfig {
            max_iterations: 3,
            ..ModelConfig::default()
        },
        || {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = c.clone();
            let h = thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
            c.fetch_add(1, Ordering::SeqCst);
            h.join().unwrap();
        },
    );
    assert_eq!(report.iterations, 3);
    assert!(!report.exhausted);
}

#[test]
fn random_mode_finds_the_same_race() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        model_random(0xc0d_0ba5, 200, || {
            let c = Arc::new(AtomicUsize::new(0));
            let c2 = c.clone();
            let h = thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
    }));
    assert!(outcome.is_err(), "200 random schedules should hit the race");
}
