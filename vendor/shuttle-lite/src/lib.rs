//! Offline stand-in for a loom/shuttle-style concurrency model checker.
//!
//! The workspace's hottest concurrency invariants (the memory broker's
//! compare-exchange grant loop, the morsel dispenser's hand-out
//! counter) live in hand-rolled atomics. This crate gives them a
//! drop-in home that costs nothing in production and becomes a model
//! checker under test:
//!
//! * **Normal builds** (`model` feature off, the default): [`sync`] and
//!   [`thread`] re-export `std::sync` / `std::thread` items verbatim.
//!   Zero wrappers, zero overhead — the production binary is untouched.
//! * **Model builds** (`--features model`): the same paths resolve to
//!   instrumented shims. Code under test runs inside [`model`] (bounded
//!   exhaustive DFS over schedules) or [`model_random`] (seeded random
//!   schedules with printable replay): real OS threads, exactly one
//!   runnable at a time, and every shim operation a scheduling point,
//!   so the checker drives the code through the corner interleavings a
//!   stress test only hits by luck.
//!
//! [`explore`] is always available: an exhaustive interleaving
//! enumerator for *single-threaded* step machines (the simulator's
//! cooperative tasks), used to model-check the sim channel's
//! close-vs-send races without threads.
//!
//! Like the other `vendor/` stand-ins this implements only the API
//! subset the workspace needs — atomics (`AtomicUsize`/`AtomicBool`),
//! `Mutex`, `thread::{spawn, JoinHandle}` — and panics loudly (with a
//! replayable schedule) on invariant violations, deadlock, or
//! exceeded exploration depth.

pub mod explore;

#[cfg(feature = "model")]
mod scheduler;
#[cfg(feature = "model")]
mod shim;

#[cfg(feature = "model")]
pub use scheduler::{model, model_random, model_with, replay, ModelConfig, ModelReport};

/// `std::sync` view: verbatim re-exports normally, instrumented shims
/// under the `model` feature.
#[cfg(not(feature = "model"))]
pub mod sync {
    pub use std::sync::{Arc, Mutex, MutexGuard};

    /// Atomic types and orderings (std re-exports).
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    }
}

#[cfg(feature = "model")]
pub mod sync {
    pub use crate::shim::{Mutex, MutexGuard};
    pub use std::sync::Arc;

    /// Atomic types and orderings (model-checked shims).
    pub mod atomic {
        pub use crate::shim::{AtomicBool, AtomicUsize};
        pub use std::sync::atomic::Ordering;
    }
}

/// `std::thread` view: verbatim re-exports normally, scheduler-
/// registered threads under the `model` feature.
#[cfg(not(feature = "model"))]
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(feature = "model")]
pub mod thread {
    pub use crate::shim::{spawn, yield_now, JoinHandle};
}

/// splitmix64: the workspace's standard seeded generator (also used by
/// the hash-join repartitioner), here driving random schedule search.
#[cfg_attr(not(feature = "model"), allow(dead_code))]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
