//! Exhaustive interleaving enumeration for single-threaded step
//! machines.
//!
//! The simulator's tasks are cooperative: a "race" between two sim
//! tasks is fully described by the order in which their steps
//! interleave, so model checking a sim-side structure (the bounded
//! channel's close-vs-send path) needs no threads at all — just every
//! merge order of the per-task operation sequences. That is what
//! [`interleavings`] enumerates: all distinct sequences over task
//! indices where task `t` appears exactly `lens[t]` times, in DFS
//! (lexicographic) order, bounded by an exploration `limit`.
//!
//! The count grows as the multinomial `(Σlens)! / Π(lens!)` — callers
//! size their sequences so the suite explores the coverage they need
//! (the channel suite runs well past 10³ interleavings per scenario).

/// Calls `visit` with every interleaving of `lens.len()` tasks, where
/// interleaving `s` means "next op of task `s[i]`" at step `i`. Stops
/// after `limit` interleavings. Returns `(explored, exhausted)`:
/// `exhausted` is `true` when every interleaving was visited.
pub fn interleavings(
    lens: &[usize],
    limit: usize,
    mut visit: impl FnMut(&[usize]),
) -> (usize, bool) {
    let total: usize = lens.iter().sum();
    let mut remaining: Vec<usize> = lens.to_vec();
    let mut seq: Vec<usize> = Vec::with_capacity(total);
    let mut explored = 0usize;
    let exhausted = dfs(
        &mut remaining,
        &mut seq,
        total,
        limit,
        &mut explored,
        &mut visit,
    );
    (explored, exhausted)
}

fn dfs(
    remaining: &mut [usize],
    seq: &mut Vec<usize>,
    total: usize,
    limit: usize,
    explored: &mut usize,
    visit: &mut impl FnMut(&[usize]),
) -> bool {
    if seq.len() == total {
        visit(seq);
        *explored += 1;
        return true;
    }
    for t in 0..remaining.len() {
        if remaining[t] == 0 {
            continue;
        }
        if *explored >= limit {
            return false;
        }
        remaining[t] -= 1;
        seq.push(t);
        let done = dfs(remaining, seq, total, limit, explored, visit);
        seq.pop();
        remaining[t] += 1;
        if !done {
            return false;
        }
    }
    true
}

/// The number of interleavings [`interleavings`] would enumerate for
/// `lens` (the multinomial coefficient), saturating at `usize::MAX`.
pub fn count(lens: &[usize]) -> usize {
    let mut n = 0usize;
    let mut acc = 1usize;
    for &len in lens {
        for k in 1..=len {
            n += 1;
            // acc = acc * n / k, exact at every step because the
            // running product is always a binomial coefficient.
            acc = match acc.checked_mul(n) {
                Some(v) => v / k,
                None => return usize::MAX,
            };
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn enumerates_all_distinct_interleavings() {
        let mut seen = HashSet::new();
        let (explored, exhausted) = interleavings(&[2, 2], usize::MAX, |s| {
            assert!(seen.insert(s.to_vec()), "duplicate {s:?}");
        });
        assert!(exhausted);
        assert_eq!(explored, 6); // C(4,2)
        assert_eq!(seen.len(), 6);
        for s in &seen {
            assert_eq!(s.iter().filter(|&&t| t == 0).count(), 2);
            assert_eq!(s.iter().filter(|&&t| t == 1).count(), 2);
        }
    }

    #[test]
    fn limit_stops_early() {
        let (explored, exhausted) = interleavings(&[3, 3], 5, |_| {});
        assert_eq!(explored, 5);
        assert!(!exhausted);
    }

    #[test]
    fn count_matches_enumeration() {
        for lens in [&[1usize, 1][..], &[2, 3], &[3, 3], &[2, 2, 2], &[0, 4]] {
            let (explored, exhausted) = interleavings(lens, usize::MAX, |_| {});
            assert!(exhausted);
            assert_eq!(count(lens), explored, "{lens:?}");
        }
        assert_eq!(count(&[6, 7]), 1716);
        assert_eq!(count(&[]), 1);
    }

    #[test]
    fn single_task_has_one_order() {
        let mut orders = Vec::new();
        let (explored, _) = interleavings(&[4], usize::MAX, |s| orders.push(s.to_vec()));
        assert_eq!(explored, 1);
        assert_eq!(orders, vec![vec![0, 0, 0, 0]]);
    }
}
