//! The model-build scheduler: bounded exhaustive DFS over thread
//! interleavings, loom-style.
//!
//! An *execution* runs the test closure as model thread 0 on a real OS
//! thread; [`crate::thread::spawn`] registers more. Exactly one model
//! thread is scheduled at a time — every shim operation (atomic access,
//! mutex lock/unlock, spawn, join) calls [`Execution::yield_point`],
//! which parks the caller and lets the scheduler pick the next runnable
//! thread. Each pick with more than one runnable candidate is a
//! *branch point*; the recorded `(chosen, alternatives)` list is the
//! execution's schedule.
//!
//! [`model`] explores schedules depth-first: run with an empty prefix
//! (always choose candidate 0), then backtrack the deepest branch point
//! with an untried alternative and re-run with that prefix, until the
//! tree is exhausted or the iteration budget runs out. Any panic,
//! deadlock, or depth overrun aborts the whole execution (peer threads
//! are unwound via a sentinel payload) and fails the model with the
//! replayable schedule in the message; [`replay`] re-runs exactly that
//! schedule under a debugger or with extra logging. [`model_random`]
//! drives the same machinery with seeded random choices for cheap
//! coverage beyond the exhaustive budget.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Exploration budgets for [`model_with`].
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Maximum schedules (executions) to explore before giving up on
    /// exhausting the tree.
    pub max_iterations: usize,
    /// Per-execution cap on scheduling points (livelock guard).
    pub max_steps: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            max_iterations: 10_000,
            max_steps: 1_000_000,
        }
    }
}

/// What an exploration covered.
#[derive(Debug, Clone, Copy)]
pub struct ModelReport {
    /// Schedules executed (each a complete run of the closure).
    pub iterations: usize,
    /// `true` when the full decision tree was explored — every
    /// interleaving distinguishable at shim granularity was run.
    pub exhausted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    Runnable,
    Blocked,
    Finished,
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    alternatives: usize,
}

/// Unwind payload used to collapse peer threads once an execution has
/// already failed; recognized (and not reported) by `thread_main`.
struct AbortSentinel;

const NO_THREAD: usize = usize::MAX;

struct State {
    phases: Vec<Phase>,
    current: usize,
    /// DFS replay prefix: choice index per branch point.
    prefix: Vec<usize>,
    /// Seeded RNG state for random mode (`None` = DFS mode).
    random: Option<u64>,
    /// Branch points taken this execution.
    decisions: Vec<Decision>,
    /// All scheduling points this execution (livelock guard).
    steps: usize,
    max_steps: usize,
    /// `(waiter, target)` pairs parked in `join`.
    join_waiters: Vec<(usize, usize)>,
    failure: Option<String>,
    abort: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The running model thread's `(execution, id)`, or `None` outside a
/// model context (shim ops then fall through to plain std behaviour).
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

impl Execution {
    /// Scheduling point: give every other runnable thread the chance to
    /// run before the caller's next shim operation. No-op outside a
    /// model context.
    pub(crate) fn yield_point() {
        if let Some((exec, me)) = current() {
            exec.reschedule(me, Phase::Runnable);
        }
    }

    /// Parks the calling thread with `phase` and blocks until the
    /// scheduler hands control back. Unwinds via [`AbortSentinel`] when
    /// the execution has failed. No-op while the thread is already
    /// unwinding (a Drop mid-panic must not panic again).
    pub(crate) fn reschedule(&self, me: usize, phase: Phase) {
        if std::thread::panicking() {
            return;
        }
        let mut st = self.state.lock().unwrap();
        if st.abort {
            drop(st);
            resume_unwind(Box::new(AbortSentinel));
        }
        st.phases[me] = phase;
        Self::pick_next(&mut st);
        self.cv.notify_all();
        while st.current != me {
            if st.abort {
                drop(st);
                resume_unwind(Box::new(AbortSentinel));
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Marks `ids` runnable (mutex unlock / finish waking waiters).
    fn make_runnable(st: &mut State, ids: &[usize]) {
        for &id in ids {
            if st.phases[id] == Phase::Blocked {
                st.phases[id] = Phase::Runnable;
            }
        }
    }

    /// Chooses the next thread to run, recording a branch point when
    /// more than one candidate is runnable.
    fn pick_next(st: &mut State) {
        if st.abort {
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.failure
                .get_or_insert_with(|| "scheduling-point budget exceeded (livelock?)".to_string());
            st.abort = true;
            return;
        }
        let runnable: Vec<usize> = (0..st.phases.len())
            .filter(|&i| st.phases[i] == Phase::Runnable)
            .collect();
        if runnable.is_empty() {
            if st.phases.iter().all(|&p| p == Phase::Finished) {
                st.current = NO_THREAD;
            } else {
                let blocked: Vec<usize> = (0..st.phases.len())
                    .filter(|&i| st.phases[i] == Phase::Blocked)
                    .collect();
                st.failure.get_or_insert_with(|| {
                    format!("deadlock: threads {blocked:?} blocked forever")
                });
                st.abort = true;
            }
            return;
        }
        let alts = runnable.len();
        let idx = if alts == 1 {
            0
        } else {
            let choice = match &mut st.random {
                Some(rng) => (crate::splitmix64(rng) % alts as u64) as usize,
                None => {
                    let d = st.decisions.len();
                    // Past the replay prefix, DFS always takes the
                    // first candidate; backtracking covers the rest.
                    if d < st.prefix.len() {
                        st.prefix[d].min(alts - 1)
                    } else {
                        0
                    }
                }
            };
            st.decisions.push(Decision {
                chosen: choice,
                alternatives: alts,
            });
            choice
        };
        st.current = runnable[idx];
    }

    /// Parks the caller as Blocked (mutex wait). The waker is
    /// responsible for marking it runnable again; the caller re-checks
    /// its wait condition on return.
    pub(crate) fn block_current(&self, me: usize) {
        self.reschedule(me, Phase::Blocked);
    }

    /// Registers a new model thread (runnable, not yet scheduled) and
    /// returns its id. Caller must follow with a reschedule so the
    /// spawn itself is a branch point.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.phases.push(Phase::Runnable);
        st.phases.len() - 1
    }

    /// Records the OS handle backing a model thread so the run can join
    /// it at teardown.
    pub(crate) fn adopt_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.state.lock().unwrap().os_handles.push(handle);
    }

    /// Blocks the caller until `target` finishes (shim `join`).
    pub(crate) fn await_thread(&self, me: usize, target: usize) {
        loop {
            {
                let mut st = self.state.lock().unwrap();
                if st.abort {
                    drop(st);
                    resume_unwind(Box::new(AbortSentinel));
                }
                if st.phases[target] == Phase::Finished {
                    return;
                }
                st.join_waiters.push((me, target));
            }
            self.reschedule(me, Phase::Blocked);
        }
    }

    /// Marks `me` finished, wakes joiners, hands control onward.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.phases[me] = Phase::Finished;
        let joiners: Vec<usize> = {
            let (woken, kept): (Vec<_>, Vec<_>) = std::mem::take(&mut st.join_waiters)
                .into_iter()
                .partition(|&(_, t)| t == me);
            st.join_waiters = kept;
            woken.into_iter().map(|(w, _)| w).collect()
        };
        Self::make_runnable(&mut st, &joiners);
        if !st.abort {
            Self::pick_next(&mut st);
        }
        self.cv.notify_all();
    }

    /// Records a real panic from thread `me` and aborts the execution.
    pub(crate) fn fail_thread(&self, me: usize, message: String) {
        let mut st = self.state.lock().unwrap();
        st.failure
            .get_or_insert_with(|| format!("thread {me} panicked: {message}"));
        st.abort = true;
        st.phases[me] = Phase::Finished;
        self.cv.notify_all();
    }

    /// Mutex-shim support: runs `f` under the scheduler lock, then
    /// wakes `woken` and reschedules the caller (a scheduling point).
    pub(crate) fn unlock_point(&self, me: usize, woken: &[usize]) {
        {
            let mut st = self.state.lock().unwrap();
            Self::make_runnable(&mut st, woken);
        }
        self.reschedule(me, Phase::Runnable);
    }
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Body run by every model thread's OS thread: wait to be scheduled,
/// run, report finish/panic. Used by both thread 0 and shim spawns.
pub(crate) fn thread_main(exec: Arc<Execution>, me: usize, body: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), me)));
    // Wait for the first scheduling of this thread.
    {
        let mut st = exec.state.lock().unwrap();
        while st.current != me && !st.abort {
            st = exec.cv.wait(st).unwrap();
        }
        if st.abort {
            drop(st);
            CURRENT.with(|c| *c.borrow_mut() = None);
            exec.finish_thread(me);
            return;
        }
    }
    let result = catch_unwind(AssertUnwindSafe(body));
    match result {
        Ok(()) => exec.finish_thread(me),
        Err(payload) => {
            if payload.is::<AbortSentinel>() {
                exec.finish_thread(me);
            } else {
                exec.fail_thread(me, payload_to_string(payload.as_ref()));
            }
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Runs one complete execution of `f` under the given schedule prefix
/// (DFS mode) or RNG seed (random mode). Returns the branch points
/// taken, or the failure message paired with them.
#[allow(clippy::type_complexity)]
fn run_once(
    f: &Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<usize>,
    random: Option<u64>,
    cfg: &ModelConfig,
) -> Result<Vec<Decision>, (String, Vec<Decision>)> {
    let exec = Arc::new(Execution {
        state: Mutex::new(State {
            phases: vec![Phase::Runnable],
            current: 0,
            prefix,
            random,
            decisions: Vec::new(),
            steps: 0,
            max_steps: cfg.max_steps,
            join_waiters: Vec::new(),
            failure: None,
            abort: false,
            os_handles: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    let f0 = f.clone();
    let e0 = exec.clone();
    let h0 = std::thread::spawn(move || thread_main(e0, 0, move || f0()));
    // Orchestrate: wait until every model thread reports finished.
    let (failure, decisions, handles) = {
        let mut st = exec.state.lock().unwrap();
        while !st.phases.iter().all(|&p| p == Phase::Finished) {
            st = exec.cv.wait(st).unwrap();
        }
        (
            st.failure.take(),
            std::mem::take(&mut st.decisions),
            std::mem::take(&mut st.os_handles),
        )
    };
    let _ = h0.join();
    for h in handles {
        let _ = h.join();
    }
    match failure {
        Some(msg) => Err((msg, decisions)),
        None => Ok(decisions),
    }
}

fn schedule_of(decisions: &[Decision]) -> Vec<usize> {
    decisions.iter().map(|d| d.chosen).collect()
}

/// Explores `f` under every interleaving (bounded DFS with the default
/// budgets), panicking with a replayable schedule on the first failing
/// one. See [`model_with`].
pub fn model(f: impl Fn() + Send + Sync + 'static) -> ModelReport {
    model_with(ModelConfig::default(), f)
}

/// [`model`] with explicit budgets.
///
/// # Panics
///
/// Panics when any explored schedule panics, deadlocks, or exceeds the
/// step budget; the message carries the schedule for [`replay`].
pub fn model_with(cfg: ModelConfig, f: impl Fn() + Send + Sync + 'static) -> ModelReport {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        match run_once(&f, prefix.clone(), None, &cfg) {
            Err((msg, decisions)) => panic!(
                "model check failed on schedule {} of DFS ({msg}); replay with schedule {:?}",
                iterations,
                schedule_of(&decisions)
            ),
            Ok(mut decisions) => {
                // Backtrack: deepest branch point with an untried
                // alternative becomes the next prefix.
                let next = loop {
                    match decisions.pop() {
                        None => break None,
                        Some(d) if d.chosen + 1 < d.alternatives => {
                            let mut p = schedule_of(&decisions);
                            p.push(d.chosen + 1);
                            break Some(p);
                        }
                        Some(_) => {}
                    }
                };
                match next {
                    None => {
                        return ModelReport {
                            iterations,
                            exhausted: true,
                        }
                    }
                    Some(_) if iterations >= cfg.max_iterations => {
                        return ModelReport {
                            iterations,
                            exhausted: false,
                        }
                    }
                    Some(p) => prefix = p,
                }
            }
        }
    }
}

/// Runs `schedules` random interleavings of `f` from `seed` — cheap
/// coverage beyond the exhaustive budget, and the fuzzing mode for
/// structures whose DFS tree is too deep.
///
/// # Panics
///
/// Panics on the first failing schedule, naming the seed and schedule.
pub fn model_random(
    seed: u64,
    schedules: usize,
    f: impl Fn() + Send + Sync + 'static,
) -> ModelReport {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let cfg = ModelConfig::default();
    for i in 0..schedules {
        if let Err((msg, decisions)) =
            run_once(&f, Vec::new(), Some(seed.wrapping_add(i as u64)), &cfg)
        {
            panic!(
                "model check failed on random schedule {i} of seed {seed} ({msg}); \
                 replay with schedule {:?}",
                schedule_of(&decisions)
            );
        }
    }
    ModelReport {
        iterations: schedules,
        exhausted: false,
    }
}

/// Re-runs `f` under one exact schedule (from a failure message), e.g.
/// with extra logging.
///
/// # Panics
///
/// Panics if that schedule fails again (expected when reproducing).
pub fn replay(schedule: &[usize], f: impl Fn() + Send + Sync + 'static) {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    if let Err((msg, decisions)) = run_once(&f, schedule.to_vec(), None, &ModelConfig::default()) {
        panic!(
            "replayed schedule failed ({msg}); schedule {:?}",
            schedule_of(&decisions)
        );
    }
}
