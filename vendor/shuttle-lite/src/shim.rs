//! Instrumented drop-ins for `std::sync` / `std::thread`, compiled only
//! under the `model` feature.
//!
//! Every operation that can order against another thread — an atomic
//! load/store/RMW, a mutex lock/unlock, a spawn or join — first calls
//! [`Execution::yield_point`] so the scheduler can interleave another
//! thread at exactly that point. `fetch_update` is deliberately
//! decomposed into a load + `compare_exchange_weak` loop so the checker
//! can interleave writers *between* the read and the CAS — the race
//! window the broker's grant path must tolerate.
//!
//! Outside a model context (no scheduler on this thread) every shim
//! falls through to plain std behaviour, so model-feature builds still
//! run ordinary unit tests correctly.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::scheduler::{current, thread_main, Execution};

/// Model-checked `std::sync::atomic::AtomicUsize` stand-in.
#[derive(Debug, Default)]
pub struct AtomicUsize {
    inner: std::sync::atomic::AtomicUsize,
}

impl AtomicUsize {
    pub const fn new(v: usize) -> Self {
        AtomicUsize {
            inner: std::sync::atomic::AtomicUsize::new(v),
        }
    }

    pub fn load(&self, order: Ordering) -> usize {
        Execution::yield_point();
        self.inner.load(order)
    }

    pub fn store(&self, v: usize, order: Ordering) {
        Execution::yield_point();
        self.inner.store(v, order)
    }

    pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        Execution::yield_point();
        self.inner.fetch_add(v, order)
    }

    pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
        Execution::yield_point();
        self.inner.fetch_sub(v, order)
    }

    pub fn swap(&self, v: usize, order: Ordering) -> usize {
        Execution::yield_point();
        self.inner.swap(v, order)
    }

    pub fn compare_exchange(
        &self,
        cur: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        Execution::yield_point();
        self.inner.compare_exchange(cur, new, success, failure)
    }

    pub fn compare_exchange_weak(
        &self,
        cur: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        Execution::yield_point();
        self.inner.compare_exchange(cur, new, success, failure)
    }

    /// Same contract as std's `fetch_update`, but decomposed into a
    /// load + CAS loop with a scheduling point before each step, so the
    /// checker explores writers racing into the read→CAS window.
    pub fn fetch_update<F>(
        &self,
        set_order: Ordering,
        fetch_order: Ordering,
        mut f: F,
    ) -> Result<usize, usize>
    where
        F: FnMut(usize) -> Option<usize>,
    {
        let mut prev = self.load(fetch_order);
        while let Some(next) = f(prev) {
            match self.compare_exchange_weak(prev, next, set_order, fetch_order) {
                Ok(x) => return Ok(x),
                Err(next_prev) => prev = next_prev,
            }
        }
        Err(prev)
    }

    pub fn into_inner(self) -> usize {
        self.inner.into_inner()
    }
}

/// Model-checked `std::sync::atomic::AtomicBool` stand-in.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    pub fn load(&self, order: Ordering) -> bool {
        Execution::yield_point();
        self.inner.load(order)
    }

    pub fn store(&self, v: bool, order: Ordering) {
        Execution::yield_point();
        self.inner.store(v, order)
    }

    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        Execution::yield_point();
        self.inner.swap(v, order)
    }

    pub fn compare_exchange(
        &self,
        cur: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        Execution::yield_point();
        self.inner.compare_exchange(cur, new, success, failure)
    }
}

/// Lock-order metadata shared with the scheduler via thread parking.
#[derive(Debug, Default)]
struct MutexMeta {
    locked: bool,
    waiters: Vec<usize>,
}

/// Model-checked `std::sync::Mutex` stand-in. Never poisons: a panic
/// inside a critical section aborts the whole model execution anyway.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    meta: std::sync::Mutex<MutexMeta>,
    cell: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases at a scheduling point on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            meta: std::sync::Mutex::new(MutexMeta {
                locked: false,
                waiters: Vec::new(),
            }),
            cell: std::sync::Mutex::new(value),
        }
    }

    /// Like std, returns `Result` for drop-in compatibility — but the
    /// shim never poisons, so the `Err` arm is unreachable.
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::convert::Infallible> {
        if let Some((exec, me)) = current() {
            Execution::yield_point();
            loop {
                {
                    let mut meta = self.meta.lock().unwrap();
                    if !meta.locked {
                        meta.locked = true;
                        break;
                    }
                    meta.waiters.push(me);
                }
                exec.block_current(me);
            }
        }
        Ok(MutexGuard {
            mutex: self,
            inner: Some(self.cell.lock().unwrap_or_else(|e| e.into_inner())),
        })
    }

    pub fn into_inner(self) -> Result<T, std::convert::Infallible> {
        Ok(self.cell.into_inner().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard live until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard live until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // release the data lock first
        if let Some((exec, me)) = current() {
            let woken = {
                let mut meta = self.mutex.meta.lock().unwrap();
                meta.locked = false;
                std::mem::take(&mut meta.waiters)
            };
            exec.unlock_point(me, &woken);
        } else {
            let mut meta = self.mutex.meta.lock().unwrap();
            meta.locked = false;
        }
    }
}

/// Model-checked `std::thread::JoinHandle` stand-in. `join` returns
/// `T` directly (not `thread::Result<T>`): a child panic aborts the
/// model execution before any joiner resumes.
pub struct JoinHandle<T> {
    exec: Arc<Execution>,
    id: usize,
    result: Arc<std::sync::Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        let (_, me) = current().expect("join called outside a model execution");
        self.exec.await_thread(me, self.id);
        let value = self
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("joined thread stored its result");
        Ok(value)
    }
}

/// Model-checked `std::thread::spawn` stand-in: registers the closure
/// as a new model thread. Must be called from inside a model execution.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, _me) = current().expect("spawn called outside a model execution");
    let id = exec.register_thread();
    let result: Arc<std::sync::Mutex<Option<T>>> = Arc::new(std::sync::Mutex::new(None));
    let slot = result.clone();
    let child_exec = exec.clone();
    let handle = std::thread::spawn(move || {
        let exec_for_main = child_exec.clone();
        thread_main(exec_for_main, id, move || {
            let value = f();
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
        });
    });
    exec.adopt_handle(handle);
    // The spawn itself is a scheduling point: the child may run first.
    Execution::yield_point();
    JoinHandle { exec, id, result }
}

/// Scheduling point; outside a model context, a plain std yield.
pub fn yield_now() {
    if current().is_some() {
        Execution::yield_point();
    } else {
        std::thread::yield_now();
    }
}
