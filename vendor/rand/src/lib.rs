//! Offline stand-in for the `rand` crate (0.8 API subset — see
//! `vendor/README.md`).
//!
//! Provides exactly what the workspace uses: a seedable, deterministic
//! [`rngs::SmallRng`] plus [`Rng::gen_range`] over integer/float ranges
//! and [`Rng::gen_bool`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction the real `SmallRng` uses on
//! 64-bit targets, though the exact stream is not guaranteed to match.
//! Workspace code only relies on *determinism under a fixed seed*, not
//! on a particular stream.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        sample_f64_unit(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a u64 to `[0, 1)` with 53 bits of precision.
fn sample_f64_unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly for a value type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Uniform value in `[0, span)` by rejection sampling (span ≥ 1).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    // A span of exactly 2^64 (e.g. `i64::MIN..=i64::MAX`) wraps the
    // cast to 0: that is the full 64-bit domain, no rejection needed.
    let span = span as u64;
    if span == 0 {
        return rng.next_u64() as u128;
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span) as u128;
        }
    }
}

macro_rules! impl_float_range {
    // `$bits` is the type's mantissa precision: unit samples built on
    // it are exact in `$t`, so `u < 1.0` (exclusive) and `u <= 1.0`
    // (inclusive) hold after the cast — casting a 53-bit f64 sample to
    // f32 could round up to 1.0 and leak the excluded bound.
    ($($t:ty, $bits:expr);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                loop {
                    let u = (rng.next_u64() >> (64 - $bits)) as $t
                        / (1u64 << $bits) as $t;
                    // u < 1, but lo + u·(hi−lo) can still round up to
                    // hi; reject that draw to honor the open bound.
                    let v = self.start + u * (self.end - self.start);
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // u spans [0, 1] inclusive so `hi` is reachable; clamp
                // guards against rounding past either bound.
                let u = (rng.next_u64() >> (64 - $bits)) as $t
                    / ((1u64 << $bits) - 1) as $t;
                (lo + u * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}
impl_float_range!(f32, 24; f64, 53);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the real crate's
    /// `SmallRng` construction on 64-bit targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1usize..=7);
            assert!((1..=7).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn float_ranges_respect_bound_contracts() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100_000 {
            // Exclusive: the end bound must never appear, even after
            // the f32 cast rounds.
            let v = rng.gen_range(0.0f32..1.0f32);
            assert!((0.0..1.0).contains(&v), "f32 open bound leaked: {v}");
            // Inclusive: both bounds stay in range.
            let w = rng.gen_range(900.0f64..=101_000.0);
            assert!((900.0..=101_000.0).contains(&w));
        }
        // The inclusive top is actually reachable (u == 1 exists).
        let mut hit_top = false;
        let mut rng = SmallRng::seed_from_u64(10);
        for _ in 0..2_000_000 {
            if rng.gen_range(0.0f32..=1.0f32) == 1.0 {
                hit_top = true;
                break;
            }
        }
        assert!(hit_top, "inclusive float range never reaches its end bound");
    }

    #[test]
    fn full_domain_inclusive_range_does_not_panic() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let _ = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = rng.gen_range(0u64..=u64::MAX);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
