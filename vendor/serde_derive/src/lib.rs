//! No-op `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stand-in (see `vendor/README.md`): emits marker impls that satisfy
//! trait bounds without implementing any wire format. Hand-rolled token
//! scanning instead of `syn`/`quote` keeps the shim dependency-free.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct/enum a derive is attached to.
///
/// Panics (a compile error at the derive site) on generic types — the
/// workspace derives only on concrete types, and the shim prefers a
/// loud failure over silently wrong impls.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde shim derive: expected type name, got {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        panic!(
                            "serde shim derive: generic type `{name}` is not supported; \
                             write the impls manually or extend vendor/serde_derive"
                        );
                    }
                }
                return name;
            }
            _ => {}
        }
    }
    panic!("serde shim derive: no struct/enum found in input");
}

/// No-op `#[derive(Serialize)]`: the impl serializes any value as unit.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(\n\
                 &self, serializer: __S,\n\
             ) -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 serializer.serialize_unit()\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// No-op `#[derive(Deserialize)]`: the impl always errors, since the
/// shim has no wire format to read from.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(\n\
                 _deserializer: __D,\n\
             ) -> ::std::result::Result<Self, __D::Error> {{\n\
                 ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                     \"vendored serde shim cannot deserialize\",\n\
                 ))\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
