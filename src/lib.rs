//! # Cordoba — work-sharing-aware staged query engine
//!
//! A from-scratch Rust reproduction of *"To Share or Not To Share?"*
//! (Johnson, Harizopoulos, Hardavellas, Sabirli, Pandis, Ailamaki,
//! Mancheril, Falsafi — VLDB 2007).
//!
//! The paper shows that aggressive work sharing between concurrent
//! queries can *hurt* throughput on multi-core hardware, because the
//! shared pivot operator serializes its consumers; it contributes an
//! analytical model that predicts when sharing wins, and a staged engine
//! ("Cordoba") that applies the model at runtime.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`model`] (`cordoba-core`) — the analytical model: `Z(m, n)`,
//!   stop-&-go phases, join decomposition, parameter estimation.
//! * [`sim`] (`cordoba-sim`) — a deterministic discrete-event CMP
//!   simulator standing in for the paper's 32-context UltraSparc T1.
//! * [`storage`] (`cordoba-storage`) — paged in-memory tables and a
//!   deterministic TPC-H-subset generator.
//! * [`exec`] (`cordoba-exec`) — paged relational operators
//!   (scan/filter/aggregate/sort/joins) with calibrated cost functions.
//! * [`engine`] (`cordoba-engine`) — the staged engine: packets, stages,
//!   work-sharing merges, and the always/never/model-guided policies.
//! * [`workload`] (`cordoba-workload`) — TPC-H Q1/Q6/Q4/Q13 plans and
//!   the synthetic workloads of the paper's sensitivity analysis.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use cordoba_core as model;
pub use cordoba_engine as engine;
pub use cordoba_exec as exec;
pub use cordoba_sim as sim;
pub use cordoba_storage as storage;
pub use cordoba_workload as workload;
