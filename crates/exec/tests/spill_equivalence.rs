//! Property tests for the out-of-core operator paths: on random
//! inputs, a query run under a tiny memory budget (forcing the external
//! sort and the spilling hybrid hash join out of core) must produce
//! exactly the rows the unbounded in-memory path produces.
//!
//! The sort comparison is row-for-row — the external merge reproduces
//! the in-memory stable sort order bit-for-bit, including `f64`
//! payloads compared by their bit patterns (so `-0.0` vs `0.0` and
//! every NaN-free value must round-trip through spill files exactly).
//! The join comparison is a sorted multiset: spilled partitions
//! legitimately reorder output across partitions.

use cordoba_exec::wiring::{self, WiringConfig};
use cordoba_exec::{reference, JoinKind, MemoryConfig, OpCost, PhysicalPlan};
use cordoba_sim::Simulator;
use cordoba_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value, PAGE_SIZE};
use proptest::prelude::*;

/// Runs `plan` through the simulator under the given budget and
/// returns the collected rows; panics on any fault (these plans must
/// never fail, only spill).
fn run_with_budget(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    budget: Option<usize>,
) -> Vec<Vec<Value>> {
    let cfg = WiringConfig {
        memory: MemoryConfig {
            query_budget: budget,
            ..MemoryConfig::default()
        },
        ..WiringConfig::default()
    };
    let mut sim = Simulator::new(2);
    let (rx, _ops, res) =
        wiring::instantiate(&mut sim, catalog, plan, "spill-eq", &cfg).expect("plan wires");
    wiring::run_and_collect(&mut sim, rx, OpCost::default(), &res.fault)
        .expect("query must spill, not fail")
}

/// Maps rows to a bit-exact representation: floats by `to_bits`, so
/// equality is byte equality rather than IEEE `==`.
fn bit_exact(rows: &[Vec<Value>]) -> Vec<Vec<(u8, u64)>> {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Int(i) => (0u8, *i as u64),
                    Value::Float(f) => (1u8, f.to_bits()),
                    other => (2u8, format!("{other:?}").len() as u64),
                })
                .collect()
        })
        .collect()
}

/// One-table catalog of `(k: Int, v: Float)` rows.
fn kf_catalog(rows: &[(i64, f64)]) -> Catalog {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ]);
    let mut tb = TableBuilder::new("t", schema);
    for (k, v) in rows {
        tb.push_row(&[Value::Int(*k), Value::Float(*v)]);
    }
    let mut c = Catalog::new();
    c.register(tb.finish());
    c
}

/// Two-table catalog of `(k: Int, v: Int)` rows for joins.
fn kv_catalog(left: &[(i64, i64)], right: &[(i64, i64)]) -> Catalog {
    let mut catalog = Catalog::new();
    for (name, rows) in [("l", left), ("r", right)] {
        let schema = Schema::new(vec![
            Field::new(format!("{name}k"), DataType::Int),
            Field::new(format!("{name}v"), DataType::Int),
        ]);
        let mut tb = TableBuilder::new(name, schema);
        for (k, v) in rows {
            tb.push_row(&[Value::Int(*k), Value::Int(*v)]);
        }
        catalog.register(tb.finish());
    }
    catalog
}

fn scan(table: &str) -> Box<PhysicalPlan> {
    Box::new(PhysicalPlan::Scan {
        table: table.into(),
        cost: OpCost::default(),
    })
}

/// Float payloads with awkward bit patterns (`-0.0`, subnormal-ish
/// fractions, large magnitudes) that IEEE `==` would conflate or that
/// naive text round-trips would corrupt.
fn payload() -> impl Strategy<Value = f64> {
    (0u8..4, -1_000_000_000i64..1_000_000_000).prop_map(|(shape, m)| match shape {
        0 => -0.0,
        1 => 0.0,
        2 => m as f64 * 1.0e3,
        _ => m as f64 / 1.0e9,
    })
}

/// Duplicate-heavy keyed float rows — enough of them that a few-page
/// budget forces multiple spilled runs.
fn sort_rows() -> impl Strategy<Value = Vec<(i64, f64)>> {
    proptest::collection::vec((0i64..32, payload()), 0..2000)
}

/// Duplicate-heavy int pairs; small key domains force collisions.
fn join_rows(max: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..64, 0i64..1000), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// External sort under a two-page budget ≡ in-memory sort,
    /// row-for-row, floats compared by bit pattern.
    #[test]
    fn spilled_sort_is_bit_identical_to_in_memory(rows in sort_rows()) {
        let catalog = kf_catalog(&rows);
        let plan = PhysicalPlan::Sort {
            input: scan("t"),
            keys: vec![0],
            cost: OpCost::default(),
        };
        let in_memory = run_with_budget(&catalog, &plan, None);
        let spilled = run_with_budget(&catalog, &plan, Some(2 * PAGE_SIZE));
        prop_assert_eq!(bit_exact(&spilled), bit_exact(&in_memory));
    }

    /// Spilling hybrid hash join under a two-page budget ≡ in-memory
    /// join as a multiset, and both equal the synchronous reference.
    #[test]
    fn spilled_join_matches_in_memory_join(
        left in join_rows(1200),
        right in join_rows(1200),
    ) {
        let catalog = kv_catalog(&left, &right);
        let plan = PhysicalPlan::HashJoin {
            build: scan("r"),
            probe: scan("l"),
            build_key: 0,
            probe_key: 0,
            kind: JoinKind::Inner,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let in_memory = reference::canonicalize(run_with_budget(&catalog, &plan, None));
        let spilled =
            reference::canonicalize(run_with_budget(&catalog, &plan, Some(2 * PAGE_SIZE)));
        let oracle = reference::canonicalize(reference::execute(&catalog, &plan));
        prop_assert_eq!(&spilled, &in_memory, "spilled vs in-memory");
        prop_assert_eq!(&spilled, &oracle, "spilled vs reference");
    }

    /// Semi/anti/left-outer joins survive spilling too: each kind's
    /// spilled output equals its unbounded output as a multiset.
    #[test]
    fn spilled_join_kinds_match_in_memory(
        left in join_rows(600),
        right in join_rows(600),
        kind_ix in 0usize..3,
    ) {
        let kind = [JoinKind::Semi, JoinKind::Anti, JoinKind::LeftOuter][kind_ix];
        let catalog = kv_catalog(&left, &right);
        let plan = PhysicalPlan::HashJoin {
            build: scan("r"),
            probe: scan("l"),
            build_key: 0,
            probe_key: 0,
            kind,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let in_memory = reference::canonicalize(run_with_budget(&catalog, &plan, None));
        let spilled =
            reference::canonicalize(run_with_budget(&catalog, &plan, Some(2 * PAGE_SIZE)));
        prop_assert_eq!(&spilled, &in_memory);
    }
}
