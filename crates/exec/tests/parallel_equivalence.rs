//! Property tests for morsel-driven parallelism: on random inputs, the
//! parallel paths must be indistinguishable from the serial executor.
//!
//! Two substrates are pinned:
//!
//! * the **simulated** morsel wiring (`WiringConfig.parallel`): fused
//!   scan→filter→project worker tasks with morsel-ordered reassembly
//!   are *row-for-row* identical to the single-worker wiring and the
//!   synchronous reference — order-preserving by construction; the
//!   per-worker partial aggregates merge in worker-index order, which
//!   is bit-exact here because the float payloads are integer-valued
//!   (exact under f64 addition in any order);
//! * the **real-thread** executor (`cordoba_exec::parallel`): joins are
//!   compared as sorted multisets (partitioned builds legitimately
//!   reorder output), including under a two-page memory budget so the
//!   partition-spill machinery runs underneath the parallel probe.

use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
use cordoba_exec::wiring::{self, WiringConfig};
use cordoba_exec::{
    parallel, reference, JoinKind, MemoryBroker, MemoryConfig, OpCost, ParallelConfig, PhysicalPlan,
};
use cordoba_sim::Simulator;
use cordoba_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value, PAGE_SIZE};
use proptest::prelude::*;

/// Small pages so even modest row counts span many morsels.
const TEST_PAGE_ROWS: usize = 64;

/// Runs `plan` through the simulator with `workers` morsel workers and
/// an optional memory budget; panics on any fault.
fn run_wired(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    workers: usize,
    budget: Option<usize>,
) -> Vec<Vec<Value>> {
    let cfg = WiringConfig {
        memory: MemoryConfig {
            query_budget: budget,
            ..MemoryConfig::default()
        },
        parallel: ParallelConfig {
            workers,
            morsel_pages: 1,
        },
        ..WiringConfig::default()
    };
    let mut sim = Simulator::new(workers.max(2));
    let (rx, _ops, res) =
        wiring::instantiate(&mut sim, catalog, plan, "par-eq", &cfg).expect("plan wires");
    wiring::run_and_collect(&mut sim, rx, OpCost::default(), &res.fault)
        .expect("parallel query must complete")
}

/// Maps rows to a bit-exact representation: floats by `to_bits`.
fn bit_exact(rows: &[Vec<Value>]) -> Vec<Vec<(u8, u64)>> {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Int(i) => (0u8, *i as u64),
                    Value::Float(f) => (1u8, f.to_bits()),
                    other => (2u8, format!("{other:?}").len() as u64),
                })
                .collect()
        })
        .collect()
}

/// One-table catalog of `(k: Int, v: Float)` rows on small pages. The
/// float payloads are integer-valued, so every aggregate sum is exact
/// regardless of addition order.
fn kf_catalog(rows: &[(i64, i64)]) -> Catalog {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ]);
    let mut tb = TableBuilder::with_page_size("t", schema, TEST_PAGE_ROWS);
    for (k, v) in rows {
        tb.push_row(&[Value::Int(*k), Value::Float(*v as f64)]);
    }
    let mut c = Catalog::new();
    c.register(tb.finish());
    c
}

/// Two-table catalog of `(k: Int, v: Int)` rows for joins.
fn kv_catalog(left: &[(i64, i64)], right: &[(i64, i64)]) -> Catalog {
    let mut catalog = Catalog::new();
    for (name, rows) in [("l", left), ("r", right)] {
        let schema = Schema::new(vec![
            Field::new(format!("{name}k"), DataType::Int),
            Field::new(format!("{name}v"), DataType::Int),
        ]);
        let mut tb = TableBuilder::with_page_size(name, schema, TEST_PAGE_ROWS);
        for (k, v) in rows {
            tb.push_row(&[Value::Int(*k), Value::Int(*v)]);
        }
        catalog.register(tb.finish());
    }
    catalog
}

fn scan(table: &str) -> Box<PhysicalPlan> {
    Box::new(PhysicalPlan::Scan {
        table: table.into(),
        cost: OpCost::default(),
    })
}

/// Scan → filter → project pipeline over the `(k, v)` table.
fn pipeline_plan(cutoff: i64) -> PhysicalPlan {
    PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Filter {
            input: scan("t"),
            predicate: Predicate::col_cmp(0, CmpOp::Lt, cutoff),
            cost: OpCost::default(),
        }),
        exprs: vec![
            ("k".into(), ScalarExpr::col(0)),
            (
                "v2".into(),
                ScalarExpr::Mul(
                    Box::new(ScalarExpr::col(1)),
                    Box::new(ScalarExpr::FloatLit(2.0)),
                ),
            ),
        ],
        cost: OpCost::default(),
    }
}

/// Grouped sum + count over the filtered `(k, v)` table.
fn aggregate_plan(cutoff: i64) -> PhysicalPlan {
    PhysicalPlan::Aggregate {
        input: Box::new(PhysicalPlan::Filter {
            input: scan("t"),
            predicate: Predicate::col_cmp(0, CmpOp::Lt, cutoff),
            cost: OpCost::default(),
        }),
        group_by: vec![0],
        aggs: vec![
            ("s".into(), Agg::Sum(ScalarExpr::col(1))),
            ("c".into(), Agg::Count),
        ],
        cost: OpCost::default(),
    }
}

/// Keyed rows; small key domains force duplicates and grouping.
fn kv_rows(max: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..48, -1000i64..1000), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The morsel-parallel pipeline wiring is row-for-row identical to
    /// the serial wiring and the synchronous reference at every worker
    /// count — the ordered reassembly must hide the parallelism
    /// completely.
    #[test]
    fn parallel_pipeline_is_row_identical_to_serial(
        rows in kv_rows(1500),
        cutoff in 0i64..48,
    ) {
        let catalog = kf_catalog(&rows);
        let plan = pipeline_plan(cutoff);
        let serial = run_wired(&catalog, &plan, 1, None);
        let oracle = reference::execute(&catalog, &plan);
        prop_assert_eq!(bit_exact(&serial), bit_exact(&oracle));
        for workers in [2usize, 4, 8] {
            let par = run_wired(&catalog, &plan, workers, None);
            prop_assert_eq!(bit_exact(&par), bit_exact(&serial), "workers={}", workers);
        }
    }

    /// Per-worker partial aggregates merged in worker order are
    /// bit-exact against the serial path — the integer-valued float
    /// payloads make the f64 sums order-independent, so any divergence
    /// is a real merge bug, not reassociation noise.
    #[test]
    fn parallel_aggregate_is_bit_exact(
        rows in kv_rows(1500),
        cutoff in 0i64..48,
    ) {
        let catalog = kf_catalog(&rows);
        let plan = aggregate_plan(cutoff);
        let serial = run_wired(&catalog, &plan, 1, None);
        let oracle = reference::execute(&catalog, &plan);
        prop_assert_eq!(bit_exact(&serial), bit_exact(&oracle));
        for workers in [2usize, 4, 8] {
            let par = run_wired(&catalog, &plan, workers, None);
            prop_assert_eq!(bit_exact(&par), bit_exact(&serial), "workers={}", workers);
        }
    }

    /// A hash join fed by parallel chains, run under a two-page budget:
    /// the spill machinery and the morsel wiring compose without
    /// changing the result multiset.
    #[test]
    fn parallel_join_with_tiny_budget_matches_reference(
        left in kv_rows(600),
        right in kv_rows(600),
        kind_ix in 0usize..4,
    ) {
        let kind = [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti, JoinKind::LeftOuter][kind_ix];
        let catalog = kv_catalog(&left, &right);
        let plan = PhysicalPlan::HashJoin {
            build: scan("r"),
            probe: scan("l"),
            build_key: 0,
            probe_key: 0,
            kind,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let oracle = reference::canonicalize(reference::execute(&catalog, &plan));
        for workers in [1usize, 4] {
            for budget in [None, Some(2 * PAGE_SIZE)] {
                let got = reference::canonicalize(run_wired(&catalog, &plan, workers, budget));
                prop_assert_eq!(
                    &got, &oracle,
                    "workers={} budget={:?} kind={:?}", workers, budget, kind
                );
            }
        }
    }

    /// The real-thread morsel executor (partitioned build, parallel
    /// probe) matches the reference as a multiset at every worker
    /// count, with and without a broker budget underneath.
    #[test]
    fn threaded_executor_matches_reference(
        left in kv_rows(400),
        right in kv_rows(400),
    ) {
        let catalog = kv_catalog(&left, &right);
        let plan = PhysicalPlan::HashJoin {
            build: scan("r"),
            probe: scan("l"),
            build_key: 0,
            probe_key: 0,
            kind: JoinKind::Inner,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let oracle = reference::canonicalize(reference::execute(&catalog, &plan));
        for workers in [1usize, 2, 4, 8] {
            let cfg = ParallelConfig::with_workers(workers);
            let unbounded = parallel::execute_plan(&catalog, &plan, &cfg).expect("join runs");
            prop_assert_eq!(
                &reference::canonicalize(unbounded), &oracle,
                "workers={}", workers
            );
            let broker = MemoryBroker::with_budget(2 * PAGE_SIZE);
            let budgeted = parallel::execute_plan_with_broker(&catalog, &plan, &cfg, &broker)
                .expect("join runs under budget");
            prop_assert_eq!(
                &reference::canonicalize(budgeted), &oracle,
                "workers={} (budgeted)", workers
            );
        }
    }

    /// The threaded pipeline executor preserves row order exactly —
    /// morsel-index reassembly, not completion order.
    #[test]
    fn threaded_pipeline_preserves_order(
        rows in kv_rows(1000),
        cutoff in 0i64..48,
    ) {
        let catalog = kf_catalog(&rows);
        let plan = pipeline_plan(cutoff);
        let oracle = reference::execute(&catalog, &plan);
        for workers in [1usize, 2, 4, 8] {
            let cfg = ParallelConfig { workers, morsel_pages: 1 };
            let got = parallel::execute_plan(&catalog, &plan, &cfg).expect("pipeline runs");
            prop_assert_eq!(bit_exact(&got), bit_exact(&oracle), "workers={}", workers);
        }
    }
}
