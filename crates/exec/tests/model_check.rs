//! Model-checked concurrency invariants for the memory broker and the
//! morsel dispenser, run under shuttle-lite's bounded exhaustive DFS:
//! real threads, one runnable at a time, every atomic operation a
//! scheduling point. Each target explores at least 1 000 distinct
//! interleavings (asserted), so the broker's read→CAS grant window and
//! the dispenser's hand-out counter are exercised through every corner
//! schedule a stress test only hits by luck.
//!
//! Build-gated: `cargo test -p cordoba-exec --features model --test
//! model_check`. In a normal `cargo test` this file compiles to
//! nothing (the shims are std re-exports and the harness is absent).
#![cfg(feature = "model")]

use std::sync::{Arc, Mutex};

use cordoba_exec::{MemoryBroker, MorselDispenser};
use shuttle_lite::{model_with, thread, ModelConfig, ModelReport};

/// Every target must clear this many interleavings (the acceptance
/// floor) — either by exhausting a larger tree or by hitting the
/// iteration cap without a violation.
const MIN_INTERLEAVINGS: usize = 1_000;

fn assert_coverage(report: ModelReport, target: &str) {
    assert!(
        report.iterations >= MIN_INTERLEAVINGS,
        "{target}: explored only {} interleavings (< {MIN_INTERLEAVINGS}); \
         grow the op sequences so the schedule tree is deeper",
        report.iterations
    );
}

fn config() -> ModelConfig {
    ModelConfig {
        max_iterations: 20_000,
        ..ModelConfig::default()
    }
}

#[test]
fn broker_peak_stays_within_headroom_under_all_schedules() {
    // The engine invariant (ROADMAP): peak ≤ 1.25 × budget. Checked
    // grants (`try_grant`) can never pass the budget; the forced
    // `grant` path is reserved for small overheads the engine bounds at
    // a quarter of the budget. Race both paths through every schedule.
    const BUDGET: usize = 100;
    let report = model_with(config(), || {
        let broker = MemoryBroker::with_budget(BUDGET);
        let operator = broker.clone();
        let h = thread::spawn(move || {
            // Operator path: budget-checked grant/release cycles.
            for _ in 0..2 {
                if operator.try_grant(80) {
                    operator.release(80);
                }
            }
        });
        // Engine path: forced overhead grant, ≤ budget/4 by design.
        broker.grant(BUDGET / 4);
        broker.release(BUDGET / 4);
        h.join().unwrap();
        let peak = broker.peak();
        assert!(
            peak <= BUDGET + BUDGET / 4,
            "peak {peak} exceeds 1.25×budget ({})",
            BUDGET + BUDGET / 4
        );
        assert_eq!(broker.used(), 0, "every grant was released");
    });
    assert_coverage(report, "broker peak headroom");
}

#[test]
fn competing_grants_admit_exactly_one_when_budget_is_tight() {
    // Two 60-byte requests against a 100-byte budget: whichever CAS
    // lands first wins, the loser must be refused — under *every*
    // interleaving of the load→compare_exchange windows.
    let report = model_with(config(), || {
        let broker = MemoryBroker::with_budget(100);
        let rivals: Vec<_> = (0..2)
            .map(|_| {
                let rival = broker.clone();
                thread::spawn(move || rival.try_grant(60))
            })
            .collect();
        let mut admitted = usize::from(broker.try_grant(60));
        for h in rivals {
            admitted += usize::from(h.join().unwrap());
        }
        assert_eq!(
            admitted, 1,
            "a 100-byte budget admits exactly one 60-byte grant"
        );
        assert!(broker.used() <= 100, "accounting overshot the budget");
        assert!(broker.peak() <= 100, "peak overshot the budget");
    });
    assert_coverage(report, "competing grants");
}

#[test]
fn peak_high_water_mark_is_monotone_under_racing_bumps() {
    // bump_peak is a Relaxed CAS loop (its allowlist entry cites this
    // test): racing grants must never publish a peak below the true
    // high-water mark of `used`.
    let report = model_with(config(), || {
        let broker = MemoryBroker::unbounded();
        let other = broker.clone();
        let h = thread::spawn(move || {
            other.grant(30);
            other.grant(20);
            other.grant(10);
        });
        broker.grant(40);
        broker.grant(5);
        h.join().unwrap();
        // All grants retained: used is exactly 105, and peak — whatever
        // the interleaving — must have seen at least the final total.
        assert_eq!(broker.used(), 105);
        assert!(
            broker.peak() >= 105,
            "peak {} lost a concurrent bump (used reached 105)",
            broker.peak()
        );
    });
    assert_coverage(report, "peak monotonicity");
}

#[test]
fn dispenser_hands_out_every_morsel_exactly_once() {
    // Three workers race claim() over 6 two-page morsels: no morsel
    // may be lost, duplicated, or split differently than the
    // sequential plan, regardless of how the fetch_add claims
    // interleave.
    let report = model_with(config(), || {
        let dispenser = Arc::new(MorselDispenser::new(12, 2));
        let claimed: Arc<Mutex<Vec<(usize, usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (d2, c2) = (dispenser.clone(), claimed.clone());
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some((idx, m)) = d2.claim() {
                        got.push((idx, m.start, m.end));
                    }
                    c2.lock().unwrap().extend(got);
                })
            })
            .collect();
        let mut got = Vec::new();
        while let Some((idx, m)) = dispenser.claim() {
            got.push((idx, m.start, m.end));
        }
        claimed.lock().unwrap().extend(got);
        for h in workers {
            h.join().unwrap();
        }
        let mut all = claimed.lock().unwrap().clone();
        all.sort_unstable();
        let expected: Vec<_> = (0..6).map(|i| (i, 2 * i, 2 * i + 2)).collect();
        assert_eq!(all, expected, "morsel hand-outs lost or duplicated");
    });
    assert_coverage(report, "dispenser exactly-once");
}
