//! Property tests for the vectorized execution path: compiled
//! expression/predicate programs must agree with the tree-walking
//! evaluators row for row, and the vectorized operator tasks (filter,
//! project, aggregate, sort, hash join, merge join, nested-loop join)
//! must reproduce the tuple-at-a-time reference executor on randomized
//! schemas, pages, and plans. Typed-error behavior rides along:
//! malformed plans are rejected at instantiation and unsorted merge
//! inputs fail the query with an [`ExecError`], not the process.

use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
use cordoba_exec::vexpr::{CompiledExpr, CompiledPredicate, ExprScratch};
use cordoba_exec::{reference, wiring, ExecError, JoinKind, OpCost, PhysicalPlan};
use cordoba_sim::Simulator;
use cordoba_storage::{Catalog, DataType, Date, Field, Schema, TableBuilder, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// One random row: (Int, Float source, Date day, short string).
type RowSpec = (i64, i64, i64, String);

/// A stream of random recipe triples driving expression/predicate
/// construction; runs out gracefully (defaults end recursion).
struct Recipe<'a> {
    items: &'a [(u8, u8, i64)],
    at: usize,
}

impl<'a> Recipe<'a> {
    fn new(items: &'a [(u8, u8, i64)]) -> Self {
        Self { items, at: 0 }
    }

    fn next(&mut self) -> (u8, u8, i64) {
        let item = self.items.get(self.at).copied().unwrap_or((3, 0, 1));
        self.at += 1;
        item
    }
}

fn cmp_op(sel: u8) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][(sel % 6) as usize]
}

/// Builds a random well-typed numeric expression over columns 0 (Int)
/// and 1 (Float).
fn gen_num_expr(r: &mut Recipe<'_>, depth: u32) -> ScalarExpr {
    let (kind, _, lit) = r.next();
    match kind % 8 {
        0..=2 if depth > 0 => {
            let a = Box::new(gen_num_expr(r, depth - 1));
            let b = Box::new(gen_num_expr(r, depth - 1));
            match kind % 3 {
                0 => ScalarExpr::Add(a, b),
                1 => ScalarExpr::Sub(a, b),
                _ => ScalarExpr::Mul(a, b),
            }
        }
        0 | 4 => ScalarExpr::col(0),
        1 | 5 => ScalarExpr::col(1),
        2 | 6 => ScalarExpr::IntLit(lit),
        _ => ScalarExpr::FloatLit(lit as f64 * 0.5),
    }
}

/// Builds a random well-typed predicate over the 4-column test schema.
fn gen_pred(r: &mut Recipe<'_>, depth: u32) -> Predicate {
    let (kind, op_sel, lit) = r.next();
    let op = cmp_op(op_sel);
    match kind % 11 {
        0 if depth > 0 => {
            let n = 1 + (lit.unsigned_abs() % 3) as usize;
            Predicate::And((0..n).map(|_| gen_pred(r, depth - 1)).collect())
        }
        1 if depth > 0 => {
            let n = 1 + (lit.unsigned_abs() % 3) as usize;
            Predicate::Or((0..n).map(|_| gen_pred(r, depth - 1)).collect())
        }
        2 if depth > 0 => Predicate::Not(Box::new(gen_pred(r, depth - 1))),
        3 => Predicate::True,
        4 => Predicate::col_cmp(0, op, lit),
        5 => Predicate::col_cmp(1, op, lit as f64 * 0.5),
        6 => Predicate::col_cmp(2, op, Date(lit as i32)),
        7 => Predicate::col_cmp(
            3,
            op,
            ["", "a", "ab", "bca", "c"][(lit.unsigned_abs() % 5) as usize],
        ),
        8 => Predicate::Like {
            col: 3,
            pattern: ["%a%", "b%", "%c", "%a%b%", "abc", "%"][(lit.unsigned_abs() % 6) as usize]
                .to_string(),
        },
        _ => Predicate::cmp(gen_num_expr(r, 1), op, gen_num_expr(r, 1)),
    }
}

fn test_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
        Field::new("d", DataType::Date),
        Field::new("s", DataType::Str(3)),
    ])
}

/// Registers the random rows as table `t` with small (128 B) pages so
/// non-trivial inputs span several pages.
fn catalog(rows: &[RowSpec]) -> Catalog {
    let mut tb = TableBuilder::with_page_size("t", test_schema(), 128);
    for (k, v, d, s) in rows {
        tb.push_row(&[
            Value::Int(*k),
            Value::Float(*v as f64 * 0.5),
            Value::Date(Date(*d as i32)),
            Value::Str(s.clone()),
        ]);
    }
    let mut c = Catalog::new();
    c.register(tb.finish());
    c
}

fn scan() -> Box<PhysicalPlan> {
    Box::new(PhysicalPlan::Scan {
        table: "t".into(),
        cost: OpCost::default(),
    })
}

/// Runs `plan` through the simulator wiring; `Err` carries either an
/// instantiation rejection or a runtime fault.
fn try_run_sim(cat: &Catalog, plan: &PhysicalPlan) -> Result<Vec<Vec<Value>>, ExecError> {
    let mut sim = Simulator::new(3);
    let (rx, _ops, res) =
        wiring::instantiate(&mut sim, cat, plan, "vq", &wiring::WiringConfig::default())?;
    wiring::run_and_collect(&mut sim, rx, OpCost::default(), &res.fault)
}

/// Runs `plan` through the simulator wiring and collects result rows.
fn run_sim(cat: &Catalog, plan: &PhysicalPlan) -> Vec<Vec<Value>> {
    try_run_sim(cat, plan).expect("plan wires and runs")
}

fn rows_strategy() -> impl Strategy<Value = Vec<RowSpec>> {
    proptest::collection::vec((-20i64..20, -40i64..40, 0i64..30, "[a-c]{0,3}"), 0..100)
}

fn recipe_strategy() -> impl Strategy<Value = Vec<(u8, u8, i64)>> {
    proptest::collection::vec((0u8..=255, 0u8..=255, -30i64..30), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CompiledPredicate::select picks exactly the rows the
    /// tree-walking Predicate::eval accepts, page by page.
    #[test]
    fn compiled_predicate_matches_tree_walk(rows in rows_strategy(), seed in recipe_strategy()) {
        let cat = catalog(&rows);
        let pred = gen_pred(&mut Recipe::new(&seed), 2);
        let table = cat.expect("t");
        let compiled = CompiledPredicate::compile(&pred, table.schema()).expect("compiles");
        let mut scratch = ExprScratch::default();
        let mut sel = Vec::new();
        for page in table.pages() {
            compiled.select(page, &mut scratch, &mut sel);
            let expected: Vec<u32> = page
                .tuples()
                .enumerate()
                .filter_map(|(r, t)| pred.eval(&t).then_some(r as u32))
                .collect();
            prop_assert_eq!(&sel, &expected, "predicate {:?}", pred);
        }
    }

    /// CompiledExpr::eval_f64_into agrees bit-for-bit with the
    /// tree-walking ScalarExpr::eval coerced to f64 (same per-row
    /// operation order, so float results are identical, not just close).
    #[test]
    fn compiled_expr_matches_tree_walk(rows in rows_strategy(), seed in recipe_strategy()) {
        let cat = catalog(&rows);
        let expr = gen_num_expr(&mut Recipe::new(&seed), 3);
        let table = cat.expect("t");
        let compiled = CompiledExpr::compile(&expr, table.schema()).expect("compiles");
        let mut scratch = ExprScratch::default();
        let mut out = Vec::new();
        for page in table.pages() {
            compiled.eval_f64_into(page, &mut scratch, &mut out);
            prop_assert_eq!(out.len(), page.rows());
            for (r, t) in page.tuples().enumerate() {
                let expected = expr.eval(&t).as_f64().expect("numeric expression");
                prop_assert_eq!(
                    out[r].to_bits(), expected.to_bits(),
                    "expr {:?} row {}: {} vs {}", expr, r, out[r], expected
                );
            }
        }
    }

    /// The vectorized filter task reproduces the reference executor.
    #[test]
    fn vectorized_filter_matches_reference(rows in rows_strategy(), seed in recipe_strategy()) {
        let cat = catalog(&rows);
        let plan = PhysicalPlan::Filter {
            input: scan(),
            predicate: gen_pred(&mut Recipe::new(&seed), 2),
            cost: OpCost::default(),
        };
        let expected = reference::execute(&cat, &plan);
        let got = run_sim(&cat, &plan);
        prop_assert_eq!(got, expected);
    }

    /// The vectorized projection task reproduces the reference
    /// executor, including string pass-through and literal columns.
    #[test]
    fn vectorized_project_matches_reference(rows in rows_strategy(), seed in recipe_strategy()) {
        let cat = catalog(&rows);
        let mut r = Recipe::new(&seed);
        let plan = PhysicalPlan::Project {
            input: scan(),
            exprs: vec![
                ("e0".into(), gen_num_expr(&mut r, 2)),
                ("e1".into(), gen_num_expr(&mut r, 2)),
                ("s".into(), ScalarExpr::col(3)),
                ("lit".into(), ScalarExpr::StrLit("xy".into())),
            ],
            cost: OpCost::default(),
        };
        let expected = reference::execute(&cat, &plan);
        let got = run_sim(&cat, &plan);
        prop_assert_eq!(got, expected);
    }

    /// The vectorized aggregate task reproduces the reference executor
    /// across all key paths: no groups, packed narrow keys (Int,
    /// string), and wide keys on the general path.
    #[test]
    fn vectorized_aggregate_matches_reference(
        rows in rows_strategy(),
        seed in recipe_strategy(),
        group_sel in 0u8..4,
    ) {
        let cat = catalog(&rows);
        let mut r = Recipe::new(&seed);
        let group_by = match group_sel {
            0 => vec![],         // packed: zero-width key
            1 => vec![0],        // packed: single Int
            2 => vec![3],        // packed: 3-byte string
            _ => vec![0, 1],     // general: 16-byte key
        };
        let plan = PhysicalPlan::Aggregate {
            input: scan(),
            group_by,
            aggs: vec![
                ("n".into(), Agg::Count),
                ("sum".into(), Agg::Sum(gen_num_expr(&mut r, 2))),
                ("avg".into(), Agg::Avg(gen_num_expr(&mut r, 2))),
                ("min".into(), Agg::Min(gen_num_expr(&mut r, 2))),
                ("max".into(), Agg::Max(gen_num_expr(&mut r, 2))),
            ],
            cost: OpCost::default(),
        };
        let expected = reference::execute(&cat, &plan);
        let got = run_sim(&cat, &plan);
        prop_assert_eq!(got, expected);
    }

    /// The arena-backed hash join reproduces the reference executor for
    /// every join kind.
    #[test]
    fn vectorized_hash_join_matches_reference(
        left in proptest::collection::vec((0i64..8, 0i64..100), 0..40),
        right in proptest::collection::vec((0i64..8, 0i64..100), 0..40),
        kind_sel in 0u8..4,
    ) {
        let kind = [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti, JoinKind::LeftOuter]
            [kind_sel as usize];
        let mut cat = Catalog::new();
        for (name, rows) in [("l", &left), ("r", &right)] {
            let schema = Schema::new(vec![
                Field::new(format!("{name}k"), DataType::Int),
                Field::new(format!("{name}v"), DataType::Int),
            ]);
            let mut tb = TableBuilder::with_page_size(name, schema, 128);
            for (k, v) in rows {
                tb.push_row(&[Value::Int(*k), Value::Int(*v)]);
            }
            cat.register(tb.finish());
        }
        let plan = PhysicalPlan::HashJoin {
            build: Box::new(PhysicalPlan::Scan { table: "r".into(), cost: OpCost::default() }),
            probe: Box::new(PhysicalPlan::Scan { table: "l".into(), cost: OpCost::default() }),
            build_key: 0,
            probe_key: 0,
            kind,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let expected = reference::canonicalize(reference::execute(&cat, &plan));
        let got = reference::canonicalize(run_sim(&cat, &plan));
        prop_assert_eq!(got, expected, "{:?}", kind);
    }

    /// The vectorized sort task (packed-u64 fast path and the wide-key
    /// fallback alike) reproduces the reference executor, including
    /// duplicate keys (stability) and empty inputs.
    #[test]
    fn vectorized_sort_matches_reference(rows in rows_strategy(), key_sel in 0u8..8) {
        let cat = catalog(&rows);
        let keys = match key_sel {
            0 => vec![0],        // packed: Int
            1 => vec![1],        // packed: Float (total order)
            2 => vec![2],        // packed: Date
            3 => vec![3],        // packed: Str(3)
            4 => vec![2, 3],     // packed: 7-byte Date+Str composite
            5 => vec![3, 2],     // packed: Str-major composite
            6 => vec![0, 1],     // general: 16-byte key
            _ => vec![3, 0],     // general: 11-byte key
        };
        let plan = PhysicalPlan::Sort {
            input: scan(),
            keys,
            cost: OpCost::default(),
        };
        let expected = reference::execute(&cat, &plan);
        let got = run_sim(&cat, &plan);
        prop_assert_eq!(got, expected);
    }

    /// The vectorized merge join (gathered key columns) reproduces the
    /// reference executor on sorted random inputs with duplicate keys
    /// and empty sides. Inputs are sorted by the (vectorized) sort
    /// operator, so this also pins the sort → merge composition.
    #[test]
    fn vectorized_merge_join_matches_reference(
        left in proptest::collection::vec((0i64..6, 0i64..100), 0..40),
        right in proptest::collection::vec((0i64..6, 0i64..100), 0..40),
    ) {
        let cat = kv_catalog(&left, &right);
        let sorted = |table: &str| Box::new(PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::Scan { table: table.into(), cost: OpCost::default() }),
            keys: vec![0],
            cost: OpCost::default(),
        });
        let plan = PhysicalPlan::MergeJoin {
            left: sorted("l"),
            right: sorted("r"),
            left_key: 0,
            right_key: 0,
            cost: OpCost::default(),
        };
        let expected = reference::execute(&cat, &plan);
        let got = run_sim(&cat, &plan);
        prop_assert_eq!(got, expected);
    }

    /// The vectorized nested-loop join (compiled predicate over
    /// candidate pages with selection vectors) reproduces the reference
    /// executor on random inputs and random predicates — including
    /// always-false predicates and empty sides.
    #[test]
    fn vectorized_nlj_matches_reference(
        left in proptest::collection::vec((0i64..6, -20i64..20), 0..12),
        right in proptest::collection::vec((0i64..6, -20i64..20), 0..12),
        seed in recipe_strategy(),
    ) {
        let cat = kv_catalog(&left, &right);
        let plan = PhysicalPlan::NestedLoopJoin {
            outer: Box::new(PhysicalPlan::Scan { table: "l".into(), cost: OpCost::default() }),
            inner: Box::new(PhysicalPlan::Scan { table: "r".into(), cost: OpCost::default() }),
            // Predicate over the concatenated 4-Int-column pair schema.
            predicate: gen_int_pred(&mut Recipe::new(&seed), 2, 4),
            cost: OpCost::default(),
        };
        let expected = reference::execute(&cat, &plan);
        let got = run_sim(&cat, &plan);
        prop_assert_eq!(got, expected, "{:?}", plan);
    }
}

/// Registers `l` and `r` as two-column (Int key, Int payload) tables on
/// small pages so non-trivial inputs span several pages.
fn kv_catalog(left: &[(i64, i64)], right: &[(i64, i64)]) -> Catalog {
    let mut cat = Catalog::new();
    for (name, rows) in [("l", left), ("r", right)] {
        let schema = Schema::new(vec![
            Field::new(format!("{name}k"), DataType::Int),
            Field::new(format!("{name}v"), DataType::Int),
        ]);
        let mut tb = TableBuilder::with_page_size(name, schema, 128);
        for (k, v) in rows {
            tb.push_row(&[Value::Int(*k), Value::Int(*v)]);
        }
        cat.register(tb.finish());
    }
    cat
}

/// Builds a random well-typed predicate over `ncols` Int columns.
fn gen_int_pred(r: &mut Recipe<'_>, depth: u32, ncols: usize) -> Predicate {
    let (kind, op_sel, lit) = r.next();
    let op = cmp_op(op_sel);
    let col = |sel: i64| ScalarExpr::col(sel.unsigned_abs() as usize % ncols);
    match kind % 8 {
        0 if depth > 0 => {
            let n = 1 + (lit.unsigned_abs() % 3) as usize;
            Predicate::And((0..n).map(|_| gen_int_pred(r, depth - 1, ncols)).collect())
        }
        1 if depth > 0 => {
            let n = 1 + (lit.unsigned_abs() % 3) as usize;
            Predicate::Or((0..n).map(|_| gen_int_pred(r, depth - 1, ncols)).collect())
        }
        2 if depth > 0 => Predicate::Not(Box::new(gen_int_pred(r, depth - 1, ncols))),
        3 => Predicate::True,
        4 | 5 => Predicate::cmp(col(lit), op, ScalarExpr::IntLit(lit)),
        _ => Predicate::cmp(col(lit), op, col(lit.wrapping_add(op_sel as i64))),
    }
}

/// An unsorted merge input fails the query with a typed error — the
/// worker thread (simulator) and sibling tasks keep running.
#[test]
fn unsorted_merge_input_returns_typed_error() {
    let cat = kv_catalog(&[(5, 1), (2, 2), (9, 3)], &[(1, 1), (2, 2)]);
    // No sorts below the merge join: the left scan violates the
    // contract at runtime, after instantiation succeeded.
    let plan = PhysicalPlan::MergeJoin {
        left: Box::new(PhysicalPlan::Scan {
            table: "l".into(),
            cost: OpCost::default(),
        }),
        right: Box::new(PhysicalPlan::Scan {
            table: "r".into(),
            cost: OpCost::default(),
        }),
        left_key: 0,
        right_key: 0,
        cost: OpCost::default(),
    };
    let err = try_run_sim(&cat, &plan).expect_err("unsorted input must fail");
    assert_eq!(
        err,
        ExecError::UnsortedMergeInput {
            side: "left",
            prev: 5,
            key: 2
        }
    );
}

/// Malformed plans come back as typed instantiation errors — every
/// operator constructor validates, nothing is spawned, nothing panics.
#[test]
fn malformed_plans_return_typed_errors() {
    let cat = catalog(&[(1, 2, 3, "a".into())]);
    let cases: Vec<PhysicalPlan> = vec![
        // String column in arithmetic.
        PhysicalPlan::Project {
            input: scan(),
            exprs: vec![(
                "e".into(),
                ScalarExpr::Add(
                    Box::new(ScalarExpr::col(3)),
                    Box::new(ScalarExpr::IntLit(1)),
                ),
            )],
            cost: OpCost::default(),
        },
        // String literal in a numeric filter expression.
        PhysicalPlan::Filter {
            input: scan(),
            predicate: Predicate::cmp(
                ScalarExpr::Add(
                    Box::new(ScalarExpr::col(0)),
                    Box::new(ScalarExpr::StrLit("x".into())),
                ),
                CmpOp::Eq,
                ScalarExpr::IntLit(1),
            ),
            cost: OpCost::default(),
        },
        // Date vs float comparison.
        PhysicalPlan::Filter {
            input: scan(),
            predicate: Predicate::col_cmp(2, CmpOp::Lt, 3.0),
            cost: OpCost::default(),
        },
        // LIKE over a numeric column.
        PhysicalPlan::Filter {
            input: scan(),
            predicate: Predicate::Like {
                col: 0,
                pattern: "%a%".into(),
            },
            cost: OpCost::default(),
        },
        // Aggregate over a string input.
        PhysicalPlan::Aggregate {
            input: scan(),
            group_by: vec![],
            aggs: vec![("s".into(), Agg::Sum(ScalarExpr::col(3)))],
            cost: OpCost::default(),
        },
        // Hash join keyed on a non-Int column.
        PhysicalPlan::HashJoin {
            build: scan(),
            probe: scan(),
            build_key: 1,
            probe_key: 0,
            kind: JoinKind::Inner,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        },
        // NLJ predicate referencing an out-of-range pair column.
        PhysicalPlan::NestedLoopJoin {
            outer: scan(),
            inner: scan(),
            predicate: Predicate::col_cmp(99, CmpOp::Eq, 1i64),
            cost: OpCost::default(),
        },
    ];
    for plan in cases {
        let err = try_run_sim(&cat, &plan).expect_err("malformed plan must be rejected");
        assert!(matches!(err, ExecError::PlanType(_)), "{plan:?}: {err}");
    }
}
