//! Integration: the public reference-executor surface — plan execution,
//! schema derivation, and canonicalization — behaves as the engine and
//! workload crates assume.

use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
use cordoba_exec::{reference, JoinKind, OpCost, PhysicalPlan};
use cordoba_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};

fn catalog() -> Catalog {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ]);
    let mut b = TableBuilder::new("t", schema);
    for i in 0..500 {
        b.push_row(&[Value::Int(i % 7), Value::Float(i as f64)]);
    }
    let mut c = Catalog::new();
    c.register(b.finish());
    c
}

fn scan() -> Box<PhysicalPlan> {
    Box::new(PhysicalPlan::Scan {
        table: "t".into(),
        cost: OpCost::default(),
    })
}

#[test]
fn executed_rows_match_derived_schema_width() {
    let catalog = catalog();
    let plans = [
        PhysicalPlan::Aggregate {
            input: scan(),
            group_by: vec![0],
            aggs: vec![
                ("n".into(), Agg::Count),
                ("sum_v".into(), Agg::Sum(ScalarExpr::col(1))),
            ],
            cost: OpCost::default(),
        },
        PhysicalPlan::HashJoin {
            build: scan(),
            probe: scan(),
            build_key: 0,
            probe_key: 0,
            kind: JoinKind::Inner,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        },
        PhysicalPlan::Project {
            input: scan(),
            exprs: vec![(
                "doubled".into(),
                ScalarExpr::Mul(
                    Box::new(ScalarExpr::col(1)),
                    Box::new(ScalarExpr::FloatLit(2.0)),
                ),
            )],
            cost: OpCost::default(),
        },
    ];
    for plan in &plans {
        let width = plan.output_schema(&catalog).len();
        let rows = reference::execute(&catalog, plan);
        assert!(!rows.is_empty(), "{} returned nothing", plan.op_name());
        for row in &rows {
            assert_eq!(row.len(), width, "{} row width", plan.op_name());
        }
    }
}

#[test]
fn canonicalize_is_order_insensitive_and_idempotent() {
    let catalog = catalog();
    let filtered = PhysicalPlan::Filter {
        input: scan(),
        predicate: Predicate::col_cmp(0, CmpOp::Lt, 4i64),
        cost: OpCost::default(),
    };
    let rows = reference::execute(&catalog, &filtered);
    let mut reversed = rows.clone();
    reversed.reverse();
    let a = reference::canonicalize(rows);
    let b = reference::canonicalize(reversed);
    assert_eq!(a, b, "canonical form must not depend on input order");
    assert_eq!(a.clone(), reference::canonicalize(a), "idempotence");
}

#[test]
fn sort_orders_rows_by_key() {
    let catalog = catalog();
    let sorted = PhysicalPlan::Sort {
        input: scan(),
        keys: vec![0],
        cost: OpCost::default(),
    };
    let rows = reference::execute(&catalog, &sorted);
    let keys: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    let mut expect = keys.clone();
    expect.sort();
    assert_eq!(keys, expect, "sort output not ordered");
}
