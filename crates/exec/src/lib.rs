//! # cordoba-exec — paged relational operators
//!
//! The operator layer of the reproduced engine. Every operator:
//!
//! * consumes and produces whole [`cordoba_storage::Page`]s (the paper's
//!   Section 3.2 execution model: intermediate results packed into 4 K
//!   pages, improving locality and amortizing producer-consumer
//!   synchronization);
//! * runs as a cooperative [`cordoba_sim::Task`], doing one page of real
//!   computation per step and charging a **calibrated virtual cost**
//!   ([`OpCost`]): `per_tuple` input work (the model's `w`) plus
//!   `out_per_tuple` per consumer delivered (the model's `s`);
//! * can fan its output out to *multiple* consumers ([`ops::Fanout`]) —
//!   the mechanism work sharing uses, and precisely the serialization
//!   point the paper analyzes: a pivot with `M` consumers pays
//!   `M · s` per tuple.
//!
//! [`PhysicalPlan`] describes executable plans; [`wiring::instantiate`]
//! spawns one task per operator into a simulator (unshared wiring — the
//! engine crate adds sharing). the [`mod@reference`] module executes the same plans
//! synchronously as a correctness oracle: simulator execution must
//! produce identical results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod error;
pub mod explain;
pub mod expr;
pub mod memory;
pub mod ops;
pub mod parallel;
pub mod plan;
pub mod reference;
pub mod subsume;
pub mod vexpr;
pub mod wiring;

pub use cost::OpCost;
pub use error::{ExecError, FaultCell};
pub use explain::explain;
pub use expr::{Agg, CmpOp, Predicate, Scalar, ScalarExpr};
pub use memory::{MemoryBroker, MemoryConfig, QueryResources, SpillContext};
pub use parallel::{MorselDispenser, ParallelConfig};
pub use plan::{JoinKind, PhysicalPlan};
pub use subsume::{coverage_estimate, fingerprint, subsume_residual, NormPred};
pub use vexpr::{CompiledExpr, CompiledPredicate, ExprScratch};
