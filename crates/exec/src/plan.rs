//! Executable physical plans and their output-schema derivation.

use crate::cost::OpCost;
use crate::error::ExecError;
use crate::expr::{Agg, Predicate, ScalarExpr};
use cordoba_storage::{Catalog, DataType, Field, Schema};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Join semantics supported by the hash join operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    /// Emit probe ⨝ build rows for every key match.
    Inner,
    /// Emit each probe row that has at least one build match (EXISTS —
    /// TPC-H Q4's correlated subquery).
    Semi,
    /// Emit each probe row with no build match (NOT EXISTS).
    Anti,
    /// Emit every probe row; unmatched rows get type-default build
    /// columns (0 / 0.0 / epoch / empty). TPC-H Q13's outer join: a
    /// customer without orders joins an order-count of 0.
    LeftOuter,
}

/// A physical query plan. The engine's sharing detection goes beyond
/// structural equality (`PartialEq`): plans whose filter-peeled bases
/// hash to the same [`crate::subsume::fingerprint`] are candidates, and
/// a narrower predicate window merges into a wider one via
/// [`crate::subsume::subsume_residual`], re-applying the non-implied clauses
/// as a residual filter on the shared fragment's output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhysicalPlan {
    /// Full scan of a catalog table.
    Scan {
        /// Table name.
        table: String,
        /// Cost parameters.
        cost: OpCost,
    },
    /// Placeholder leaf whose pages arrive from an externally provided
    /// channel — used by the engine to graft a query's private
    /// above-pivot fragment onto a shared pivot's output.
    Source {
        /// Schema of the pages this source will deliver.
        schema: SchemaRef,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicate over the input schema.
        predicate: Predicate,
        /// Cost parameters.
        cost: OpCost,
    },
    /// Projection / computed columns.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Output columns: `(name, expression over input schema)`.
        exprs: Vec<(String, ScalarExpr)>,
        /// Cost parameters.
        cost: OpCost,
    },
    /// Hash aggregation with optional grouping (stop-&-go).
    Aggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Indices of group-by columns in the input schema.
        group_by: Vec<usize>,
        /// Aggregates: `(output name, function)`.
        aggs: Vec<(String, Agg)>,
        /// Cost parameters.
        cost: OpCost,
    },
    /// Full sort (stop-&-go).
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Key column indices, major first.
        keys: Vec<usize>,
        /// Cost parameters.
        cost: OpCost,
    },
    /// Hash join: blocking build phase, pipelined probe phase.
    HashJoin {
        /// Build-side input (fully consumed first).
        build: Box<PhysicalPlan>,
        /// Probe-side input (streamed).
        probe: Box<PhysicalPlan>,
        /// Key column index in the build schema (Int).
        build_key: usize,
        /// Key column index in the probe schema (Int).
        probe_key: usize,
        /// Join semantics.
        kind: JoinKind,
        /// Cost of consuming build tuples.
        build_cost: OpCost,
        /// Cost of probing + emitting (its `out_per_tuple` is the join's
        /// per-consumer `s`).
        probe_cost: OpCost,
    },
    /// Block nested-loop join with an arbitrary predicate over the
    /// concatenated (outer ++ inner) schema. Inner side materialized.
    NestedLoopJoin {
        /// Outer (streamed) input.
        outer: Box<PhysicalPlan>,
        /// Inner (materialized) input.
        inner: Box<PhysicalPlan>,
        /// Predicate over outer ++ inner columns.
        predicate: Predicate,
        /// Cost per (outer × inner) pair examined.
        cost: OpCost,
    },
    /// Streaming inner merge join over two inputs sorted ascending by
    /// their (Int) key columns — typically fed by [`PhysicalPlan::Sort`]
    /// children, realizing the paper's Section 5.3.2 sort/merge
    /// decomposition at the operator level.
    MergeJoin {
        /// Left input (sorted by `left_key`).
        left: Box<PhysicalPlan>,
        /// Right input (sorted by `right_key`).
        right: Box<PhysicalPlan>,
        /// Key column index in the left schema (Int).
        left_key: usize,
        /// Key column index in the right schema (Int).
        right_key: usize,
        /// Cost parameters (input per tuple; `out_per_tuple` per
        /// consumer on emitted rows).
        cost: OpCost,
    },
}

/// Serializable wrapper for schema references in [`PhysicalPlan::Source`].
#[derive(Debug, Clone)]
pub struct SchemaRef(pub Arc<Schema>);

impl PartialEq for SchemaRef {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Serialize for SchemaRef {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.0.serialize(s)
    }
}
impl<'de> Deserialize<'de> for SchemaRef {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(SchemaRef(Arc::new(Schema::deserialize(d)?)))
    }
}

impl PhysicalPlan {
    /// Derives the output schema against a catalog.
    ///
    /// # Panics
    ///
    /// Panics on unknown tables or out-of-range column indices — use
    /// [`PhysicalPlan::try_output_schema`] for a fallible derivation.
    pub fn output_schema(&self, catalog: &Catalog) -> Arc<Schema> {
        self.try_output_schema(catalog)
            // lint: allow(documented '# Panics' wrapper; fallible twin is try_output_schema)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Derives the output schema against a catalog, returning a typed
    /// error on unknown tables or out-of-range column indices.
    pub fn try_output_schema(&self, catalog: &Catalog) -> Result<Arc<Schema>, ExecError> {
        match self {
            PhysicalPlan::Scan { table, .. } => catalog
                .get(table)
                .map(|t| t.schema().clone())
                .ok_or_else(|| ExecError::plan(format!("no table '{table}' in catalog"))),
            PhysicalPlan::Source { schema } => Ok(schema.0.clone()),
            PhysicalPlan::Filter { input, .. } => input.try_output_schema(catalog),
            PhysicalPlan::Project { input, exprs, .. } => {
                let in_schema = input.try_output_schema(catalog)?;
                let fields = exprs
                    .iter()
                    .map(|(name, e)| {
                        Ok(Field::new(name.clone(), expr_type_checked(e, &in_schema)?))
                    })
                    .collect::<Result<Vec<_>, ExecError>>()?;
                Ok(Schema::new(fields))
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let in_schema = input.try_output_schema(catalog)?;
                let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
                for &i in group_by {
                    fields.push(
                        in_schema
                            .fields()
                            .get(i)
                            .cloned()
                            .ok_or_else(|| column_range_error("group-by", i, &in_schema))?,
                    );
                }
                for (name, agg) in aggs {
                    let dtype = match agg {
                        Agg::Count => DataType::Int,
                        Agg::Sum(_) | Agg::Avg(_) | Agg::Min(_) | Agg::Max(_) => DataType::Float,
                    };
                    fields.push(Field::new(name.clone(), dtype));
                }
                Ok(Schema::new(fields))
            }
            PhysicalPlan::Sort { input, .. } => input.try_output_schema(catalog),
            PhysicalPlan::HashJoin {
                build, probe, kind, ..
            } => match kind {
                JoinKind::Semi | JoinKind::Anti => probe.try_output_schema(catalog),
                JoinKind::Inner | JoinKind::LeftOuter => Ok(concat_schemas(
                    &probe.try_output_schema(catalog)?,
                    &build.try_output_schema(catalog)?,
                )),
            },
            PhysicalPlan::NestedLoopJoin { outer, inner, .. } => Ok(concat_schemas(
                &outer.try_output_schema(catalog)?,
                &inner.try_output_schema(catalog)?,
            )),
            PhysicalPlan::MergeJoin { left, right, .. } => Ok(concat_schemas(
                &left.try_output_schema(catalog)?,
                &right.try_output_schema(catalog)?,
            )),
        }
    }

    /// Immediate children (inputs) of this node.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::Scan { .. } | PhysicalPlan::Source { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Aggregate { input, .. }
            | PhysicalPlan::Sort { input, .. } => vec![input],
            PhysicalPlan::HashJoin { build, probe, .. } => vec![build, probe],
            PhysicalPlan::NestedLoopJoin { outer, inner, .. } => vec![outer, inner],
            PhysicalPlan::MergeJoin { left, right, .. } => vec![left, right],
        }
    }

    /// Short operator name for task labels and profiles.
    pub fn op_name(&self) -> String {
        match self {
            PhysicalPlan::Scan { table, .. } => format!("scan({table})"),
            PhysicalPlan::Source { .. } => "source".into(),
            PhysicalPlan::Filter { .. } => "filter".into(),
            PhysicalPlan::Project { .. } => "project".into(),
            PhysicalPlan::Aggregate { .. } => "aggregate".into(),
            PhysicalPlan::Sort { .. } => "sort".into(),
            PhysicalPlan::HashJoin { kind, .. } => format!("hashjoin({kind:?})"),
            PhysicalPlan::NestedLoopJoin { .. } => "nlj".into(),
            PhysicalPlan::MergeJoin { .. } => "mergejoin".into(),
        }
    }

    /// Number of operator nodes in the plan.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }
}

/// Concatenates two schemas (left fields first); name collisions on the
/// right get a `_r` suffix.
pub fn concat_schemas(left: &Arc<Schema>, right: &Arc<Schema>) -> Arc<Schema> {
    let mut fields: Vec<Field> = left.fields().to_vec();
    for f in right.fields() {
        let name = if fields.iter().any(|g| g.name == f.name) {
            format!("{}_r", f.name)
        } else {
            f.name.clone()
        };
        fields.push(Field::new(name, f.dtype));
    }
    Schema::new(fields)
}

/// Infers the storage type of an expression against a schema.
///
/// # Panics
///
/// Panics on out-of-range column indices — use [`expr_type_checked`]
/// for a fallible derivation.
pub fn expr_type(expr: &ScalarExpr, schema: &Arc<Schema>) -> DataType {
    // lint: allow(documented '# Panics' wrapper; fallible twin is expr_type_checked)
    expr_type_checked(expr, schema).unwrap_or_else(|e| panic!("{e}"))
}

/// Infers the storage type of an expression against a schema, returning
/// a typed error on out-of-range column indices.
pub fn expr_type_checked(expr: &ScalarExpr, schema: &Arc<Schema>) -> Result<DataType, ExecError> {
    match expr {
        ScalarExpr::Col(i) => schema
            .fields()
            .get(*i)
            .map(|f| f.dtype)
            .ok_or_else(|| column_range_error("expression", *i, schema)),
        ScalarExpr::IntLit(_) => Ok(DataType::Int),
        ScalarExpr::FloatLit(_) => Ok(DataType::Float),
        ScalarExpr::DateLit(_) => Ok(DataType::Date),
        ScalarExpr::StrLit(s) => Ok(DataType::Str(s.len())),
        ScalarExpr::Add(a, b) | ScalarExpr::Sub(a, b) | ScalarExpr::Mul(a, b) => {
            match (expr_type_checked(a, schema)?, expr_type_checked(b, schema)?) {
                (DataType::Int, DataType::Int) => Ok(DataType::Int),
                _ => Ok(DataType::Float),
            }
        }
    }
}

/// Error for a column index outside a schema, labeled by use site.
pub(crate) fn column_range_error(what: &str, idx: usize, schema: &Arc<Schema>) -> ExecError {
    ExecError::plan(format!(
        "{what} column {idx} out of range for schema of {} fields",
        schema.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_storage::{TableBuilder, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
            Field::new("tag", DataType::Str(4)),
        ]);
        let mut b = TableBuilder::new("t", schema);
        b.push_row(&[Value::Int(1), Value::Float(2.0), Value::Str("a".into())]);
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    fn scan() -> PhysicalPlan {
        PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::default(),
        }
    }

    #[test]
    fn scan_filter_sort_preserve_schema() {
        let cat = catalog();
        let base = scan().output_schema(&cat);
        let f = PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Predicate::True,
            cost: OpCost::default(),
        };
        assert_eq!(f.output_schema(&cat), base);
        let s = PhysicalPlan::Sort {
            input: Box::new(scan()),
            keys: vec![0],
            cost: OpCost::default(),
        };
        assert_eq!(s.output_schema(&cat), base);
    }

    #[test]
    fn project_derives_types() {
        let cat = catalog();
        let p = PhysicalPlan::Project {
            input: Box::new(scan()),
            exprs: vec![
                (
                    "k2".into(),
                    ScalarExpr::Add(
                        Box::new(ScalarExpr::col(0)),
                        Box::new(ScalarExpr::IntLit(1)),
                    ),
                ),
                (
                    "vk".into(),
                    ScalarExpr::Mul(Box::new(ScalarExpr::col(1)), Box::new(ScalarExpr::col(0))),
                ),
                ("tag".into(), ScalarExpr::col(2)),
            ],
            cost: OpCost::default(),
        };
        let s = p.output_schema(&cat);
        assert_eq!(s.fields()[0].dtype, DataType::Int);
        assert_eq!(s.fields()[1].dtype, DataType::Float);
        assert_eq!(s.fields()[2].dtype, DataType::Str(4));
    }

    #[test]
    fn aggregate_schema_groups_then_aggs() {
        let cat = catalog();
        let a = PhysicalPlan::Aggregate {
            input: Box::new(scan()),
            group_by: vec![2],
            aggs: vec![
                ("n".into(), Agg::Count),
                ("total".into(), Agg::Sum(ScalarExpr::col(1))),
            ],
            cost: OpCost::default(),
        };
        let s = a.output_schema(&cat);
        assert_eq!(s.field_names(), vec!["tag", "n", "total"]);
        assert_eq!(s.fields()[1].dtype, DataType::Int);
        assert_eq!(s.fields()[2].dtype, DataType::Float);
    }

    #[test]
    fn join_schemas_by_kind() {
        let cat = catalog();
        let join = |kind| PhysicalPlan::HashJoin {
            build: Box::new(scan()),
            probe: Box::new(scan()),
            build_key: 0,
            probe_key: 0,
            kind,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let semi = join(JoinKind::Semi).output_schema(&cat);
        assert_eq!(semi.len(), 3);
        let inner = join(JoinKind::Inner).output_schema(&cat);
        assert_eq!(inner.len(), 6);
        // Collision suffixing.
        assert_eq!(
            inner.field_names(),
            vec!["k", "v", "tag", "k_r", "v_r", "tag_r"]
        );
        let outer = join(JoinKind::LeftOuter).output_schema(&cat);
        assert_eq!(outer.len(), 6);
    }

    #[test]
    fn plan_equality_drives_sharing_detection() {
        assert_eq!(scan(), scan());
        let other = PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::per_tuple(9.0),
        };
        assert_ne!(scan(), other);
        let f1 = PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Predicate::col_cmp(0, crate::expr::CmpOp::Lt, 5i64),
            cost: OpCost::default(),
        };
        let f2 = f1.clone();
        assert_eq!(f1, f2);
    }

    #[test]
    fn node_count_and_children() {
        let join = PhysicalPlan::HashJoin {
            build: Box::new(scan()),
            probe: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan()),
                predicate: Predicate::True,
                cost: OpCost::default(),
            }),
            build_key: 0,
            probe_key: 0,
            kind: JoinKind::Inner,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        assert_eq!(join.node_count(), 4);
        assert_eq!(join.children().len(), 2);
        assert_eq!(join.op_name(), "hashjoin(Inner)");
    }
}
