//! Per-query memory broker: grant/release accounting with an optional
//! hard budget.
//!
//! Every memory-hungry operator in a query shares one [`MemoryBroker`].
//! Before buffering input (a sort's page list, a join's build arena)
//! the operator asks the broker for a grant; a refused grant is the
//! signal to spill — convert buffered state to a [spill
//! file](cordoba_storage::spill) and release the grant — instead of
//! growing. The broker also records the high-water mark, which is what
//! the acceptance criterion "peak tracked memory ≤ 1.25 × budget" is
//! measured against.
//!
//! The account is lock-free atomic state behind an `Arc`, so one
//! per-query broker can serve a pool of morsel workers (the parallel
//! kernels in [`crate::parallel`]) as well as the single-threaded
//! simulator; clones share the same account. Single-threaded `peak()`
//! semantics are unchanged: with one caller, `peak` is exactly the
//! maximum of `used` over the grant history.

use crate::error::FaultCell;
use std::path::PathBuf;
// std re-exports in normal builds; model-checked shims under
// `--features model` (see tests/model_check.rs).
use shuttle_lite::sync::atomic::{AtomicUsize, Ordering};
use shuttle_lite::sync::Arc;

#[derive(Debug, Default)]
struct BrokerState {
    budget: Option<usize>,
    used: AtomicUsize,
    peak: AtomicUsize,
}

impl BrokerState {
    /// Raises `peak` to at least `used` (monotone CAS loop).
    fn bump_peak(&self, used: usize) {
        let mut peak = self.peak.load(Ordering::Relaxed);
        while used > peak {
            match self
                .peak
                .compare_exchange_weak(peak, used, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(observed) => peak = observed,
            }
        }
    }
}

/// Shared per-query memory account. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct MemoryBroker(Arc<BrokerState>);

impl MemoryBroker {
    /// A broker with no budget: every grant succeeds, usage is still
    /// tracked. This is the default and preserves the pre-broker
    /// behaviour (operators never spill).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A broker that refuses grants past `bytes` of tracked memory.
    pub fn with_budget(bytes: usize) -> Self {
        MemoryBroker(Arc::new(BrokerState {
            budget: Some(bytes),
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }))
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.0.budget
    }

    /// Requests `bytes`. Returns `false` (and grants nothing) if the
    /// request would push tracked usage past the budget — the caller
    /// should spill and retry or fall back to [`MemoryBroker::grant`].
    /// Safe under concurrent workers: the budget check and the charge
    /// are one atomic compare-exchange, so racing grants can never
    /// jointly overshoot the budget.
    pub fn try_grant(&self, bytes: usize) -> bool {
        let granted = self
            .0
            .used
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
                let next = used.saturating_add(bytes);
                match self.0.budget {
                    Some(budget) if next > budget => None,
                    _ => Some(next),
                }
            });
        match granted {
            Ok(prev) => {
                self.0.bump_peak(prev.saturating_add(bytes));
                true
            }
            Err(_) => false,
        }
    }

    /// Takes `bytes` unconditionally, still tracked against the peak.
    /// For small fixed overheads that spilling cannot eliminate (one
    /// in-flight page per spill buffer or merge cursor).
    pub fn grant(&self, bytes: usize) {
        let prev = self.0.used.fetch_add(bytes, Ordering::AcqRel);
        self.0.bump_peak(prev.saturating_add(bytes));
    }

    /// Returns `bytes` to the account.
    pub fn release(&self, bytes: usize) {
        // Saturating decrement: a release can never underflow the
        // account even if callers double-release under a race.
        let _ = self
            .0
            .used
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
                Some(used.saturating_sub(bytes))
            });
    }

    /// Currently granted bytes.
    pub fn used(&self) -> usize {
        self.0.used.load(Ordering::Acquire)
    }

    /// High-water mark of granted bytes over the broker's lifetime.
    pub fn peak(&self) -> usize {
        self.0.peak.load(Ordering::Acquire)
    }
}

/// Memory policy applied to every query a wiring config instantiates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Per-query budget in bytes; `None` means unbounded (operators
    /// buffer everything in memory, as before the broker existed).
    pub query_budget: Option<usize>,
    /// Directory for spill files; `None` uses the system temp dir.
    pub spill_dir: Option<PathBuf>,
    /// Maximum hash-join repartitioning depth before a still-oversized
    /// partition fails the query with
    /// [`ExecError::BudgetExhausted`](crate::ExecError::BudgetExhausted).
    pub max_recursion: u32,
    /// Upper bound on hash-join partition fan-out per level.
    pub max_partitions: usize,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            query_budget: None,
            spill_dir: None,
            max_recursion: 4,
            max_partitions: 64,
        }
    }
}

impl MemoryConfig {
    /// Builds a fresh broker honouring this config's budget.
    pub fn broker(&self) -> MemoryBroker {
        match self.query_budget {
            Some(b) => MemoryBroker::with_budget(b),
            None => MemoryBroker::unbounded(),
        }
    }
}

/// Everything an out-of-core operator needs to spill: the query's
/// memory account, its fault slot, and the spill policy knobs.
#[derive(Debug, Clone)]
pub struct SpillContext {
    /// The query's shared memory account.
    pub broker: MemoryBroker,
    /// The query's shared fault slot.
    pub fault: FaultCell,
    /// Directory spill files are created in.
    pub dir: PathBuf,
    /// Hash-join repartitioning depth cap.
    pub max_recursion: u32,
    /// Hash-join partition fan-out cap.
    pub max_partitions: usize,
}

impl SpillContext {
    /// Binds `cfg`'s policy to one query's broker and fault cell.
    pub fn new(cfg: &MemoryConfig, broker: MemoryBroker, fault: FaultCell) -> Self {
        SpillContext {
            broker,
            fault,
            dir: cfg.spill_dir.clone().unwrap_or_else(std::env::temp_dir),
            max_recursion: cfg.max_recursion,
            max_partitions: cfg.max_partitions,
        }
    }

    /// An unbounded context (never spills) — the default for direct
    /// operator construction in tests and benches.
    pub fn unbounded() -> Self {
        SpillContext::new(
            &MemoryConfig::default(),
            MemoryBroker::unbounded(),
            FaultCell::default(),
        )
    }

    /// A context with a `bytes` budget and default policy, spilling to
    /// the system temp dir.
    pub fn with_budget(bytes: usize) -> Self {
        SpillContext::new(
            &MemoryConfig::default(),
            MemoryBroker::with_budget(bytes),
            FaultCell::default(),
        )
    }
}

impl Default for SpillContext {
    fn default() -> Self {
        SpillContext::unbounded()
    }
}

/// The per-query runtime resources the wiring layer threads through a
/// plan: one fault slot and one memory account shared by every
/// operator of the query.
#[derive(Debug, Clone, Default)]
pub struct QueryResources {
    /// Shared fault slot — first runtime error wins.
    pub fault: FaultCell,
    /// Shared memory account.
    pub broker: MemoryBroker,
}

impl QueryResources {
    /// Fresh resources honouring `cfg`'s budget.
    pub fn for_config(cfg: &MemoryConfig) -> Self {
        QueryResources {
            fault: FaultCell::default(),
            broker: cfg.broker(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_broker_grants_everything() {
        let b = MemoryBroker::unbounded();
        assert!(b.try_grant(usize::MAX / 2));
        assert_eq!(b.budget(), None);
        assert_eq!(b.used(), usize::MAX / 2);
    }

    #[test]
    fn budget_refuses_over_limit_grants() {
        let b = MemoryBroker::with_budget(100);
        assert!(b.try_grant(60));
        assert!(!b.try_grant(50), "60 + 50 > 100");
        assert_eq!(b.used(), 60, "refused grant must not be charged");
        assert!(b.try_grant(40));
        assert_eq!(b.used(), 100);
    }

    #[test]
    fn release_frees_capacity_and_peak_sticks() {
        let b = MemoryBroker::with_budget(100);
        assert!(b.try_grant(80));
        b.release(80);
        assert_eq!(b.used(), 0);
        assert!(b.try_grant(90));
        assert_eq!(b.peak(), 90);
        b.release(90);
        assert_eq!(b.peak(), 90, "peak is a high-water mark");
    }

    #[test]
    fn forced_grant_exceeds_budget_but_is_tracked() {
        let b = MemoryBroker::with_budget(10);
        b.grant(25);
        assert_eq!(b.used(), 25);
        assert_eq!(b.peak(), 25);
        assert!(!b.try_grant(1));
    }

    #[test]
    fn clones_share_the_account() {
        let b = MemoryBroker::with_budget(100);
        let c = b.clone();
        assert!(b.try_grant(70));
        assert!(!c.try_grant(40));
        c.release(70);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn config_builds_matching_broker() {
        let cfg = MemoryConfig {
            query_budget: Some(4096),
            ..MemoryConfig::default()
        };
        assert_eq!(cfg.broker().budget(), Some(4096));
        assert_eq!(MemoryConfig::default().broker().budget(), None);
    }

    #[test]
    fn concurrent_grants_never_overshoot_the_budget() {
        // 8 workers hammer try_grant/release; the atomic
        // check-and-charge must keep tracked usage (and therefore the
        // peak) within the budget at every instant.
        let budget = 1000usize;
        let b = MemoryBroker::with_budget(budget);
        std::thread::scope(|scope| {
            for w in 0..8usize {
                let b = b.clone();
                scope.spawn(move || {
                    let chunk = 50 + 25 * (w % 4);
                    let mut held = Vec::new();
                    for _ in 0..200 {
                        if b.try_grant(chunk) {
                            assert!(b.used() <= budget, "used overshot budget");
                            held.push(chunk);
                        } else if let Some(bytes) = held.pop() {
                            b.release(bytes);
                        }
                    }
                    for bytes in held {
                        b.release(bytes);
                    }
                });
            }
        });
        assert_eq!(b.used(), 0, "all grants returned");
        assert!(b.peak() <= budget, "peak {} within budget", b.peak());
        assert!(b.peak() > 0, "some grant succeeded");
    }

    #[test]
    fn concurrent_forced_grants_account_exactly() {
        let b = MemoryBroker::unbounded();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let b = b.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        b.grant(3);
                    }
                });
            }
        });
        assert_eq!(b.used(), 12_000);
        assert_eq!(b.peak(), 12_000);
    }

    #[test]
    fn spill_context_defaults_to_temp_dir() {
        let ctx = SpillContext::unbounded();
        assert_eq!(ctx.dir, std::env::temp_dir());
        assert_eq!(ctx.max_recursion, 4);
        assert_eq!(ctx.max_partitions, 64);
    }
}
