//! Semantic fragment matching: plan fingerprints, a predicate-
//! subsumption lattice, and residual predicates.
//!
//! Structural equality (`PhysicalPlan == PhysicalPlan`) only detects
//! byte-identical sub-plans. Real shared-scan wins come from *overlap*:
//! `σ[1994 ≤ shipdate < 1995](lineitem)` is entirely contained in
//! `σ[1993 ≤ shipdate < 1996](lineitem)`, so a consumer of the narrow
//! fragment can be fed from the wide one through a cheap *residual*
//! filter (the clauses of the narrow predicate not already implied by
//! the wide one, evaluated with selection vectors on the shared pivot's
//! output).
//!
//! Three pieces:
//!
//! * [`fingerprint`] — a canonical hash of a fragment's *shape*: the
//!   sub-plan with its root filter chain peeled off and the predicate
//!   constants hoisted out. Equal fingerprints are a necessary
//!   condition for subsumption, so the engine's fragment cache can
//!   bucket in-flight and completed fragments by fingerprint and only
//!   run the full lattice test within a bucket.
//! * [`NormPred`] — a conjunction normalized into per-column intervals
//!   over `Int`/`Float`/`Date` columns plus an opaque "rest" (clauses
//!   the lattice cannot order, compared structurally). Interval
//!   containment per column gives the subsumption partial order.
//! * [`subsume_residual`] — the complete test: `wide` subsumes `narrow`
//!   iff their filter-peeled bases are structurally equal and every
//!   constraint of `wide` is implied by `narrow`; on success it returns
//!   the minimal residual predicate ([`Predicate::True`] for an exact
//!   match, so exact sharing wires identically to the historic path).

use crate::expr::{CmpOp, Predicate, ScalarExpr};
use crate::plan::PhysicalPlan;
use crate::OpCost;
use cordoba_storage::Date;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// A typed constant a range clause compares a column against. Only
/// `Int`, `Float` and `Date` participate in the lattice; string
/// comparisons stay in the structural "rest".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundValue {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// Date constant.
    Date(Date),
}

impl BoundValue {
    /// Same-type ordering; values of different types are incomparable
    /// (a clause mixing types falls back to the structural rest).
    fn cmp_same(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (BoundValue::Int(a), BoundValue::Int(b)) => Some(a.cmp(b)),
            (BoundValue::Float(a), BoundValue::Float(b)) => a.partial_cmp(b),
            (BoundValue::Date(a), BoundValue::Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Numeric view for coverage-width estimates (dates in days).
    fn as_f64(&self) -> f64 {
        match self {
            BoundValue::Int(v) => *v as f64,
            BoundValue::Float(v) => *v,
            BoundValue::Date(d) => d.0 as f64,
        }
    }
}

/// One side of a column interval: the constant plus whether it is
/// attained (`<=`/`>=` vs `<`/`>`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bound {
    /// The constant.
    pub value: BoundValue,
    /// Whether the endpoint itself satisfies the clause.
    pub inclusive: bool,
}

/// Whether a lower bound `wide` admits everything a lower bound
/// `narrow` admits (i.e. the half-space `{x ≥/> wide}` contains
/// `{x ≥/> narrow}`). `None` on either side means "unbounded".
fn lo_covers(wide: Option<Bound>, narrow: Option<Bound>) -> bool {
    match (wide, narrow) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(w), Some(n)) => match w.value.cmp_same(&n.value) {
            Some(Ordering::Less) => true,
            Some(Ordering::Equal) => w.inclusive || !n.inclusive,
            _ => false,
        },
    }
}

/// Mirror of [`lo_covers`] for upper bounds.
fn hi_covers(wide: Option<Bound>, narrow: Option<Bound>) -> bool {
    match (wide, narrow) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(w), Some(n)) => match w.value.cmp_same(&n.value) {
            Some(Ordering::Greater) => true,
            Some(Ordering::Equal) => w.inclusive || !n.inclusive,
            _ => false,
        },
    }
}

/// The interval a conjunction pins one column into.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ColInterval {
    /// Greatest lower bound seen, if any.
    pub lo: Option<Bound>,
    /// Least upper bound seen, if any.
    pub hi: Option<Bound>,
}

impl ColInterval {
    fn tighten_lo(&mut self, b: Bound) {
        let tighter = match self.lo {
            None => true,
            // The new bound is tighter iff the old one covers it.
            Some(old) => lo_covers(Some(old), Some(b)) && old != b,
        };
        if tighter {
            self.lo = Some(b);
        }
    }

    fn tighten_hi(&mut self, b: Bound) {
        let tighter = match self.hi {
            None => true,
            Some(old) => hi_covers(Some(old), Some(b)) && old != b,
        };
        if tighter {
            self.hi = Some(b);
        }
    }

    /// Whether `self` (the wide interval) contains `other` (the narrow
    /// one): every row admitted by `other` is admitted by `self`.
    pub fn contains(&self, other: &ColInterval) -> bool {
        lo_covers(self.lo, other.lo) && hi_covers(self.hi, other.hi)
    }
}

/// A conjunction in normal form: per-column intervals plus the clauses
/// the lattice cannot order (`Or`, `Not`, `Like`, `Ne`, expression
/// comparisons), kept whole and compared structurally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NormPred {
    /// Interval per constrained column index.
    pub bounds: BTreeMap<usize, ColInterval>,
    /// Conjuncts outside the lattice, in flattening order.
    pub rest: Vec<Predicate>,
}

impl NormPred {
    /// Normalizes a predicate treated as a conjunction.
    pub fn normalize(pred: &Predicate) -> Self {
        let mut norm = NormPred::default();
        for clause in flatten_conjuncts(pred) {
            match range_clause(clause) {
                Some((col, side)) => {
                    let iv = norm.bounds.entry(col).or_default();
                    match side {
                        Side::Lo(b) => iv.tighten_lo(b),
                        Side::Hi(b) => iv.tighten_hi(b),
                        Side::Point(b) => {
                            iv.tighten_lo(b);
                            iv.tighten_hi(b);
                        }
                    }
                }
                None => norm.rest.push(clause.clone()),
            }
        }
        norm
    }

    /// Whether `self` (wide) subsumes `other` (narrow): every row
    /// satisfying `other` satisfies `self`. Interval containment per
    /// column; rest clauses of the wide side must appear structurally
    /// in the narrow side.
    pub fn subsumes(&self, other: &NormPred) -> bool {
        for (col, wide_iv) in &self.bounds {
            let narrow_iv = other.bounds.get(col).copied().unwrap_or_default();
            if !wide_iv.contains(&narrow_iv) {
                return false;
            }
        }
        self.rest.iter().all(|w| other.rest.contains(w))
    }
}

/// Which side of an interval a single range clause pins.
enum Side {
    Lo(Bound),
    Hi(Bound),
    Point(Bound),
}

/// Flattens nested `And`s into a clause list, dropping `True`.
fn flatten_conjuncts(pred: &Predicate) -> Vec<&Predicate> {
    fn walk<'a>(p: &'a Predicate, out: &mut Vec<&'a Predicate>) {
        match p {
            Predicate::True => {}
            Predicate::And(ps) => ps.iter().for_each(|p| walk(p, out)),
            other => out.push(other),
        }
    }
    let mut out = Vec::new();
    walk(pred, &mut out);
    out
}

fn literal(expr: &ScalarExpr) -> Option<BoundValue> {
    match expr {
        ScalarExpr::IntLit(v) => Some(BoundValue::Int(*v)),
        ScalarExpr::FloatLit(v) => Some(BoundValue::Float(*v)),
        ScalarExpr::DateLit(d) => Some(BoundValue::Date(*d)),
        _ => None,
    }
}

/// `col <op> literal` (or the mirrored `literal <op> col`) as an
/// interval side; anything else is outside the lattice.
fn range_clause(pred: &Predicate) -> Option<(usize, Side)> {
    let Predicate::Cmp { left, op, right } = pred else {
        return None;
    };
    let (col, op, value) = match (left, right) {
        (ScalarExpr::Col(c), _) => (*c, *op, literal(right)?),
        (_, ScalarExpr::Col(c)) => {
            // `lit op col` is `col (mirror op) lit`.
            let mirrored = match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                CmpOp::Eq => CmpOp::Eq,
                CmpOp::Ne => CmpOp::Ne,
            };
            (*c, mirrored, literal(left)?)
        }
        _ => return None,
    };
    let side = match op {
        CmpOp::Ge => Side::Lo(Bound {
            value,
            inclusive: true,
        }),
        CmpOp::Gt => Side::Lo(Bound {
            value,
            inclusive: false,
        }),
        CmpOp::Le => Side::Hi(Bound {
            value,
            inclusive: true,
        }),
        CmpOp::Lt => Side::Hi(Bound {
            value,
            inclusive: false,
        }),
        CmpOp::Eq => Side::Point(Bound {
            value,
            inclusive: true,
        }),
        CmpOp::Ne => return None,
    };
    Some((col, side))
}

/// A pivot fragment decomposed for matching: the filter chain at its
/// root (conjoined into one predicate) over a base sub-plan.
#[derive(Debug, Clone)]
pub struct PeeledPivot<'a> {
    /// Every predicate of the root filter chain, outermost first.
    pub predicates: Vec<&'a Predicate>,
    /// The sub-plan below the filter chain.
    pub base: &'a PhysicalPlan,
    /// Cost of the innermost peeled filter (the natural cost to charge
    /// a residual filter), if the chain is non-empty.
    pub filter_cost: Option<OpCost>,
}

/// Peels the chain of `Filter` nodes at the root of `plan`. Filters are
/// the only row-preserving, schema-preserving operators, so residual
/// predicates are sound exactly when the differing clauses live in this
/// chain; anything below it must match structurally.
pub fn peel_filters(plan: &PhysicalPlan) -> PeeledPivot<'_> {
    let mut predicates = Vec::new();
    let mut filter_cost = None;
    let mut cur = plan;
    while let PhysicalPlan::Filter {
        input,
        predicate,
        cost,
    } = cur
    {
        predicates.push(predicate);
        filter_cost = Some(*cost);
        cur = input;
    }
    PeeledPivot {
        predicates,
        base: cur,
        filter_cost,
    }
}

/// Canonical fingerprint of a fragment's shareable shape: the base
/// sub-plan below the root filter chain, with the chain's predicate
/// constants (and the chain itself) hoisted out. Two fragments can only
/// subsume one another if their fingerprints are equal, so this is the
/// cache/bucket key for in-flight and completed shared fragments.
pub fn fingerprint(plan: &PhysicalPlan) -> u64 {
    let peeled = peel_filters(plan);
    let mut h = DefaultHasher::new();
    // Debug form is injective enough for a bucket key: structural
    // equality of the base is re-checked inside each bucket, so a
    // collision can never cause an unsound merge.
    format!("{:?}", peeled.base).hash(&mut h);
    h.finish()
}

/// The complete subsumption test. Returns the *residual* predicate a
/// consumer of `narrow` must apply to the output of `wide` — the
/// conjuncts of `narrow`'s filter chain not already implied by `wide` —
/// or `None` when `wide` does not subsume `narrow`.
///
/// `Some(Predicate::True)` means an exact match (no residual needed).
/// Soundness: `narrow ⊆ wide` row-wise, so re-applying the un-implied
/// clauses of `narrow` on `wide`'s output yields exactly the rows the
/// private `narrow` fragment would have produced, in the same order.
pub fn subsume_residual(wide: &PhysicalPlan, narrow: &PhysicalPlan) -> Option<Predicate> {
    let wide_p = peel_filters(wide);
    let narrow_p = peel_filters(narrow);
    if wide_p.base != narrow_p.base {
        return None;
    }
    let wide_np = NormPred::normalize(&conjoin(&wide_p.predicates));
    let narrow_pred = conjoin(&narrow_p.predicates);
    let narrow_np = NormPred::normalize(&narrow_pred);
    if !wide_np.subsumes(&narrow_np) {
        return None;
    }
    Some(residual_clauses(&wide_np, &wide_p.predicates, &narrow_pred))
}

fn conjoin(preds: &[&Predicate]) -> Predicate {
    match preds {
        [] => Predicate::True,
        [one] => (*one).clone(),
        many => Predicate::And(many.iter().map(|p| (*p).clone()).collect()),
    }
}

/// The minimal residual: every conjunct of `narrow` not implied by the
/// wide side's bounds (for range clauses) or present structurally (for
/// rest clauses).
fn residual_clauses(
    wide_np: &NormPred,
    wide_preds: &[&Predicate],
    narrow_pred: &Predicate,
) -> Predicate {
    let wide_rest: Vec<&Predicate> = wide_preds
        .iter()
        .flat_map(|p| flatten_conjuncts(p))
        .collect();
    let mut keep: Vec<Predicate> = Vec::new();
    for clause in flatten_conjuncts(narrow_pred) {
        let implied = match range_clause(clause) {
            Some((col, side)) => {
                let wide_iv = wide_np.bounds.get(&col).copied().unwrap_or_default();
                match side {
                    // The clause's half-space must contain the wide
                    // interval for the wide output to already satisfy it.
                    Side::Lo(b) => lo_covers(Some(b), wide_iv.lo),
                    Side::Hi(b) => hi_covers(Some(b), wide_iv.hi),
                    Side::Point(b) => {
                        lo_covers(Some(b), wide_iv.lo) && hi_covers(Some(b), wide_iv.hi)
                    }
                }
            }
            None => wide_rest.contains(&clause),
        };
        if !implied {
            keep.push(clause.clone());
        }
    }
    match keep.len() {
        0 => Predicate::True,
        1 => keep.pop().expect("len checked"), // lint: allow(match arm guarantees one element)
        _ => Predicate::And(keep),
    }
}

/// Floor for coverage estimates: keeps downstream `1/c` scalings finite.
pub const MIN_COVERAGE: f64 = 0.01;

/// Per-side default selectivity when the wide fragment leaves a column
/// unconstrained that the narrow one pins (the textbook 1/2 guess).
const HALF: f64 = 0.5;

/// Estimated fraction of `wide`'s output that satisfies `narrow` — the
/// coverage `c_m` the partial-overlap model prices. The estimate
/// multiplies per-column interval-width ratios where both sides pin
/// both ends, and charges the default selectivity [`HALF`] per
/// constraint side the narrow fragment adds over the wide one. Clamped
/// to `[MIN_COVERAGE, 1]`; exact matches return exactly 1.
pub fn coverage_estimate(wide: &PhysicalPlan, narrow: &PhysicalPlan) -> f64 {
    let wide_np = NormPred::normalize(&conjoin(&peel_filters(wide).predicates));
    let narrow_np = NormPred::normalize(&conjoin(&peel_filters(narrow).predicates));
    let mut c = 1.0_f64;
    for (col, niv) in &narrow_np.bounds {
        let wiv = wide_np.bounds.get(col).copied().unwrap_or_default();
        if wiv == *niv {
            continue;
        }
        match (width(&wiv), width(niv)) {
            (Some(w), Some(n)) if w > 0.0 => c *= (n / w).clamp(0.0, 1.0),
            _ => {
                // Count the sides the narrow fragment newly constrains.
                if niv.lo.is_some() && !bound_eq(niv.lo, wiv.lo) {
                    c *= HALF;
                }
                if niv.hi.is_some() && !bound_eq(niv.hi, wiv.hi) {
                    c *= HALF;
                }
            }
        }
    }
    // Rest clauses the narrow side adds beyond the wide side.
    let extra_rest = narrow_np
        .rest
        .iter()
        .filter(|r| !wide_np.rest.contains(r))
        .count();
    c *= HALF.powi(extra_rest as i32);
    c.clamp(MIN_COVERAGE, 1.0)
}

fn bound_eq(a: Option<Bound>, b: Option<Bound>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => a == b,
        (None, None) => true,
        _ => false,
    }
}

fn width(iv: &ColInterval) -> Option<f64> {
    match (iv.lo, iv.hi) {
        (Some(lo), Some(hi)) => {
            // Only same-type pairs have a width.
            lo.value.cmp_same(&hi.value)?;
            Some((hi.value.as_f64() - lo.value.as_f64()).max(0.0))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpCost;

    fn scan(table: &str) -> PhysicalPlan {
        PhysicalPlan::Scan {
            table: table.into(),
            cost: OpCost::default(),
        }
    }

    fn filtered(table: &str, pred: Predicate) -> PhysicalPlan {
        PhysicalPlan::Filter {
            input: Box::new(scan(table)),
            predicate: pred,
            cost: OpCost::per_tuple(1.0),
        }
    }

    fn band(col: usize, lo: i64, hi: i64) -> Predicate {
        Predicate::And(vec![
            Predicate::col_cmp(col, CmpOp::Ge, lo),
            Predicate::col_cmp(col, CmpOp::Lt, hi),
        ])
    }

    #[test]
    fn fingerprint_ignores_filter_constants_but_not_base() {
        let a = filtered("t", band(0, 10, 20));
        let b = filtered("t", band(0, 12, 15));
        let c = filtered("u", band(0, 10, 20));
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
        // The bare base hashes like its filtered forms (scan ⊒ σ(scan)).
        assert_eq!(fingerprint(&a), fingerprint(&scan("t")));
    }

    #[test]
    fn nested_ranges_subsume_with_minimal_residual() {
        let wide = filtered("t", band(0, 10, 20));
        let narrow = filtered(
            "t",
            Predicate::And(vec![
                Predicate::col_cmp(0, CmpOp::Ge, 12i64),
                Predicate::col_cmp(0, CmpOp::Lt, 20i64), // implied hi
                Predicate::col_cmp(1, CmpOp::Lt, 5i64),  // new column
            ]),
        );
        let residual = subsume_residual(&wide, &narrow).expect("wide subsumes narrow");
        // Only the un-implied clauses survive: lo=12 and the new column.
        assert_eq!(
            residual,
            Predicate::And(vec![
                Predicate::col_cmp(0, CmpOp::Ge, 12i64),
                Predicate::col_cmp(1, CmpOp::Lt, 5i64),
            ])
        );
        // Not the other way round.
        assert!(subsume_residual(&narrow, &wide).is_none());
    }

    #[test]
    fn exact_match_has_true_residual() {
        let a = filtered("t", band(0, 10, 20));
        assert_eq!(subsume_residual(&a, &a.clone()), Some(Predicate::True));
        // Identical plans without filters too.
        assert_eq!(
            subsume_residual(&scan("t"), &scan("t")),
            Some(Predicate::True)
        );
    }

    #[test]
    fn bare_base_subsumes_any_filtered_form() {
        let narrow = filtered("t", band(0, 10, 20));
        let residual = subsume_residual(&scan("t"), &narrow).expect("scan is widest");
        assert_eq!(residual, band(0, 10, 20));
        assert!(subsume_residual(&narrow, &scan("t")).is_none());
    }

    #[test]
    fn disjoint_and_crossing_ranges_do_not_subsume() {
        let a = filtered("t", band(0, 10, 20));
        let b = filtered("t", band(0, 15, 25)); // crosses the hi edge
        assert!(subsume_residual(&a, &b).is_none());
        assert!(subsume_residual(&b, &a).is_none());
        let c = filtered("t", band(0, 30, 40)); // disjoint
        assert!(subsume_residual(&a, &c).is_none());
    }

    #[test]
    fn inclusivity_at_equal_endpoints_is_respected() {
        let ge = filtered("t", Predicate::col_cmp(0, CmpOp::Ge, 10i64));
        let gt = filtered("t", Predicate::col_cmp(0, CmpOp::Gt, 10i64));
        // x ≥ 10 admits everything x > 10 admits…
        assert!(subsume_residual(&ge, &gt).is_some());
        // …but not vice versa (10 itself).
        assert!(subsume_residual(&gt, &ge).is_none());
        // The implied-clause test honors it too: `> 10` is NOT implied
        // by wide `≥ 10`, so it stays in the residual.
        assert_eq!(
            subsume_residual(&ge, &gt),
            Some(Predicate::col_cmp(0, CmpOp::Gt, 10i64))
        );
    }

    #[test]
    fn float_and_date_bounds_participate() {
        let wide = filtered(
            "t",
            Predicate::And(vec![
                Predicate::col_cmp(3, CmpOp::Ge, 0.02f64),
                Predicate::col_cmp(7, CmpOp::Ge, Date::from_ymd(1993, 1, 1)),
                Predicate::col_cmp(7, CmpOp::Lt, Date::from_ymd(1996, 1, 1)),
            ]),
        );
        let narrow = filtered(
            "t",
            Predicate::And(vec![
                Predicate::col_cmp(3, CmpOp::Ge, 0.05f64),
                Predicate::col_cmp(3, CmpOp::Le, 0.07f64),
                Predicate::col_cmp(7, CmpOp::Ge, Date::from_ymd(1994, 1, 1)),
                Predicate::col_cmp(7, CmpOp::Lt, Date::from_ymd(1995, 1, 1)),
            ]),
        );
        let residual = subsume_residual(&wide, &narrow).expect("subsumes");
        // Every narrow clause is strictly tighter than the wide side,
        // so all four survive.
        assert_eq!(flatten_conjuncts(&residual).len(), 4);
    }

    #[test]
    fn rest_clauses_compare_structurally() {
        let like = Predicate::Like {
            col: 2,
            pattern: "%x%".into(),
        };
        let wide = filtered("t", like.clone());
        let narrow = filtered(
            "t",
            Predicate::And(vec![like.clone(), Predicate::col_cmp(0, CmpOp::Lt, 5i64)]),
        );
        // Wide's LIKE appears in narrow: subsumed, residual is only the
        // range clause.
        assert_eq!(
            subsume_residual(&wide, &narrow),
            Some(Predicate::col_cmp(0, CmpOp::Lt, 5i64))
        );
        // A wide rest clause missing from narrow blocks subsumption.
        let other = filtered("t", Predicate::col_cmp(0, CmpOp::Lt, 5i64));
        assert!(subsume_residual(&wide, &other).is_none());
    }

    #[test]
    fn mismatched_bases_never_subsume() {
        let a = filtered("t", band(0, 0, 100));
        let b = filtered("u", band(0, 10, 20));
        assert!(subsume_residual(&a, &b).is_none());
        // Same table, different scan cost: different base, no match.
        let costly = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan {
                table: "t".into(),
                cost: OpCost::per_tuple(123.0),
            }),
            predicate: band(0, 10, 20),
            cost: OpCost::per_tuple(1.0),
        };
        assert!(subsume_residual(&a, &costly).is_none());
    }

    #[test]
    fn equality_points_are_contained_ranges() {
        let wide = filtered("t", band(0, 10, 20));
        let point = filtered("t", Predicate::col_cmp(0, CmpOp::Eq, 15i64));
        let residual = subsume_residual(&wide, &point).expect("point inside band");
        assert_eq!(residual, Predicate::col_cmp(0, CmpOp::Eq, 15i64));
        // A point outside the band is not subsumed.
        let outside = filtered("t", Predicate::col_cmp(0, CmpOp::Eq, 25i64));
        assert!(subsume_residual(&wide, &outside).is_none());
    }

    #[test]
    fn coverage_scales_with_interval_width() {
        let wide = filtered("t", band(0, 0, 100));
        let half = filtered("t", band(0, 0, 50));
        let tenth = filtered("t", band(0, 40, 50));
        assert!((coverage_estimate(&wide, &half) - 0.5).abs() < 1e-12);
        assert!((coverage_estimate(&wide, &tenth) - 0.1).abs() < 1e-12);
        // Exact match: exactly 1.
        assert_eq!(coverage_estimate(&wide, &wide.clone()), 1.0);
        // Extra columns charge the default selectivity per side.
        let extra = filtered(
            "t",
            Predicate::And(vec![
                Predicate::col_cmp(0, CmpOp::Ge, 0i64),
                Predicate::col_cmp(0, CmpOp::Lt, 100i64),
                Predicate::col_cmp(1, CmpOp::Lt, 7i64),
            ]),
        );
        assert!((coverage_estimate(&wide, &extra) - 0.5).abs() < 1e-12);
        // Clamped away from zero.
        let sliver = filtered("t", band(0, 50, 50));
        assert!(coverage_estimate(&wide, &sliver) >= MIN_COVERAGE);
    }

    #[test]
    fn filter_chains_conjoin_before_matching() {
        // σ[a](σ[b](scan)) must match σ[a ∧ b](scan).
        let chained = PhysicalPlan::Filter {
            input: Box::new(filtered("t", Predicate::col_cmp(0, CmpOp::Ge, 10i64))),
            predicate: Predicate::col_cmp(0, CmpOp::Lt, 20i64),
            cost: OpCost::per_tuple(1.0),
        };
        let flat = filtered("t", band(0, 10, 20));
        assert_eq!(subsume_residual(&chained, &flat), Some(Predicate::True));
        assert_eq!(subsume_residual(&flat, &chained), Some(Predicate::True));
    }

    #[test]
    fn peel_reports_filter_cost() {
        let f = filtered("t", band(0, 1, 2));
        let peeled = peel_filters(&f);
        assert_eq!(peeled.filter_cost, Some(OpCost::per_tuple(1.0)));
        assert_eq!(peeled.predicates.len(), 1);
        assert!(peel_filters(&scan("t")).filter_cost.is_none());
    }
}
