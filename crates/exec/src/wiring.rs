//! Spawns a physical plan into a simulator: one task per operator,
//! bounded channels between them (unshared wiring — the engine crate
//! layers packet merging and shared pivots on top of these pieces).
//!
//! Instantiation is **two-phase and fallible**: every operator task is
//! constructed first (compiling expressions, validating key columns),
//! and only when the whole plan type-checks is anything spawned. A
//! malformed plan therefore returns a typed [`ExecError`] with zero
//! tasks running — never a half-wired query or a worker panic. Runtime
//! input-contract violations (an unsorted merge input) are reported
//! through the per-query [`FaultCell`] threaded to the tasks here.

use crate::cost::OpCost;
use crate::error::{ExecError, FaultCell};
use crate::memory::{MemoryConfig, QueryResources, SpillContext};
use crate::ops::par_pipe::{self, ParChain};
use crate::ops::{
    AggregateTask, Fanout, FilterTask, HashJoinTask, MergeJoinTask, NestedLoopJoinTask,
    ProjectTask, ScanTask, SortTask,
};
use crate::parallel::{ParallelConfig, StageSpec};
use crate::plan::PhysicalPlan;
use cordoba_sim::channel::{self, Receiver, Recv, Sender};
use cordoba_sim::{Simulator, Spawner, Step, Task, TaskCtx, TaskId};
use cordoba_storage::{Catalog, Page};
use std::collections::VecDeque;
use std::sync::Arc;

/// Wiring parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WiringConfig {
    /// Channel capacity in pages between adjacent operators. Finite so
    /// slow consumers throttle producers, as the model assumes.
    pub queue_capacity: usize,
    /// Per-query memory policy (budget, spill directory, recursion
    /// cap). The default is unbounded — no spilling.
    pub memory: MemoryConfig,
    /// Intra-query parallelism. With the default single worker the
    /// wiring is exactly the classic one-task-per-operator layout;
    /// with more, {filter | project}* chains over scans (and
    /// aggregates directly above them) become morsel-parallel worker
    /// groups (see [`crate::ops`]' `par_pipe`), which preserve the
    /// serial row order.
    pub parallel: ParallelConfig,
}

impl Default for WiringConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 16,
            memory: MemoryConfig::default(),
            // Consults CORDOBA_WORKERS so a CI leg (or a user) can force
            // intra-query parallelism across every default-configured
            // run; unset, this is the single-worker serial wiring.
            parallel: ParallelConfig::from_env(),
        }
    }
}

/// Tasks spawned for one plan, labeled `"{label}/{preorder}:{op}"`.
/// Ids are `None` when spawned mid-run through a [`TaskCtx`].
pub type SpawnedOps = Vec<(Option<TaskId>, String)>;

/// Instantiates `plan`, delivering root output to every sender in
/// `outs` (the root's `cost.out_per_tuple` is charged per consumer).
/// [`PhysicalPlan::Source`] leaves consume receivers from `sources` in
/// plan preorder. Runtime faults land in `resources.fault`; buffering
/// operators charge `resources.broker` and spill per `cfg.memory`.
///
/// Construction is all-or-nothing: on `Err`, no task has been spawned.
#[allow(clippy::too_many_arguments)]
pub fn instantiate_into(
    sim: &mut dyn Spawner,
    catalog: &Catalog,
    plan: &PhysicalPlan,
    outs: Vec<Sender<Arc<Page>>>,
    sources: &mut VecDeque<Receiver<Arc<Page>>>,
    label: &str,
    cfg: &WiringConfig,
    resources: &QueryResources,
) -> Result<SpawnedOps, ExecError> {
    let mut built: Vec<(String, Box<dyn Task>)> = Vec::new();
    let mut preorder = 0usize;
    let sctx = SpillContext::new(
        &cfg.memory,
        resources.broker.clone(),
        resources.fault.clone(),
    );
    wire(
        catalog,
        plan,
        outs,
        sources,
        label,
        cfg,
        &sctx,
        &mut preorder,
        &mut built,
    )?;
    Ok(built
        .into_iter()
        .map(|(name, task)| (sim.spawn_task(name.clone(), task), name))
        .collect())
}

/// Instantiates `plan` and returns the root output receiver, the
/// spawned operator tasks, and the query's resources — check
/// `resources.fault` after the run (a set fault means the query failed
/// mid-flight) and `resources.broker` for its memory footprint.
pub fn instantiate(
    sim: &mut Simulator,
    catalog: &Catalog,
    plan: &PhysicalPlan,
    label: &str,
    cfg: &WiringConfig,
) -> Result<(Receiver<Arc<Page>>, SpawnedOps, QueryResources), ExecError> {
    let (tx, rx) = channel::bounded(cfg.queue_capacity);
    let resources = QueryResources::for_config(&cfg.memory);
    let mut sources = VecDeque::new();
    let spawned = instantiate_into(
        sim,
        catalog,
        plan,
        vec![tx],
        &mut sources,
        label,
        cfg,
        &resources,
    )?;
    Ok((rx, spawned, resources))
}

/// Forwards pages from a receiver to a fan-out at zero private cost —
/// used when a [`PhysicalPlan::Source`] is itself the plan root.
struct RelayTask {
    rx: Receiver<Arc<Page>>,
    fanout: Fanout,
}

impl Task for RelayTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, done) = self.fanout.pump(ctx);
        if !done {
            return Step::blocked(cost);
        }
        match self.rx.try_recv(ctx) {
            Recv::Value(page) => {
                ctx.add_progress(page.rows() as f64);
                self.fanout.begin(page);
                let (c, done) = self.fanout.pump(ctx);
                cost += c;
                if done {
                    Step::yielded(cost.max(1))
                } else {
                    Step::blocked(cost)
                }
            }
            Recv::Empty => Step::blocked(cost),
            Recv::Closed => {
                self.fanout.close(ctx);
                Step::done(cost)
            }
        }
    }
}

/// The fused scan + stage chain rooted at `plan`, when it is a
/// {filter | project}* chain over a scan — the shape the parallel
/// worker groups execute. `None` for any other plan shape (including
/// `Source` leaves, which stay on the serial wiring).
fn par_chain(catalog: &Catalog, plan: &PhysicalPlan) -> Result<Option<ParChain>, ExecError> {
    match plan {
        PhysicalPlan::Scan { table, cost } => {
            let t = catalog
                .get(table)
                .ok_or_else(|| ExecError::plan(format!("no table '{table}' in catalog")))?;
            Ok(Some(ParChain {
                table: table.clone(),
                pages: t.pages().to_vec().into(),
                in_schema: t.schema().clone(),
                scan_cost: *cost,
                stages: Vec::new(),
            }))
        }
        PhysicalPlan::Filter {
            input,
            predicate,
            cost,
        } => Ok(par_chain(catalog, input)?.map(|mut c| {
            c.stages.push((StageSpec::Filter(predicate.clone()), *cost));
            c
        })),
        PhysicalPlan::Project { input, exprs, cost } => match par_chain(catalog, input)? {
            Some(mut c) => {
                let out_schema = plan.try_output_schema(catalog)?;
                c.stages.push((
                    StageSpec::Project {
                        exprs: exprs.iter().map(|(_, e)| e.clone()).collect(),
                        out_schema,
                    },
                    *cost,
                ));
                Ok(Some(c))
            }
            None => Ok(None),
        },
        _ => Ok(None),
    }
}

/// Replaces parallelizable fragments rooted at `plan` with morsel
/// worker groups. Returns `None` when the fragment was handled, or
/// gives `outs` back for the serial wiring.
#[allow(clippy::type_complexity)]
fn try_wire_parallel(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    outs: Vec<Sender<Arc<Page>>>,
    label: &str,
    cfg: &WiringConfig,
    preorder: &mut usize,
    built: &mut Vec<(String, Box<dyn Task>)>,
) -> Result<Option<Vec<Sender<Arc<Page>>>>, ExecError> {
    if let Some(chain) = par_chain(catalog, plan)? {
        let base = format!("{label}/{}", *preorder);
        *preorder += chain.node_count();
        par_pipe::build_pipe_group(
            &base,
            &chain,
            outs,
            &cfg.parallel,
            cfg.queue_capacity,
            built,
        )?;
        return Ok(None);
    }
    if let PhysicalPlan::Aggregate {
        input,
        group_by,
        aggs,
        cost,
    } = plan
    {
        if let Some(chain) = par_chain(catalog, input)? {
            let out_schema = plan.try_output_schema(catalog)?;
            let base = format!("{label}/{}", *preorder);
            *preorder += 1 + chain.node_count();
            par_pipe::build_agg_group(
                &base,
                &chain,
                group_by.clone(),
                aggs.iter().map(|(_, a)| a.clone()).collect(),
                out_schema,
                *cost,
                outs,
                &cfg.parallel,
                built,
            )?;
            return Ok(None);
        }
    }
    Ok(Some(outs))
}

#[allow(clippy::too_many_arguments)]
fn wire(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    outs: Vec<Sender<Arc<Page>>>,
    sources: &mut VecDeque<Receiver<Arc<Page>>>,
    label: &str,
    cfg: &WiringConfig,
    sctx: &SpillContext,
    preorder: &mut usize,
    built: &mut Vec<(String, Box<dyn Task>)>,
) -> Result<(), ExecError> {
    let outs = if cfg.parallel.effective_workers() > 1 {
        match try_wire_parallel(catalog, plan, outs, label, cfg, preorder, built)? {
            None => return Ok(()),
            Some(outs) => outs,
        }
    } else {
        outs
    };
    let my_idx = *preorder;
    *preorder += 1;
    let name = format!("{label}/{my_idx}:{}", plan.op_name());
    // Child receivers are created before this node's task so that
    // Source receivers are consumed in preorder.
    let child_input = |child: &PhysicalPlan,
                       sources: &mut VecDeque<Receiver<Arc<Page>>>,
                       preorder: &mut usize,
                       built: &mut Vec<(String, Box<dyn Task>)>|
     -> Result<Receiver<Arc<Page>>, ExecError> {
        if let PhysicalPlan::Source { .. } = child {
            *preorder += 1;
            return sources
                .pop_front()
                .ok_or_else(|| ExecError::plan("a receiver per Source leaf, in preorder"));
        }
        let (tx, rx) = channel::bounded(cfg.queue_capacity);
        wire(
            catalog,
            child,
            vec![tx],
            sources,
            label,
            cfg,
            sctx,
            preorder,
            built,
        )?;
        Ok(rx)
    };

    match plan {
        PhysicalPlan::Scan { table, cost } => {
            let pages = catalog
                .get(table)
                .ok_or_else(|| ExecError::plan(format!("no table '{table}' in catalog")))?
                .pages()
                .to_vec();
            built.push((
                name,
                Box::new(ScanTask::new(
                    pages,
                    *cost,
                    Fanout::new(outs, cost.out_per_tuple),
                )),
            ));
        }
        PhysicalPlan::Source { .. } => {
            // Source as root: relay external pages to the consumers.
            let rx = sources
                .pop_front()
                .ok_or_else(|| ExecError::plan("a receiver per Source leaf, in preorder"))?;
            built.push((
                name,
                Box::new(RelayTask {
                    rx,
                    fanout: Fanout::new(outs, 0.0),
                }),
            ));
        }
        PhysicalPlan::Filter {
            input,
            predicate,
            cost,
        } => {
            let schema = input.try_output_schema(catalog)?;
            let rx = child_input(input, sources, preorder, built)?;
            let task = FilterTask::new(
                rx,
                schema,
                predicate.clone(),
                *cost,
                Fanout::new(outs, cost.out_per_tuple),
            )?;
            built.push((name, Box::new(task)));
        }
        PhysicalPlan::Project { input, exprs, cost } => {
            let in_schema = input.try_output_schema(catalog)?;
            let out_schema = plan.try_output_schema(catalog)?;
            let rx = child_input(input, sources, preorder, built)?;
            let task = ProjectTask::new(
                rx,
                in_schema,
                out_schema,
                exprs.iter().map(|(_, e)| e.clone()).collect(),
                *cost,
                Fanout::new(outs, cost.out_per_tuple),
            )?;
            built.push((name, Box::new(task)));
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            cost,
        } => {
            let in_schema = input.try_output_schema(catalog)?;
            let out_schema = plan.try_output_schema(catalog)?;
            let rx = child_input(input, sources, preorder, built)?;
            let task = AggregateTask::new(
                rx,
                in_schema,
                group_by.clone(),
                aggs.iter().map(|(_, a)| a.clone()).collect(),
                out_schema,
                *cost,
                Fanout::new(outs, cost.out_per_tuple),
            )?;
            built.push((name, Box::new(task)));
        }
        PhysicalPlan::Sort { input, keys, cost } => {
            let schema = input.try_output_schema(catalog)?;
            let rx = child_input(input, sources, preorder, built)?;
            let task = SortTask::new(
                rx,
                schema,
                keys.clone(),
                *cost,
                Fanout::new(outs, cost.out_per_tuple),
                sctx.clone(),
            )?;
            built.push((name, Box::new(task)));
        }
        PhysicalPlan::HashJoin {
            build,
            probe,
            build_key,
            probe_key,
            kind,
            build_cost,
            probe_cost,
        } => {
            let build_schema = build.try_output_schema(catalog)?;
            let probe_schema = probe.try_output_schema(catalog)?;
            let out_schema = plan.try_output_schema(catalog)?;
            let rx_build = child_input(build, sources, preorder, built)?;
            let rx_probe = child_input(probe, sources, preorder, built)?;
            let task = HashJoinTask::new(
                rx_build,
                rx_probe,
                *build_key,
                *probe_key,
                *kind,
                build_schema,
                &probe_schema,
                out_schema,
                *build_cost,
                *probe_cost,
                Fanout::new(outs, probe_cost.out_per_tuple),
                sctx.clone(),
            )?;
            built.push((name, Box::new(task)));
        }
        PhysicalPlan::NestedLoopJoin {
            outer,
            inner,
            predicate,
            cost,
        } => {
            let pair_schema = plan.try_output_schema(catalog)?;
            let rx_outer = child_input(outer, sources, preorder, built)?;
            let rx_inner = child_input(inner, sources, preorder, built)?;
            let task = NestedLoopJoinTask::new(
                rx_outer,
                rx_inner,
                predicate.clone(),
                pair_schema,
                *cost,
                Fanout::new(outs, cost.out_per_tuple),
            )?;
            built.push((name, Box::new(task)));
        }
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            cost,
        } => {
            let left_schema = left.try_output_schema(catalog)?;
            let right_schema = right.try_output_schema(catalog)?;
            let out_schema = plan.try_output_schema(catalog)?;
            let rx_left = child_input(left, sources, preorder, built)?;
            let rx_right = child_input(right, sources, preorder, built)?;
            let task = MergeJoinTask::new(
                rx_left,
                rx_right,
                &left_schema,
                &right_schema,
                *left_key,
                *right_key,
                out_schema,
                *cost,
                Fanout::new(outs, cost.out_per_tuple),
                sctx.fault.clone(),
            )?;
            built.push((name, Box::new(task)));
        }
    }
    Ok(())
}

/// Collects all pages from a receiver synchronously after a run, via a
/// collecting sink — convenience for tests and harnesses. Returns the
/// query's fault (e.g. an unsorted merge input) as `Err`.
pub fn run_and_collect(
    sim: &mut Simulator,
    rx: Receiver<Arc<Page>>,
    sink_cost: OpCost,
    fault: &FaultCell,
) -> Result<Vec<Vec<cordoba_storage::Value>>, ExecError> {
    use std::cell::RefCell;
    use std::rc::Rc;
    let buf = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        "collector",
        Box::new(crate::ops::SinkTask::new(rx, sink_cost).collecting(buf.clone())),
    );
    let outcome = sim.run_to_idle();
    if let Some(err) = fault.take() {
        return Err(err);
    }
    assert!(
        outcome.completed_all(),
        "query did not complete: {outcome:?}"
    );
    let pages = buf.borrow();
    Ok(pages
        .iter()
        .flat_map(|p| p.tuples().map(|t| t.to_values()).collect::<Vec<_>>())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Agg, CmpOp, Predicate, ScalarExpr};
    use cordoba_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ]);
        let mut b = TableBuilder::new("t", schema);
        for i in 0..100 {
            b.push_row(&[Value::Int(i), Value::Float(i as f64)]);
        }
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    #[test]
    fn scan_filter_agg_pipeline_end_to_end() {
        let cat = catalog();
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::default(),
                }),
                predicate: Predicate::col_cmp(0, CmpOp::Lt, 10i64),
                cost: OpCost::default(),
            }),
            group_by: vec![],
            aggs: vec![
                ("n".into(), Agg::Count),
                ("sum".into(), Agg::Sum(ScalarExpr::col(1))),
            ],
            cost: OpCost::default(),
        };
        let cfg = WiringConfig {
            // Pinned serial (Default consults CORDOBA_WORKERS): the
            // assertions below name the task-per-operator wiring.
            parallel: crate::parallel::ParallelConfig::with_workers(1),
            ..WiringConfig::default()
        };
        let mut sim = Simulator::new(2);
        let (rx, spawned, res) = instantiate(&mut sim, &cat, &plan, "q0", &cfg).expect("wires");
        assert_eq!(spawned.len(), 3);
        assert!(spawned.iter().any(|(_, n)| n == "q0/0:aggregate"));
        assert!(spawned.iter().any(|(_, n)| n == "q0/1:filter"));
        assert!(spawned.iter().any(|(_, n)| n == "q0/2:scan(t)"));
        let rows = run_and_collect(&mut sim, rx, OpCost::default(), &res.fault).expect("no fault");
        assert_eq!(rows, vec![vec![Value::Int(10), Value::Float(45.0)]]);
    }

    /// A catalog whose table spans many pages, so parallel wiring
    /// actually splits work across morsels.
    fn paged_catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ]);
        let mut b = TableBuilder::with_page_size("t", schema, 256);
        for i in 0..3000i64 {
            b.push_row(&[Value::Int(i % 97), Value::Float((i % 13) as f64)]);
        }
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    fn run_plan(cat: &Catalog, plan: &PhysicalPlan, workers: usize) -> Vec<Vec<Value>> {
        let cfg = WiringConfig {
            parallel: crate::parallel::ParallelConfig::with_workers(workers),
            ..WiringConfig::default()
        };
        let mut sim = Simulator::new(workers.max(2));
        let (rx, _spawned, res) = instantiate(&mut sim, cat, plan, "q", &cfg).expect("plan wires");
        run_and_collect(&mut sim, rx, OpCost::default(), &res.fault).expect("no fault")
    }

    #[test]
    fn parallel_chain_wiring_matches_serial_rows() {
        let cat = paged_catalog();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::default(),
                }),
                predicate: Predicate::col_cmp(0, CmpOp::Lt, 60i64),
                cost: OpCost::default(),
            }),
            exprs: vec![
                ("k".into(), ScalarExpr::col(0)),
                (
                    "scaled".into(),
                    ScalarExpr::Mul(
                        Box::new(ScalarExpr::col(1)),
                        Box::new(ScalarExpr::FloatLit(2.0)),
                    ),
                ),
            ],
            cost: OpCost::default(),
        };
        let want = run_plan(&cat, &plan, 1);
        assert_eq!(want, crate::reference::execute(&cat, &plan));
        for workers in [2, 4, 8] {
            assert_eq!(run_plan(&cat, &plan, workers), want, "workers={workers}");
        }
    }

    #[test]
    fn parallel_aggregate_wiring_matches_serial_rows() {
        let cat = paged_catalog();
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::default(),
                }),
                predicate: Predicate::col_cmp(0, CmpOp::Lt, 60i64),
                cost: OpCost::default(),
            }),
            group_by: vec![0],
            aggs: vec![
                ("n".into(), Agg::Count),
                ("s".into(), Agg::Sum(ScalarExpr::col(1))),
            ],
            cost: OpCost::default(),
        };
        let want = run_plan(&cat, &plan, 1);
        assert_eq!(want, crate::reference::execute(&cat, &plan));
        for workers in [2, 4, 8] {
            assert_eq!(run_plan(&cat, &plan, workers), want, "workers={workers}");
        }
    }

    #[test]
    fn parallel_join_inputs_match_serial_rows() {
        // The hash join itself stays a single task; both of its chain
        // inputs become worker groups, and since the merge preserves
        // row order the join output is row-identical to serial.
        let cat = paged_catalog();
        let plan = PhysicalPlan::HashJoin {
            build: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::default(),
                }),
                predicate: Predicate::col_cmp(0, CmpOp::Lt, 10i64),
                cost: OpCost::default(),
            }),
            probe: Box::new(PhysicalPlan::Scan {
                table: "t".into(),
                cost: OpCost::default(),
            }),
            build_key: 0,
            probe_key: 0,
            kind: crate::plan::JoinKind::Semi,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let want = run_plan(&cat, &plan, 1);
        for workers in [2, 4] {
            assert_eq!(run_plan(&cat, &plan, workers), want, "workers={workers}");
        }
    }

    #[test]
    fn parallel_wiring_spawns_worker_groups() {
        let cat = paged_catalog();
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan {
                table: "t".into(),
                cost: OpCost::default(),
            }),
            predicate: Predicate::col_cmp(0, CmpOp::Lt, 60i64),
            cost: OpCost::default(),
        };
        let cfg = WiringConfig {
            parallel: crate::parallel::ParallelConfig::with_workers(4),
            ..WiringConfig::default()
        };
        let mut sim = Simulator::new(4);
        let (_rx, spawned, _res) =
            instantiate(&mut sim, &cat, &plan, "q0", &cfg).expect("plan wires");
        let names: Vec<&str> = spawned.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(spawned.len(), 5, "{names:?}");
        for w in 0..4 {
            assert!(names.contains(&format!("q0/0:par_pipe[{w}]").as_str()));
        }
        assert!(names.contains(&"q0/0:par_merge(scan(t))"));
    }

    #[test]
    fn single_worker_config_keeps_classic_wiring() {
        let cat = paged_catalog();
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan {
                table: "t".into(),
                cost: OpCost::default(),
            }),
            predicate: Predicate::col_cmp(0, CmpOp::Lt, 60i64),
            cost: OpCost::default(),
        };
        let cfg = WiringConfig {
            // Pinned to one worker (not Default, which consults
            // CORDOBA_WORKERS): this test is *about* the serial wiring.
            parallel: crate::parallel::ParallelConfig::with_workers(1),
            ..WiringConfig::default()
        };
        let mut sim = Simulator::new(1);
        let (_rx, spawned, _res) = instantiate(&mut sim, &cat, &plan, "q0", &cfg).expect("wires");
        let mut names: Vec<&str> = spawned.iter().map(|(_, n)| n.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["q0/0:filter", "q0/1:scan(t)"]);
    }

    #[test]
    fn malformed_plans_error_before_spawning() {
        let cat = catalog();
        let mut sim = Simulator::new(1);
        let cases = [
            // Unknown table.
            PhysicalPlan::Scan {
                table: "nope".into(),
                cost: OpCost::default(),
            },
            // Arithmetic over a float/str mismatch: col 1 is Float,
            // compared against a string literal.
            PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::default(),
                }),
                predicate: Predicate::col_cmp(1, CmpOp::Eq, "x"),
                cost: OpCost::default(),
            },
            // Projection referencing a column that does not exist.
            PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::default(),
                }),
                exprs: vec![("e".into(), ScalarExpr::col(9))],
                cost: OpCost::default(),
            },
            // Sort key out of range.
            PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::default(),
                }),
                keys: vec![5],
                cost: OpCost::default(),
            },
            // Merge join keyed on a Float column.
            PhysicalPlan::MergeJoin {
                left: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::default(),
                }),
                right: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::default(),
                }),
                left_key: 1,
                right_key: 0,
                cost: OpCost::default(),
            },
            // Aggregate over a non-numeric (out-of-range) input.
            PhysicalPlan::Aggregate {
                input: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::default(),
                }),
                group_by: vec![7],
                aggs: vec![("n".into(), Agg::Count)],
                cost: OpCost::default(),
            },
        ];
        for plan in cases {
            let err = instantiate(&mut sim, &cat, &plan, "bad", &WiringConfig::default())
                .err()
                .unwrap_or_else(|| panic!("plan must be rejected: {plan:?}"));
            assert!(matches!(err, ExecError::PlanType(_)), "{plan:?}: {err}");
        }
        // Nothing was spawned by any failed instantiation.
        assert!(sim.run_to_idle().completed_all());
        assert_eq!(sim.all_task_stats().count(), 0);
    }

    #[test]
    fn source_substitution_grafts_external_pages() {
        // A fragment `agg(source)` fed by a manually wired scan.
        let cat = catalog();
        let schema = cat.expect("t").schema().clone();
        let fragment = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Source {
                schema: crate::plan::SchemaRef(schema),
            }),
            group_by: vec![],
            aggs: vec![("n".into(), Agg::Count)],
            cost: OpCost::default(),
        };
        let mut sim = Simulator::new(2);
        let (scan_tx, scan_rx) = channel::bounded(8);
        sim.spawn(
            "ext-scan",
            Box::new(ScanTask::new(
                cat.expect("t").pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![scan_tx], 0.0),
            )),
        );
        let (out_tx, out_rx) = channel::bounded(8);
        let mut sources = VecDeque::from([scan_rx]);
        let res = QueryResources::default();
        instantiate_into(
            &mut sim,
            &cat,
            &fragment,
            vec![out_tx],
            &mut sources,
            "frag",
            &WiringConfig::default(),
            &res,
        )
        .expect("wires");
        let rows =
            run_and_collect(&mut sim, out_rx, OpCost::default(), &res.fault).expect("no fault");
        assert_eq!(rows, vec![vec![Value::Int(100)]]);
    }

    #[test]
    fn bare_source_root_relays() {
        let cat = catalog();
        let schema = cat.expect("t").schema().clone();
        let fragment = PhysicalPlan::Source {
            schema: crate::plan::SchemaRef(schema),
        };
        let mut sim = Simulator::new(1);
        let (scan_tx, scan_rx) = channel::bounded(4);
        sim.spawn(
            "ext-scan",
            Box::new(ScanTask::new(
                cat.expect("t").pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![scan_tx], 0.0),
            )),
        );
        let (out_tx, out_rx) = channel::bounded(4);
        let mut sources = VecDeque::from([scan_rx]);
        let res = QueryResources::default();
        instantiate_into(
            &mut sim,
            &cat,
            &fragment,
            vec![out_tx],
            &mut sources,
            "relay",
            &WiringConfig::default(),
            &res,
        )
        .expect("wires");
        let rows =
            run_and_collect(&mut sim, out_rx, OpCost::default(), &res.fault).expect("no fault");
        assert_eq!(rows.len(), 100);
    }
}
