//! Spawns a physical plan into a simulator: one task per operator,
//! bounded channels between them (unshared wiring — the engine crate
//! layers packet merging and shared pivots on top of these pieces).

use crate::cost::OpCost;
use crate::ops::{
    AggregateTask, Fanout, FilterTask, HashJoinTask, MergeJoinTask, NestedLoopJoinTask,
    ProjectTask, ScanTask, SortTask,
};
use crate::plan::PhysicalPlan;
use cordoba_sim::channel::{self, Receiver, Recv, Sender};
use cordoba_sim::{Simulator, Spawner, Step, Task, TaskCtx, TaskId};
use cordoba_storage::{Catalog, Page};
use std::collections::VecDeque;
use std::sync::Arc;

/// Wiring parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WiringConfig {
    /// Channel capacity in pages between adjacent operators. Finite so
    /// slow consumers throttle producers, as the model assumes.
    pub queue_capacity: usize,
}

impl Default for WiringConfig {
    fn default() -> Self {
        Self { queue_capacity: 16 }
    }
}

/// Tasks spawned for one plan, labeled `"{label}/{preorder}:{op}"`.
/// Ids are `None` when spawned mid-run through a [`TaskCtx`].
pub type SpawnedOps = Vec<(Option<TaskId>, String)>;

/// Instantiates `plan`, delivering root output to every sender in
/// `outs` (the root's `cost.out_per_tuple` is charged per consumer).
/// [`PhysicalPlan::Source`] leaves consume receivers from `sources` in
/// plan preorder.
pub fn instantiate_into(
    sim: &mut dyn Spawner,
    catalog: &Catalog,
    plan: &PhysicalPlan,
    outs: Vec<Sender<Arc<Page>>>,
    sources: &mut VecDeque<Receiver<Arc<Page>>>,
    label: &str,
    cfg: &WiringConfig,
) -> SpawnedOps {
    let mut spawned = Vec::new();
    let mut preorder = 0usize;
    wire(
        sim,
        catalog,
        plan,
        outs,
        sources,
        label,
        cfg,
        &mut preorder,
        &mut spawned,
    );
    spawned
}

/// Instantiates `plan` and returns the root output receiver plus the
/// spawned operator tasks.
pub fn instantiate(
    sim: &mut Simulator,
    catalog: &Catalog,
    plan: &PhysicalPlan,
    label: &str,
    cfg: &WiringConfig,
) -> (Receiver<Arc<Page>>, SpawnedOps) {
    let (tx, rx) = channel::bounded(cfg.queue_capacity);
    let mut sources = VecDeque::new();
    let spawned = instantiate_into(sim, catalog, plan, vec![tx], &mut sources, label, cfg);
    (rx, spawned)
}

/// Forwards pages from a receiver to a fan-out at zero private cost —
/// used when a [`PhysicalPlan::Source`] is itself the plan root.
struct RelayTask {
    rx: Receiver<Arc<Page>>,
    fanout: Fanout,
}

impl Task for RelayTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, done) = self.fanout.pump(ctx);
        if !done {
            return Step::blocked(cost);
        }
        match self.rx.try_recv(ctx) {
            Recv::Value(page) => {
                ctx.add_progress(page.rows() as f64);
                self.fanout.begin(page);
                let (c, done) = self.fanout.pump(ctx);
                cost += c;
                if done {
                    Step::yielded(cost.max(1))
                } else {
                    Step::blocked(cost)
                }
            }
            Recv::Empty => Step::blocked(cost),
            Recv::Closed => {
                self.fanout.close(ctx);
                Step::done(cost)
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn wire(
    sim: &mut dyn Spawner,
    catalog: &Catalog,
    plan: &PhysicalPlan,
    outs: Vec<Sender<Arc<Page>>>,
    sources: &mut VecDeque<Receiver<Arc<Page>>>,
    label: &str,
    cfg: &WiringConfig,
    preorder: &mut usize,
    spawned: &mut SpawnedOps,
) {
    let my_idx = *preorder;
    *preorder += 1;
    let name = format!("{label}/{my_idx}:{}", plan.op_name());
    // Child receivers are created before spawning this node so that
    // Source receivers are consumed in preorder.
    let child_input = |sim: &mut dyn Spawner,
                       child: &PhysicalPlan,
                       sources: &mut VecDeque<Receiver<Arc<Page>>>,
                       preorder: &mut usize,
                       spawned: &mut SpawnedOps|
     -> Receiver<Arc<Page>> {
        if let PhysicalPlan::Source { .. } = child {
            *preorder += 1;
            return sources
                .pop_front()
                .expect("a receiver per Source leaf, in preorder");
        }
        let (tx, rx) = channel::bounded(cfg.queue_capacity);
        wire(
            sim,
            catalog,
            child,
            vec![tx],
            sources,
            label,
            cfg,
            preorder,
            spawned,
        );
        rx
    };

    match plan {
        PhysicalPlan::Scan { table, cost } => {
            let pages = catalog.expect(table).pages().to_vec();
            let id = sim.spawn_task(
                name.clone(),
                Box::new(ScanTask::new(
                    pages,
                    *cost,
                    Fanout::new(outs, cost.out_per_tuple),
                )),
            );
            spawned.push((id, name));
        }
        PhysicalPlan::Source { .. } => {
            // Source as root: relay external pages to the consumers.
            let rx = sources
                .pop_front()
                .expect("a receiver per Source leaf, in preorder");
            let id = sim.spawn_task(
                name.clone(),
                Box::new(RelayTask {
                    rx,
                    fanout: Fanout::new(outs, 0.0),
                }),
            );
            spawned.push((id, name));
        }
        PhysicalPlan::Filter {
            input,
            predicate,
            cost,
        } => {
            let schema = input.output_schema(catalog);
            let rx = child_input(sim, input, sources, preorder, spawned);
            let id = sim.spawn_task(
                name.clone(),
                Box::new(FilterTask::new(
                    rx,
                    schema,
                    predicate.clone(),
                    *cost,
                    Fanout::new(outs, cost.out_per_tuple),
                )),
            );
            spawned.push((id, name));
        }
        PhysicalPlan::Project { input, exprs, cost } => {
            let in_schema = input.output_schema(catalog);
            let out_schema = plan.output_schema(catalog);
            let rx = child_input(sim, input, sources, preorder, spawned);
            let id = sim.spawn_task(
                name.clone(),
                Box::new(ProjectTask::new(
                    rx,
                    in_schema,
                    out_schema,
                    exprs.iter().map(|(_, e)| e.clone()).collect(),
                    *cost,
                    Fanout::new(outs, cost.out_per_tuple),
                )),
            );
            spawned.push((id, name));
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            cost,
        } => {
            let in_schema = input.output_schema(catalog);
            let out_schema = plan.output_schema(catalog);
            let rx = child_input(sim, input, sources, preorder, spawned);
            let id = sim.spawn_task(
                name.clone(),
                Box::new(AggregateTask::new(
                    rx,
                    in_schema,
                    group_by.clone(),
                    aggs.iter().map(|(_, a)| a.clone()).collect(),
                    out_schema,
                    *cost,
                    Fanout::new(outs, cost.out_per_tuple),
                )),
            );
            spawned.push((id, name));
        }
        PhysicalPlan::Sort { input, keys, cost } => {
            let schema = input.output_schema(catalog);
            let rx = child_input(sim, input, sources, preorder, spawned);
            let id = sim.spawn_task(
                name.clone(),
                Box::new(SortTask::new(
                    rx,
                    schema,
                    keys.clone(),
                    *cost,
                    Fanout::new(outs, cost.out_per_tuple),
                )),
            );
            spawned.push((id, name));
        }
        PhysicalPlan::HashJoin {
            build,
            probe,
            build_key,
            probe_key,
            kind,
            build_cost,
            probe_cost,
        } => {
            let build_schema = build.output_schema(catalog);
            let out_schema = plan.output_schema(catalog);
            let rx_build = child_input(sim, build, sources, preorder, spawned);
            let rx_probe = child_input(sim, probe, sources, preorder, spawned);
            let id = sim.spawn_task(
                name.clone(),
                Box::new(HashJoinTask::new(
                    rx_build,
                    rx_probe,
                    *build_key,
                    *probe_key,
                    *kind,
                    build_schema,
                    out_schema,
                    *build_cost,
                    *probe_cost,
                    Fanout::new(outs, probe_cost.out_per_tuple),
                )),
            );
            spawned.push((id, name));
        }
        PhysicalPlan::NestedLoopJoin {
            outer,
            inner,
            predicate,
            cost,
        } => {
            let pair_schema = plan.output_schema(catalog);
            let rx_outer = child_input(sim, outer, sources, preorder, spawned);
            let rx_inner = child_input(sim, inner, sources, preorder, spawned);
            let id = sim.spawn_task(
                name.clone(),
                Box::new(NestedLoopJoinTask::new(
                    rx_outer,
                    rx_inner,
                    predicate.clone(),
                    pair_schema,
                    *cost,
                    Fanout::new(outs, cost.out_per_tuple),
                )),
            );
            spawned.push((id, name));
        }
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            cost,
        } => {
            let out_schema = plan.output_schema(catalog);
            let rx_left = child_input(sim, left, sources, preorder, spawned);
            let rx_right = child_input(sim, right, sources, preorder, spawned);
            let id = sim.spawn_task(
                name.clone(),
                Box::new(MergeJoinTask::new(
                    rx_left,
                    rx_right,
                    *left_key,
                    *right_key,
                    out_schema,
                    *cost,
                    Fanout::new(outs, cost.out_per_tuple),
                )),
            );
            spawned.push((id, name));
        }
    }
}

/// Collects all pages from a receiver synchronously after a run, via a
/// collecting sink — convenience for tests and harnesses.
pub fn run_and_collect(
    sim: &mut Simulator,
    rx: Receiver<Arc<Page>>,
    sink_cost: OpCost,
) -> Vec<Vec<cordoba_storage::Value>> {
    use std::cell::RefCell;
    use std::rc::Rc;
    let buf = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        "collector",
        Box::new(crate::ops::SinkTask::new(rx, sink_cost).collecting(buf.clone())),
    );
    let outcome = sim.run_to_idle();
    assert!(
        outcome.completed_all(),
        "query did not complete: {outcome:?}"
    );
    let pages = buf.borrow();
    pages
        .iter()
        .flat_map(|p| p.tuples().map(|t| t.to_values()).collect::<Vec<_>>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Agg, CmpOp, Predicate, ScalarExpr};
    use cordoba_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ]);
        let mut b = TableBuilder::new("t", schema);
        for i in 0..100 {
            b.push_row(&[Value::Int(i), Value::Float(i as f64)]);
        }
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    #[test]
    fn scan_filter_agg_pipeline_end_to_end() {
        let cat = catalog();
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::default(),
                }),
                predicate: Predicate::col_cmp(0, CmpOp::Lt, 10i64),
                cost: OpCost::default(),
            }),
            group_by: vec![],
            aggs: vec![
                ("n".into(), Agg::Count),
                ("sum".into(), Agg::Sum(ScalarExpr::col(1))),
            ],
            cost: OpCost::default(),
        };
        let mut sim = Simulator::new(2);
        let (rx, spawned) = instantiate(&mut sim, &cat, &plan, "q0", &WiringConfig::default());
        assert_eq!(spawned.len(), 3);
        assert!(spawned.iter().any(|(_, n)| n == "q0/0:aggregate"));
        assert!(spawned.iter().any(|(_, n)| n == "q0/1:filter"));
        assert!(spawned.iter().any(|(_, n)| n == "q0/2:scan(t)"));
        let rows = run_and_collect(&mut sim, rx, OpCost::default());
        assert_eq!(rows, vec![vec![Value::Int(10), Value::Float(45.0)]]);
    }

    #[test]
    fn source_substitution_grafts_external_pages() {
        // A fragment `agg(source)` fed by a manually wired scan.
        let cat = catalog();
        let schema = cat.expect("t").schema().clone();
        let fragment = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Source {
                schema: crate::plan::SchemaRef(schema),
            }),
            group_by: vec![],
            aggs: vec![("n".into(), Agg::Count)],
            cost: OpCost::default(),
        };
        let mut sim = Simulator::new(2);
        let (scan_tx, scan_rx) = channel::bounded(8);
        sim.spawn(
            "ext-scan",
            Box::new(ScanTask::new(
                cat.expect("t").pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![scan_tx], 0.0),
            )),
        );
        let (out_tx, out_rx) = channel::bounded(8);
        let mut sources = VecDeque::from([scan_rx]);
        instantiate_into(
            &mut sim,
            &cat,
            &fragment,
            vec![out_tx],
            &mut sources,
            "frag",
            &WiringConfig::default(),
        );
        let rows = run_and_collect(&mut sim, out_rx, OpCost::default());
        assert_eq!(rows, vec![vec![Value::Int(100)]]);
    }

    #[test]
    fn bare_source_root_relays() {
        let cat = catalog();
        let schema = cat.expect("t").schema().clone();
        let fragment = PhysicalPlan::Source {
            schema: crate::plan::SchemaRef(schema),
        };
        let mut sim = Simulator::new(1);
        let (scan_tx, scan_rx) = channel::bounded(4);
        sim.spawn(
            "ext-scan",
            Box::new(ScanTask::new(
                cat.expect("t").pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![scan_tx], 0.0),
            )),
        );
        let (out_tx, out_rx) = channel::bounded(4);
        let mut sources = VecDeque::from([scan_rx]);
        instantiate_into(
            &mut sim,
            &cat,
            &fragment,
            vec![out_tx],
            &mut sources,
            "relay",
            &WiringConfig::default(),
        );
        let rows = run_and_collect(&mut sim, out_rx, OpCost::default());
        assert_eq!(rows.len(), 100);
    }
}
