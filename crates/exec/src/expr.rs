//! Scalar expressions, predicates, and aggregate specifications,
//! evaluated directly over page tuples (no materialization on the hot
//! path).

use cordoba_storage::{Date, TupleRef, Value};
use serde::{Deserialize, Serialize};

/// A scalar evaluated from a tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar<'a> {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Date.
    Date(Date),
    /// Borrowed string.
    Str(&'a str),
}

impl Scalar<'_> {
    /// Numeric view (ints coerce to float); `None` for dates/strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int(v) => Some(*v as f64),
            Scalar::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Owned [`Value`] (results, tests).
    pub fn to_value(&self) -> Value {
        match self {
            Scalar::Int(v) => Value::Int(*v),
            Scalar::Float(v) => Value::Float(*v),
            Scalar::Date(v) => Value::Date(*v),
            Scalar::Str(v) => Value::Str((*v).to_string()),
        }
    }
}

/// A scalar expression over a tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalarExpr {
    /// Column by index (resolved against the input schema at plan build).
    Col(usize),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Date literal.
    DateLit(Date),
    /// String literal.
    StrLit(String),
    /// Numeric addition.
    Add(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Numeric subtraction.
    Sub(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Numeric multiplication.
    Mul(Box<ScalarExpr>, Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Shorthand for a column reference.
    pub fn col(idx: usize) -> Self {
        ScalarExpr::Col(idx)
    }

    /// Evaluates against a tuple.
    ///
    /// # Panics
    ///
    /// Panics on type errors (e.g. arithmetic on strings) — plans are
    /// validated by construction and tests; expression typing bugs are
    /// programming errors.
    pub fn eval<'a>(&'a self, tuple: &TupleRef<'a>) -> Scalar<'a> {
        match self {
            ScalarExpr::Col(i) => match tuple.get_value_type(*i) {
                ColType::Int => Scalar::Int(tuple.get_int(*i)),
                ColType::Float => Scalar::Float(tuple.get_float(*i)),
                ColType::Date => Scalar::Date(tuple.get_date(*i)),
                ColType::Str => Scalar::Str(tuple.get_str(*i)),
            },
            ScalarExpr::IntLit(v) => Scalar::Int(*v),
            ScalarExpr::FloatLit(v) => Scalar::Float(*v),
            ScalarExpr::DateLit(v) => Scalar::Date(*v),
            ScalarExpr::StrLit(v) => Scalar::Str(v),
            ScalarExpr::Add(a, b) => numeric(a.eval(tuple), b.eval(tuple), "+", |x, y| x + y),
            ScalarExpr::Sub(a, b) => numeric(a.eval(tuple), b.eval(tuple), "-", |x, y| x - y),
            ScalarExpr::Mul(a, b) => numeric(a.eval(tuple), b.eval(tuple), "*", |x, y| x * y),
        }
    }
}

/// Column type tag used by `eval` to pick the typed accessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColType {
    Int,
    Float,
    Date,
    Str,
}

/// Extension trait giving [`TupleRef`] a type tag lookup.
trait TypedTuple {
    fn get_value_type(&self, idx: usize) -> ColType;
}

impl TypedTuple for TupleRef<'_> {
    fn get_value_type(&self, idx: usize) -> ColType {
        use cordoba_storage::DataType;
        match self.schema().fields()[idx].dtype {
            DataType::Int => ColType::Int,
            DataType::Float => ColType::Float,
            DataType::Date => ColType::Date,
            DataType::Str(_) => ColType::Str,
        }
    }
}

fn numeric<'a>(a: Scalar<'a>, b: Scalar<'a>, op: &str, f: impl Fn(f64, f64) -> f64) -> Scalar<'a> {
    match (a, b) {
        (Scalar::Int(x), Scalar::Int(y)) => {
            // Integer-preserving fast path for +,-,*.
            let r = f(x as f64, y as f64);
            Scalar::Int(r as i64)
        }
        (x, y) => {
            let (Some(x), Some(y)) = (x.as_f64(), y.as_f64()) else {
                // lint: allow(plans type-check before execution; a non-numeric operand here is a checker bug)
                panic!("non-numeric operands for '{op}': {x:?}, {y:?}")
            };
            Scalar::Float(f(x, y))
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Whether an `Ordering` between two operands satisfies the
    /// comparison (shared with the vectorized evaluator).
    pub(crate) fn holds(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less | Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less | Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater | Equal)
        )
    }
}

/// A boolean predicate over a tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (useful default).
    True,
    /// Comparison of two scalar expressions.
    Cmp {
        /// Left operand.
        left: ScalarExpr,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: ScalarExpr,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// SQL `LIKE` with `%` wildcards only (TPC-H patterns need no `_`).
    Like {
        /// String column index.
        col: usize,
        /// Pattern, e.g. `"%special%requests%"`.
        pattern: String,
    },
}

impl Predicate {
    /// Convenience comparison builder.
    pub fn cmp(left: ScalarExpr, op: CmpOp, right: ScalarExpr) -> Self {
        Predicate::Cmp { left, op, right }
    }

    /// `col <op> literal` over a column index.
    pub fn col_cmp(col: usize, op: CmpOp, lit: impl Into<LitValue>) -> Self {
        Predicate::Cmp {
            left: ScalarExpr::Col(col),
            op,
            right: lit.into().0,
        }
    }

    /// Evaluates against a tuple.
    pub fn eval(&self, tuple: &TupleRef<'_>) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { left, op, right } => {
                let (a, b) = (left.eval(tuple), right.eval(tuple));
                let ord = match (a, b) {
                    (Scalar::Int(x), Scalar::Int(y)) => x.cmp(&y),
                    (Scalar::Date(x), Scalar::Date(y)) => x.cmp(&y),
                    (Scalar::Str(x), Scalar::Str(y)) => x.cmp(y),
                    (x, y) => {
                        let (Some(x), Some(y)) = (x.as_f64(), y.as_f64()) else {
                            // lint: allow(plans type-check before execution; comparisons only reach comparable types)
                            panic!("incomparable operands: {x:?} vs {y:?}")
                        };
                        x.partial_cmp(&y).expect("non-NaN comparison") // lint: allow(documented: engine data has no NaNs)
                    }
                };
                op.holds(ord)
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval(tuple)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(tuple)),
            Predicate::Not(p) => !p.eval(tuple),
            Predicate::Like { col, pattern } => like_match(tuple.get_str(*col), pattern),
        }
    }
}

/// Wrapper allowing `col_cmp` to take plain literals.
pub struct LitValue(pub ScalarExpr);
impl From<i64> for LitValue {
    fn from(v: i64) -> Self {
        LitValue(ScalarExpr::IntLit(v))
    }
}
impl From<f64> for LitValue {
    fn from(v: f64) -> Self {
        LitValue(ScalarExpr::FloatLit(v))
    }
}
impl From<Date> for LitValue {
    fn from(v: Date) -> Self {
        LitValue(ScalarExpr::DateLit(v))
    }
}
impl From<&str> for LitValue {
    fn from(v: &str) -> Self {
        LitValue(ScalarExpr::StrLit(v.to_string()))
    }
}

/// `%`-wildcard LIKE matcher: splits the pattern at `%` and requires the
/// fragments to appear in order, honoring anchors at the ends.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let parts: Vec<&str> = pattern.split('%').collect();
    if parts.len() == 1 {
        return s == pattern;
    }
    let mut pos = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            if !s.starts_with(part) {
                return false;
            }
            pos = part.len();
        } else if i == parts.len() - 1 {
            return s.len() >= pos && s[pos..].ends_with(part);
        } else {
            match s[pos..].find(part) {
                Some(at) => pos += at + part.len(),
                None => return false,
            }
        }
    }
    true
}

/// Aggregate function specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Agg {
    /// `COUNT(*)`.
    Count,
    /// `SUM(expr)` (float result).
    Sum(ScalarExpr),
    /// `AVG(expr)` (float result).
    Avg(ScalarExpr),
    /// `MIN(expr)` over a numeric expression (float result).
    Min(ScalarExpr),
    /// `MAX(expr)` over a numeric expression (float result).
    Max(ScalarExpr),
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_storage::{DataType, Field, PageBuilder, Schema};
    use std::sync::Arc;

    fn page() -> Arc<cordoba_storage::Page> {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("price", DataType::Float),
            Field::new("ship", DataType::Date),
            Field::new("comment", DataType::Str(32)),
        ]);
        let mut b = PageBuilder::new(schema);
        b.push_row(&[
            Value::Int(10),
            Value::Float(2.5),
            Value::Date(Date::from_ymd(1994, 6, 1)),
            Value::Str("special pinto requests".into()),
        ]);
        b.push_row(&[
            Value::Int(-3),
            Value::Float(0.05),
            Value::Date(Date::from_ymd(1995, 1, 1)),
            Value::Str("quickly sleep".into()),
        ]);
        b.finish()
    }

    #[test]
    fn column_eval_all_types() {
        let p = page();
        let t = p.tuple(0);
        assert_eq!(ScalarExpr::col(0).eval(&t), Scalar::Int(10));
        assert_eq!(ScalarExpr::col(1).eval(&t), Scalar::Float(2.5));
        assert_eq!(
            ScalarExpr::col(2).eval(&t),
            Scalar::Date(Date::from_ymd(1994, 6, 1))
        );
        assert_eq!(
            ScalarExpr::col(3).eval(&t),
            Scalar::Str("special pinto requests")
        );
    }

    #[test]
    fn arithmetic_mixes_types() {
        let p = page();
        let t = p.tuple(0);
        // price * (1 - 0.1)
        let e = ScalarExpr::Mul(
            Box::new(ScalarExpr::col(1)),
            Box::new(ScalarExpr::Sub(
                Box::new(ScalarExpr::FloatLit(1.0)),
                Box::new(ScalarExpr::FloatLit(0.1)),
            )),
        );
        match e.eval(&t) {
            Scalar::Float(v) => assert!((v - 2.25).abs() < 1e-12),
            other => panic!("expected float, got {other:?}"),
        }
        // int + int stays int
        let e = ScalarExpr::Add(
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::IntLit(5)),
        );
        assert_eq!(e.eval(&t), Scalar::Int(15));
    }

    #[test]
    fn comparisons() {
        let p = page();
        let t0 = p.tuple(0);
        let t1 = p.tuple(1);
        let pred = Predicate::col_cmp(0, CmpOp::Gt, 0i64);
        assert!(pred.eval(&t0));
        assert!(!pred.eval(&t1));
        let date_pred = Predicate::col_cmp(2, CmpOp::Lt, Date::from_ymd(1995, 1, 1));
        assert!(date_pred.eval(&t0));
        assert!(!date_pred.eval(&t1));
        // int/float cross-type compare
        let x = Predicate::col_cmp(1, CmpOp::Ge, 1i64);
        assert!(x.eval(&t0));
        assert!(!x.eval(&t1));
    }

    #[test]
    fn boolean_combinators() {
        let p = page();
        let t = p.tuple(0);
        let yes = Predicate::True;
        let no = Predicate::Not(Box::new(Predicate::True));
        assert!(Predicate::And(vec![yes.clone(), yes.clone()]).eval(&t));
        assert!(!Predicate::And(vec![yes.clone(), no.clone()]).eval(&t));
        assert!(Predicate::Or(vec![no.clone(), yes.clone()]).eval(&t));
        assert!(!Predicate::Or(vec![no.clone(), no]).eval(&t));
    }

    #[test]
    fn like_on_tuples() {
        let p = page();
        let like = Predicate::Like {
            col: 3,
            pattern: "%special%requests%".into(),
        };
        assert!(like.eval(&p.tuple(0)));
        assert!(!like.eval(&p.tuple(1)));
    }

    #[test]
    fn like_matcher_edge_cases() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(like_match("abc", "%"));
        assert!(like_match("abc", "a%"));
        assert!(!like_match("abc", "b%"));
        assert!(like_match("abc", "%c"));
        assert!(!like_match("abc", "%b"));
        assert!(like_match("abc", "a%c"));
        assert!(like_match("special requests", "%special%requests%"));
        assert!(like_match("specialrequests", "%special%requests%"));
        assert!(!like_match("requests special", "%special%requests%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "a%"));
        // Ordered fragments must not overlap.
        assert!(!like_match("ab", "%ab%b%"));
        assert!(like_match("abab", "%ab%b%"));
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::Int(3).as_f64(), Some(3.0));
        assert_eq!(Scalar::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Scalar::Str("x").as_f64(), None);
        assert_eq!(Scalar::Int(3).to_value(), Value::Int(3));
        assert_eq!(Scalar::Str("x").to_value(), Value::Str("x".into()));
    }

    #[test]
    #[should_panic(expected = "non-numeric")]
    fn arithmetic_on_strings_panics() {
        let p = page();
        let t = p.tuple(0);
        ScalarExpr::Add(
            Box::new(ScalarExpr::col(3)),
            Box::new(ScalarExpr::IntLit(1)),
        )
        .eval(&t);
    }
}
