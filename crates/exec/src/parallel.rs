//! Morsel-driven intra-query parallelism over real OS threads.
//!
//! The simulator models the paper's hardware; this module runs plans on
//! the actual machine. A query fragment is split into page-range
//! [morsels](cordoba_storage::morsel) claimed from a shared atomic
//! [`MorselDispenser`]; each worker owns a fused scan → filter →
//! project pipeline (its own compiled programs and [`ExprScratch`], no
//! shared mutable state) and the stop-&-go operators merge per-worker
//! partial state at the sink:
//!
//! * **pipelines** — per-morsel outputs are reassembled in morsel-index
//!   order, so the emitted row stream equals the sequential one for any
//!   worker count (page boundaries may differ, row order never does);
//! * **aggregation** — each worker folds its morsels into a private
//!   [`AggCore`] (the same packed-u64 fast path as the serial
//!   operator); cores merge in worker-index order and emit sorted, so
//!   grouped results are row-identical to the serial path;
//! * **hash join** — workers build per-worker partition sets routed by
//!   [`partition_of`]; partitions are [absorbed](BuildTable::absorb)
//!   into one `BuildTable` (partition-major, worker-minor — the same
//!   table layout the spill path consumes) and the probe side fans out
//!   across morsels against the shared immutable table. Join output is
//!   multiset-equal to the serial path; chain order inside a key may
//!   reflect which worker claimed which morsel.
//!
//! [`ParallelConfig::default`] is one worker: every kernel then runs on
//! the calling thread, claiming morsels in order — behaviour-identical
//! to the sequential executor. The build path charges the query's
//! [`MemoryBroker`] from all workers concurrently, which is safe
//! because the broker's accounting is a single atomic compare-exchange
//! per grant.

use crate::error::ExecError;
use crate::expr::{Agg, Predicate, ScalarExpr};
use crate::memory::MemoryBroker;
use crate::ops::aggregate::AggCore;
use crate::ops::hash_join::{partition_of, BuildTable};
use crate::ops::{default_row_bytes, int_key, key_of, KeyVal};
use crate::plan::{JoinKind, PhysicalPlan};
use crate::reference;
use crate::vexpr::{CompiledExpr, CompiledPredicate, ExprScratch};
use cordoba_storage::{morsel_at, Catalog, Morsel, Page, PageBuilder, Schema, Table, Value};
// std re-exports in normal builds; model-checked shims under
// `--features model` (see tests/model_check.rs).
use shuttle_lite::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pages per claimed morsel when the config does not override it:
/// large enough to amortize a dispenser round-trip, small enough to
/// balance skewed filters across workers.
pub const DEFAULT_MORSEL_PAGES: usize = 4;

/// Intra-query parallelism knob, threaded from the engine config down
/// to the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Morsel workers per parallelizable fragment. `1` (the default)
    /// runs everything on the calling thread and is behaviour-identical
    /// to the sequential executor; `0` is treated as `1`.
    pub workers: usize,
    /// Pages per claimed morsel (`0` treated as `1`).
    pub morsel_pages: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: 1,
            morsel_pages: DEFAULT_MORSEL_PAGES,
        }
    }
}

impl ParallelConfig {
    /// A config with `workers` morsel workers and default granularity.
    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig {
            workers,
            ..Self::default()
        }
    }

    /// Reads `CORDOBA_WORKERS` from the environment, falling back to
    /// the default single worker. `ParallelConfig::default()` never
    /// consults the environment; the engine-facing configs
    /// (`WiringConfig`, `EngineConfig`) construct their parallel knob
    /// through here so a CI leg can force intra-query parallelism on
    /// for an entire test run.
    pub fn from_env() -> Self {
        let workers = std::env::var("CORDOBA_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or(1);
        Self::with_workers(workers)
    }

    /// The worker count with the zero case normalized away.
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }
}

/// Shared atomic hand-out of morsels: workers race on one counter and
/// each morsel index is claimed exactly once, in increasing order.
#[derive(Debug)]
pub struct MorselDispenser {
    page_count: usize,
    granularity: usize,
    next: AtomicUsize,
}

impl MorselDispenser {
    /// A dispenser over `page_count` pages in morsels of `granularity`
    /// pages (`0` treated as `1`).
    pub fn new(page_count: usize, granularity: usize) -> Self {
        MorselDispenser {
            page_count,
            granularity: granularity.max(1),
            next: AtomicUsize::new(0),
        }
    }

    /// Claims the next unclaimed morsel, or `None` when the page list
    /// is exhausted. Returns the morsel's index so callers can restore
    /// sequential order when reassembling per-morsel outputs.
    pub fn claim(&self) -> Option<(usize, Morsel)> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        morsel_at(self.page_count, self.granularity, idx).map(|m| (idx, m))
    }
}

/// One pipeline stage above a scan, in execution order — the plan
/// fragment each worker compiles privately.
#[derive(Debug, Clone)]
pub enum StageSpec {
    /// Row filter.
    Filter(Predicate),
    /// Projection to `out_schema` via the expressions.
    Project {
        /// Output expressions, one per output field.
        exprs: Vec<ScalarExpr>,
        /// Schema the stage produces.
        out_schema: Arc<Schema>,
    },
}

/// The schema a stage chain produces over `in_schema` rows.
pub fn stages_out_schema(in_schema: &Arc<Schema>, stages: &[StageSpec]) -> Arc<Schema> {
    stages
        .iter()
        .rev()
        .find_map(|s| match s {
            StageSpec::Project { out_schema, .. } => Some(out_schema.clone()),
            StageSpec::Filter(_) => None,
        })
        .unwrap_or_else(|| in_schema.clone())
}

enum CompiledStage {
    Filter {
        pred: CompiledPredicate,
        schema: Arc<Schema>,
    },
    Project {
        progs: Vec<CompiledExpr>,
        out_schema: Arc<Schema>,
    },
}

/// One worker's fused pipeline: privately compiled programs plus
/// reusable scratch, applied morsel-at-a-time. Shared with the
/// sim-side parallel tasks (`ops::par_pipe`), which fuse the same
/// stages into cooperative workers.
pub(crate) struct WorkerPipeline {
    stages: Vec<CompiledStage>,
    scratch: ExprScratch,
    sel: Vec<u32>,
    row_bytes: Vec<u8>,
}

impl WorkerPipeline {
    pub(crate) fn new(in_schema: &Arc<Schema>, stages: &[StageSpec]) -> Result<Self, ExecError> {
        let mut cur = in_schema.clone();
        let mut compiled = Vec::with_capacity(stages.len());
        for stage in stages {
            match stage {
                StageSpec::Filter(p) => compiled.push(CompiledStage::Filter {
                    pred: CompiledPredicate::compile(p, &cur)?,
                    schema: cur.clone(),
                }),
                StageSpec::Project { exprs, out_schema } => {
                    let progs = exprs
                        .iter()
                        .map(|e| CompiledExpr::compile(e, &cur))
                        .collect::<Result<Vec<_>, _>>()?;
                    compiled.push(CompiledStage::Project {
                        progs,
                        out_schema: out_schema.clone(),
                    });
                    cur = out_schema.clone();
                }
            }
        }
        Ok(WorkerPipeline {
            stages: compiled,
            scratch: ExprScratch::default(),
            sel: Vec::new(),
            row_bytes: Vec::new(),
        })
    }

    /// Runs one morsel's pages through every stage, repacking densely
    /// per stage (the builder persists across the morsel's pages, so
    /// output page boundaries depend only on the morsel's row stream).
    pub(crate) fn run_pages(&mut self, pages: Vec<Arc<Page>>) -> Vec<Arc<Page>> {
        let mut rows = Vec::new();
        self.run_pages_counted(pages, &mut rows)
    }

    /// As [`Self::run_pages`], recording into `stage_rows` the number
    /// of rows entering each stage — the per-stage input sizes the
    /// sim's fused workers charge their virtual costs on.
    pub(crate) fn run_pages_counted(
        &mut self,
        mut pages: Vec<Arc<Page>>,
        stage_rows: &mut Vec<usize>,
    ) -> Vec<Arc<Page>> {
        stage_rows.clear();
        for stage in &self.stages {
            stage_rows.push(pages.iter().map(|p| p.rows()).sum());
            pages = match stage {
                CompiledStage::Filter { pred, schema } => {
                    filter_pages(pred, schema, &mut self.scratch, &mut self.sel, &pages)
                }
                CompiledStage::Project { progs, out_schema } => project_pages(
                    progs,
                    out_schema,
                    &mut self.scratch,
                    &mut self.row_bytes,
                    &pages,
                ),
            };
        }
        pages
    }
}

fn filter_pages(
    pred: &CompiledPredicate,
    schema: &Arc<Schema>,
    scratch: &mut ExprScratch,
    sel: &mut Vec<u32>,
    pages: &[Arc<Page>],
) -> Vec<Arc<Page>> {
    let mut out = Vec::new();
    let mut builder = PageBuilder::new(schema.clone());
    for page in pages {
        pred.select(page, scratch, sel);
        let mut taken = 0;
        while taken < sel.len() {
            if builder.is_full() {
                out.push(builder.finish_and_reset());
            }
            taken += page.copy_rows_into(&sel[taken..], &mut builder);
        }
    }
    if !builder.is_empty() {
        out.push(builder.finish_and_reset());
    }
    out
}

fn project_pages(
    progs: &[CompiledExpr],
    out_schema: &Arc<Schema>,
    scratch: &mut ExprScratch,
    row_bytes: &mut Vec<u8>,
    pages: &[Arc<Page>],
) -> Vec<Arc<Page>> {
    let mut out = Vec::new();
    let mut builder = PageBuilder::new(out_schema.clone());
    let w = out_schema.row_width();
    for page in pages {
        let n = page.rows();
        if row_bytes.len() != n * w {
            row_bytes.resize(n * w, 0);
        }
        for (i, ce) in progs.iter().enumerate() {
            ce.encode_column(
                page,
                scratch,
                out_schema.fields()[i].dtype,
                row_bytes,
                out_schema.offset(i),
                w,
            );
        }
        for row in row_bytes.chunks_exact(w) {
            if builder.is_full() {
                out.push(builder.finish_and_reset());
            }
            assert!(builder.push_raw(row));
        }
    }
    if !builder.is_empty() {
        out.push(builder.finish_and_reset());
    }
    out
}

/// Runs `f(worker_index)` on `workers` scoped threads (or inline for a
/// single worker) and returns the results in worker-index order — the
/// fixed merge order every deterministic sink relies on.
fn run_workers<T, F>(workers: usize, f: F) -> Result<Vec<T>, ExecError>
where
    T: Send,
    F: Fn(usize) -> Result<T, ExecError> + Sync,
{
    if workers <= 1 {
        return Ok(vec![f(0)?]);
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers).map(|w| scope.spawn(move || f(w))).collect();
        handles
            .into_iter()
            // lint: allow(a worker panic must propagate; join is the propagation point)
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Runs a fused {filter | project}* pipeline over `pages` with
/// `cfg.workers` morsel workers. The returned page stream carries the
/// same rows in the same order as the sequential pipeline for any
/// worker count; only page boundaries may differ.
pub fn par_pipeline(
    pages: &[Arc<Page>],
    in_schema: &Arc<Schema>,
    stages: &[StageSpec],
    cfg: &ParallelConfig,
) -> Result<Vec<Arc<Page>>, ExecError> {
    let dispenser = MorselDispenser::new(pages.len(), cfg.morsel_pages);
    let outs = run_workers(cfg.effective_workers(), |_| {
        let mut pipe = WorkerPipeline::new(in_schema, stages)?;
        let mut out: Vec<(usize, Vec<Arc<Page>>)> = Vec::new();
        while let Some((idx, m)) = dispenser.claim() {
            out.push((idx, pipe.run_pages(pages[m.start..m.end].to_vec())));
        }
        Ok(out)
    })?;
    let mut chunks: Vec<_> = outs.into_iter().flatten().collect();
    chunks.sort_by_key(|&(i, _)| i);
    Ok(chunks.into_iter().flat_map(|(_, p)| p).collect())
}

/// Parallel hash aggregation: each worker folds its morsels (after the
/// fused pipeline) into a private [`AggCore`]; cores merge in
/// worker-index order and emit sorted by group key, so the result is
/// row-identical to the serial aggregate for any worker count.
pub fn par_aggregate(
    pages: &[Arc<Page>],
    in_schema: &Arc<Schema>,
    stages: &[StageSpec],
    group_by: &[usize],
    aggs: &[Agg],
    out_schema: &Arc<Schema>,
    cfg: &ParallelConfig,
) -> Result<Vec<Arc<Page>>, ExecError> {
    let agg_in = stages_out_schema(in_schema, stages);
    let dispenser = MorselDispenser::new(pages.len(), cfg.morsel_pages);
    let mut cores = run_workers(cfg.effective_workers(), |_| {
        let mut pipe = WorkerPipeline::new(in_schema, stages)?;
        let mut core = AggCore::new(
            &agg_in,
            group_by.to_vec(),
            aggs.to_vec(),
            out_schema.clone(),
        )?;
        while let Some((_, m)) = dispenser.claim() {
            for page in pipe.run_pages(pages[m.start..m.end].to_vec()) {
                core.consume_page(&page);
            }
        }
        Ok(core)
    })?;
    let mut merged = cores.remove(0);
    for core in cores {
        merged.merge(core);
    }
    let ordered = merged.drain_emit_order();
    let mut out = Vec::new();
    let mut builder = PageBuilder::new(out_schema.clone());
    let mut scratch = Vec::new();
    for (key, accs) in &ordered {
        merged.encode_row(key, accs, &mut scratch);
        if builder.is_full() {
            out.push(builder.finish_and_reset());
        }
        assert!(builder.push_raw(&scratch));
    }
    if !builder.is_empty() {
        out.push(builder.finish_and_reset());
    }
    Ok(out)
}

/// Parallel partitioned hash-join build: each worker routes its
/// morsels' rows (after the fused pipeline) into a private set of
/// [`partition_of`]-keyed tables; the sets are absorbed into one
/// [`BuildTable`] partition-major, worker-minor. Arena bytes are
/// charged to `broker` from all workers concurrently; the caller owns
/// releasing the returned grant once the probe is done.
pub fn par_build(
    pages: &[Arc<Page>],
    in_schema: &Arc<Schema>,
    stages: &[StageSpec],
    key_col: usize,
    cfg: &ParallelConfig,
    broker: &MemoryBroker,
) -> Result<(BuildTable, usize), ExecError> {
    let build_out = stages_out_schema(in_schema, stages);
    int_key("parallel hash join build", &build_out, key_col)?;
    let workers = cfg.effective_workers();
    let parts = workers;
    let row_width = build_out.row_width();
    let dispenser = MorselDispenser::new(pages.len(), cfg.morsel_pages);
    let results = run_workers(workers, |_| {
        let mut pipe = WorkerPipeline::new(in_schema, stages)?;
        let mut tables: Vec<BuildTable> = (0..parts).map(|_| BuildTable::new(row_width)).collect();
        let mut keys: Vec<i64> = Vec::new();
        let mut granted = 0usize;
        while let Some((_, m)) = dispenser.claim() {
            for page in pipe.run_pages(pages[m.start..m.end].to_vec()) {
                // Account the arena growth before buffering it. The
                // thread kernels have no spill path, so a refused grant
                // falls back to a forced one — the peak still records
                // the overshoot honestly.
                let bytes = page.byte_len();
                if !broker.try_grant(bytes) {
                    broker.grant(bytes);
                }
                granted += bytes;
                if parts == 1 {
                    tables[0].insert_page(&page, key_col);
                } else {
                    page.gather_i64(key_col, &mut keys);
                    for (raw, &key) in page.raw_rows().zip(&keys) {
                        tables[partition_of(key, 0, parts)].insert_row(key, raw);
                    }
                }
            }
        }
        Ok((tables, granted))
    })?;
    let mut table = BuildTable::new(row_width);
    let mut granted_total = 0usize;
    let mut per_worker: Vec<Vec<BuildTable>> = Vec::with_capacity(workers);
    for (tables, granted) in results {
        granted_total += granted;
        per_worker.push(tables);
    }
    for p in 0..parts {
        for worker_tables in &mut per_worker {
            table.absorb(std::mem::replace(
                &mut worker_tables[p],
                BuildTable::new(row_width),
            ));
        }
    }
    Ok((table, granted_total))
}

/// Parallel probe of a shared immutable [`BuildTable`]: workers claim
/// probe-side morsels, run the fused pipeline, and join each row with
/// the serial operator's per-kind semantics. Per-morsel outputs are
/// reassembled in morsel order; match order within a key reflects the
/// build table's chain order.
#[allow(clippy::too_many_arguments)]
pub fn par_probe(
    table: &BuildTable,
    pages: &[Arc<Page>],
    in_schema: &Arc<Schema>,
    stages: &[StageSpec],
    probe_key: usize,
    kind: JoinKind,
    build_schema: &Arc<Schema>,
    out_schema: &Arc<Schema>,
    cfg: &ParallelConfig,
) -> Result<Vec<Arc<Page>>, ExecError> {
    let probe_out = stages_out_schema(in_schema, stages);
    int_key("parallel hash join probe", &probe_out, probe_key)?;
    let build_defaults = default_row_bytes(build_schema);
    let dispenser = MorselDispenser::new(pages.len(), cfg.morsel_pages);
    let outs = run_workers(cfg.effective_workers(), |_| {
        let mut pipe = WorkerPipeline::new(in_schema, stages)?;
        let mut keys: Vec<i64> = Vec::new();
        let mut out: Vec<(usize, Vec<Arc<Page>>)> = Vec::new();
        while let Some((idx, m)) = dispenser.claim() {
            let mut builder = PageBuilder::new(out_schema.clone());
            let mut emitted = Vec::new();
            for page in pipe.run_pages(pages[m.start..m.end].to_vec()) {
                page.gather_i64(probe_key, &mut keys);
                for (probe_raw, &key) in page.raw_rows().zip(&keys) {
                    probe_one(
                        kind,
                        table,
                        key,
                        probe_raw,
                        &build_defaults,
                        &mut builder,
                        &mut emitted,
                    );
                }
            }
            if !builder.is_empty() {
                emitted.push(builder.finish_and_reset());
            }
            out.push((idx, emitted));
        }
        Ok(out)
    })?;
    let mut chunks: Vec<_> = outs.into_iter().flatten().collect();
    chunks.sort_by_key(|&(i, _)| i);
    Ok(chunks.into_iter().flat_map(|(_, p)| p).collect())
}

/// Joins one probe row, mirroring the serial operator's semantics.
fn probe_one(
    kind: JoinKind,
    table: &BuildTable,
    key: i64,
    probe_raw: &[u8],
    build_defaults: &[u8],
    builder: &mut PageBuilder,
    out: &mut Vec<Arc<Page>>,
) {
    fn emit(
        builder: &mut PageBuilder,
        out: &mut Vec<Arc<Page>>,
        probe_raw: &[u8],
        build_raw: &[u8],
    ) {
        if builder.is_full() {
            out.push(builder.finish_and_reset());
        }
        assert!(builder.push_raw_parts(probe_raw, build_raw));
    }
    match kind {
        JoinKind::Inner => {
            for build_raw in table.matches(key) {
                emit(builder, out, probe_raw, build_raw);
            }
        }
        JoinKind::Semi => {
            if table.contains(key) {
                emit(builder, out, probe_raw, &[]);
            }
        }
        JoinKind::Anti => {
            if !table.contains(key) {
                emit(builder, out, probe_raw, &[]);
            }
        }
        JoinKind::LeftOuter => {
            let mut m = table.matches(key).peekable();
            if m.peek().is_none() {
                emit(builder, out, probe_raw, build_defaults);
            } else {
                for build_raw in m {
                    emit(builder, out, probe_raw, build_raw);
                }
            }
        }
    }
}

/// Executes `plan` with morsel-driven parallel kernels wherever the
/// plan shape allows (scan/filter/project chains, aggregation, hash
/// joins); sorts run single-threaded over parallel-materialized
/// inputs, and nested-loop / merge joins fall back to the reference
/// executor on parallel-materialized children. With the default
/// single-worker config every kernel runs inline on the calling
/// thread.
pub fn execute_plan(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    cfg: &ParallelConfig,
) -> Result<Vec<Vec<Value>>, ExecError> {
    execute_plan_with_broker(catalog, plan, cfg, &MemoryBroker::unbounded())
}

/// As [`execute_plan`], charging hash-join build memory to `broker`
/// (released before returning).
pub fn execute_plan_with_broker(
    catalog: &Catalog,
    plan: &PhysicalPlan,
    cfg: &ParallelConfig,
    broker: &MemoryBroker,
) -> Result<Vec<Vec<Value>>, ExecError> {
    let mut scratch = catalog.clone();
    let table = materialize(&mut scratch, plan, cfg, broker, &mut 0)?;
    Ok(table.scan_values().collect())
}

/// The pipeline-able fragment rooted at `plan`: the scanned table name
/// plus the stage chain above it, or `None` when the root is not a
/// {filter | project}* chain over a scan.
fn pipeline_of(
    catalog: &Catalog,
    plan: &PhysicalPlan,
) -> Result<Option<(String, Vec<StageSpec>)>, ExecError> {
    match plan {
        PhysicalPlan::Scan { table, .. } => Ok(Some((table.clone(), Vec::new()))),
        PhysicalPlan::Filter {
            input, predicate, ..
        } => Ok(pipeline_of(catalog, input)?.map(|(t, mut stages)| {
            stages.push(StageSpec::Filter(predicate.clone()));
            (t, stages)
        })),
        PhysicalPlan::Project { input, exprs, .. } => match pipeline_of(catalog, input)? {
            Some((t, mut stages)) => {
                let out_schema = plan.try_output_schema(catalog)?;
                stages.push(StageSpec::Project {
                    exprs: exprs.iter().map(|(_, e)| e.clone()).collect(),
                    out_schema,
                });
                Ok(Some((t, stages)))
            }
            None => Ok(None),
        },
        _ => Ok(None),
    }
}

/// A lowered pipeline input: the pages to feed, their schema, and the
/// stage chain to run over them.
type LoweredChain = (Vec<Arc<Page>>, Arc<Schema>, Vec<StageSpec>);

/// Lowers `plan` into (input pages, input schema, stage chain): a
/// pipeline-able chain scans its table directly; anything else is
/// materialized first and fed through an empty chain.
fn lower_chain(
    catalog: &mut Catalog,
    plan: &PhysicalPlan,
    cfg: &ParallelConfig,
    broker: &MemoryBroker,
    tmp: &mut usize,
) -> Result<LoweredChain, ExecError> {
    if let Some((table_name, stages)) = pipeline_of(catalog, plan)? {
        let table = catalog
            .get(&table_name)
            .cloned()
            .ok_or_else(|| ExecError::plan(format!("no table '{table_name}' in catalog")))?;
        Ok((table.pages().to_vec(), table.schema().clone(), stages))
    } else {
        let table = materialize(catalog, plan, cfg, broker, tmp)?;
        Ok((table.pages().to_vec(), table.schema().clone(), Vec::new()))
    }
}

/// Registers `table`'s pages under a fresh temporary name so a
/// fallback plan node can scan a parallel-materialized child.
fn register_tmp(catalog: &mut Catalog, tmp: &mut usize, table: Arc<Table>) -> String {
    let name = format!("__par_tmp_{tmp}");
    *tmp += 1;
    catalog.register(Table::from_pages(
        name.clone(),
        table.schema().clone(),
        table.pages().to_vec(),
    ));
    name
}

fn materialize(
    catalog: &mut Catalog,
    plan: &PhysicalPlan,
    cfg: &ParallelConfig,
    broker: &MemoryBroker,
    tmp: &mut usize,
) -> Result<Arc<Table>, ExecError> {
    match plan {
        PhysicalPlan::Source { .. } => Err(ExecError::plan(
            "parallel executor cannot run plans with Source leaves".to_string(),
        )),
        PhysicalPlan::Scan { .. } | PhysicalPlan::Filter { .. } | PhysicalPlan::Project { .. } => {
            let (pages, in_schema, stages) = lower_chain(catalog, plan, cfg, broker, tmp)?;
            let out_schema = stages_out_schema(&in_schema, &stages);
            let out = par_pipeline(&pages, &in_schema, &stages, cfg)?;
            Ok(Table::from_pages("__par_pipeline", out_schema, out))
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let out_schema = plan.try_output_schema(catalog)?;
            let (pages, in_schema, stages) = lower_chain(catalog, input, cfg, broker, tmp)?;
            let agg_fns: Vec<Agg> = aggs.iter().map(|(_, a)| a.clone()).collect();
            let out = par_aggregate(
                &pages,
                &in_schema,
                &stages,
                group_by,
                &agg_fns,
                &out_schema,
                cfg,
            )?;
            Ok(Table::from_pages("__par_aggregate", out_schema, out))
        }
        PhysicalPlan::HashJoin {
            build,
            probe,
            build_key,
            probe_key,
            kind,
            ..
        } => {
            let out_schema = plan.try_output_schema(catalog)?;
            let (bpages, bschema, bstages) = lower_chain(catalog, build, cfg, broker, tmp)?;
            let (ppages, pschema, pstages) = lower_chain(catalog, probe, cfg, broker, tmp)?;
            let build_out = stages_out_schema(&bschema, &bstages);
            let (table, granted) = par_build(&bpages, &bschema, &bstages, *build_key, cfg, broker)?;
            let result = par_probe(
                &table,
                &ppages,
                &pschema,
                &pstages,
                *probe_key,
                *kind,
                &build_out,
                &out_schema,
                cfg,
            );
            broker.release(granted);
            Ok(Table::from_pages("__par_hash_join", out_schema, result?))
        }
        PhysicalPlan::Sort { input, keys, .. } => {
            // The sort itself is single-threaded (the engine's spilling
            // external sort lives in the simulator path); its input is
            // still produced by the parallel kernels.
            let table = materialize(catalog, input, cfg, broker, tmp)?;
            let schema = table.schema().clone();
            let mut rows: Vec<(Vec<KeyVal>, Vec<u8>)> = Vec::with_capacity(table.row_count());
            for page in table.pages() {
                for t in page.tuples() {
                    rows.push((key_of(&t, keys), t.raw().to_vec()));
                }
            }
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            let mut out = Vec::new();
            let mut builder = PageBuilder::new(schema.clone());
            for (_, raw) in &rows {
                if builder.is_full() {
                    out.push(builder.finish_and_reset());
                }
                assert!(builder.push_raw(raw));
            }
            if !builder.is_empty() {
                out.push(builder.finish_and_reset());
            }
            Ok(Table::from_pages("__par_sort", schema, out))
        }
        PhysicalPlan::NestedLoopJoin {
            outer,
            inner,
            predicate,
            cost,
        } => {
            let o = materialize(catalog, outer, cfg, broker, tmp)?;
            let i = materialize(catalog, inner, cfg, broker, tmp)?;
            let o_name = register_tmp(catalog, tmp, o);
            let i_name = register_tmp(catalog, tmp, i);
            let rewritten = PhysicalPlan::NestedLoopJoin {
                outer: Box::new(PhysicalPlan::Scan {
                    table: o_name,
                    cost: *cost,
                }),
                inner: Box::new(PhysicalPlan::Scan {
                    table: i_name,
                    cost: *cost,
                }),
                predicate: predicate.clone(),
                cost: *cost,
            };
            Ok(reference::execute_table(catalog, &rewritten))
        }
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            cost,
        } => {
            let l = materialize(catalog, left, cfg, broker, tmp)?;
            let r = materialize(catalog, right, cfg, broker, tmp)?;
            let l_name = register_tmp(catalog, tmp, l);
            let r_name = register_tmp(catalog, tmp, r);
            let rewritten = PhysicalPlan::MergeJoin {
                left: Box::new(PhysicalPlan::Scan {
                    table: l_name,
                    cost: *cost,
                }),
                right: Box::new(PhysicalPlan::Scan {
                    table: r_name,
                    cost: *cost,
                }),
                left_key: *left_key,
                right_key: *right_key,
                cost: *cost,
            };
            Ok(reference::execute_table(catalog, &rewritten))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::OpCost;
    use crate::expr::CmpOp;
    use crate::reference::canonicalize;
    use cordoba_storage::{DataType, Field, TableBuilder};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ]);
        // Small pages so even this fixture spans many morsels.
        let mut b = TableBuilder::with_page_size("t", schema, 256);
        for i in 0..3000i64 {
            b.push_row(&[Value::Int(i % 97), Value::Float((i % 13) as f64)]);
        }
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    fn scan() -> Box<PhysicalPlan> {
        Box::new(PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::default(),
        })
    }

    fn filtered() -> Box<PhysicalPlan> {
        Box::new(PhysicalPlan::Filter {
            input: scan(),
            predicate: Predicate::col_cmp(0, CmpOp::Lt, 60i64),
            cost: OpCost::default(),
        })
    }

    #[test]
    fn dispenser_hands_out_each_morsel_exactly_once() {
        let dispenser = MorselDispenser::new(100, 3);
        let claims = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some((idx, m)) = dispenser.claim() {
                        claims.lock().unwrap().push((idx, m));
                    }
                });
            }
        });
        let mut claims = claims.into_inner().unwrap();
        claims.sort_by_key(|&(i, _)| i);
        assert_eq!(claims.len(), 34);
        let mut covered = 0;
        for (i, (idx, m)) in claims.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(m.start, covered);
            covered = m.end;
        }
        assert_eq!(covered, 100);
    }

    #[test]
    fn pipeline_rows_match_reference_for_all_worker_counts() {
        let cat = catalog();
        let plan = PhysicalPlan::Project {
            input: filtered(),
            exprs: vec![
                ("k".into(), ScalarExpr::col(0)),
                (
                    "scaled".into(),
                    ScalarExpr::Mul(
                        Box::new(ScalarExpr::col(1)),
                        Box::new(ScalarExpr::FloatLit(2.0)),
                    ),
                ),
            ],
            cost: OpCost::default(),
        };
        let want = reference::execute(&cat, &plan);
        for workers in [1, 2, 4, 8] {
            let got =
                execute_plan(&cat, &plan, &ParallelConfig::with_workers(workers)).expect("runs");
            assert_eq!(got, want, "workers={workers}: row-for-row");
        }
    }

    #[test]
    fn aggregate_matches_reference_for_all_worker_counts() {
        let cat = catalog();
        let plan = PhysicalPlan::Aggregate {
            input: filtered(),
            group_by: vec![0],
            aggs: vec![
                ("n".into(), Agg::Count),
                ("s".into(), Agg::Sum(ScalarExpr::col(1))),
            ],
            cost: OpCost::default(),
        };
        let want = reference::execute(&cat, &plan);
        for workers in [1, 2, 4, 8] {
            let got =
                execute_plan(&cat, &plan, &ParallelConfig::with_workers(workers)).expect("runs");
            assert_eq!(got, want, "workers={workers}: sorted groups");
        }
    }

    #[test]
    fn hash_join_multiset_matches_reference_for_all_kinds() {
        let cat = catalog();
        for kind in [
            JoinKind::Inner,
            JoinKind::Semi,
            JoinKind::Anti,
            JoinKind::LeftOuter,
        ] {
            let plan = PhysicalPlan::HashJoin {
                build: filtered(),
                probe: scan(),
                build_key: 0,
                probe_key: 0,
                kind,
                build_cost: OpCost::default(),
                probe_cost: OpCost::default(),
            };
            let want = canonicalize(reference::execute(&cat, &plan));
            for workers in [1, 2, 4] {
                let got = execute_plan(&cat, &plan, &ParallelConfig::with_workers(workers))
                    .expect("runs");
                assert_eq!(canonicalize(got), want, "{kind:?} workers={workers}");
            }
        }
    }

    #[test]
    fn join_build_charges_and_releases_the_broker() {
        let cat = catalog();
        let plan = PhysicalPlan::HashJoin {
            build: scan(),
            probe: scan(),
            build_key: 0,
            probe_key: 0,
            kind: JoinKind::Semi,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let broker = MemoryBroker::unbounded();
        let got = execute_plan_with_broker(&cat, &plan, &ParallelConfig::with_workers(4), &broker)
            .expect("runs");
        assert_eq!(got.len(), 3000);
        assert!(broker.peak() > 0, "build memory was tracked");
        assert_eq!(broker.used(), 0, "build memory fully released");
    }

    #[test]
    fn sort_over_parallel_input_matches_reference() {
        let cat = catalog();
        let plan = PhysicalPlan::Sort {
            input: filtered(),
            keys: vec![0, 1],
            cost: OpCost::default(),
        };
        let want = reference::execute(&cat, &plan);
        let got = execute_plan(&cat, &plan, &ParallelConfig::with_workers(4)).expect("runs");
        assert_eq!(got, want);
    }

    #[test]
    fn source_leaves_err_instead_of_panicking() {
        let cat = catalog();
        let schema = cat.expect("t").schema().clone();
        let plan = PhysicalPlan::Source {
            schema: crate::plan::SchemaRef(schema),
        };
        let err = execute_plan(&cat, &plan, &ParallelConfig::default());
        assert!(matches!(err, Err(ExecError::PlanType(_))), "got {err:?}");
    }

    #[test]
    fn config_normalizes_workers() {
        assert_eq!(ParallelConfig::default().workers, 1);
        assert_eq!(ParallelConfig::with_workers(0).effective_workers(), 1);
        assert_eq!(ParallelConfig::with_workers(8).effective_workers(), 8);
    }
}
