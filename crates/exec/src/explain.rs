//! `EXPLAIN`-style plan rendering for diagnostics and examples.

use crate::plan::PhysicalPlan;
use cordoba_storage::Catalog;
use std::fmt::Write as _;

/// Renders a plan as an indented operator tree, one line per operator,
/// with cost parameters and derived output-schema arity:
///
/// ```text
/// aggregate [group=2 aggs=8] (w=3/t) -> 10 cols
///   filter (w=0.8/t, s=0.1/t) -> 11 cols
///     scan(lineitem) (w=9.66/t, s=10.34/t) -> 11 cols
/// ```
pub fn explain(plan: &PhysicalPlan, catalog: &Catalog) -> String {
    let mut out = String::new();
    render(plan, catalog, 0, &mut out);
    out
}

fn render(plan: &PhysicalPlan, catalog: &Catalog, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let cols = plan.output_schema(catalog).len();
    let detail = match plan {
        PhysicalPlan::Scan { cost, .. } => cost_str(cost.per_tuple, cost.out_per_tuple),
        PhysicalPlan::Source { .. } => "[external pages]".to_string(),
        PhysicalPlan::Filter { cost, .. } => cost_str(cost.per_tuple, cost.out_per_tuple),
        PhysicalPlan::Project { exprs, cost, .. } => {
            format!(
                "[exprs={}] {}",
                exprs.len(),
                cost_str(cost.per_tuple, cost.out_per_tuple)
            )
        }
        PhysicalPlan::Aggregate {
            group_by,
            aggs,
            cost,
            ..
        } => format!(
            "[group={} aggs={}] {}",
            group_by.len(),
            aggs.len(),
            cost_str(cost.per_tuple, cost.out_per_tuple)
        ),
        PhysicalPlan::Sort { keys, cost, .. } => {
            format!(
                "[keys={keys:?}] {}",
                cost_str(cost.per_tuple, cost.out_per_tuple)
            )
        }
        PhysicalPlan::HashJoin {
            build_key,
            probe_key,
            build_cost,
            probe_cost,
            ..
        } => format!(
            "[build.{build_key} = probe.{probe_key}] (build w={}/t; probe {})",
            trim(build_cost.per_tuple),
            cost_str(probe_cost.per_tuple, probe_cost.out_per_tuple)
        ),
        PhysicalPlan::NestedLoopJoin { cost, .. } => cost_str(cost.per_tuple, cost.out_per_tuple),
        PhysicalPlan::MergeJoin {
            left_key,
            right_key,
            cost,
            ..
        } => format!(
            "[left.{left_key} = right.{right_key}] {}",
            cost_str(cost.per_tuple, cost.out_per_tuple)
        ),
    };
    let _ = writeln!(out, "{indent}{} {detail} -> {cols} cols", plan.op_name());
    for child in plan.children() {
        render(child, catalog, depth + 1, out);
    }
}

fn cost_str(w: f64, s: f64) -> String {
    if s > 0.0 {
        format!("(w={}/t, s={}/t)", trim(w), trim(s))
    } else {
        format!("(w={}/t)", trim(w))
    }
}

fn trim(v: f64) -> String {
    let s = format!("{v:.2}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::OpCost;
    use crate::expr::{Agg, Predicate, ScalarExpr};
    use cordoba_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ]);
        let mut b = TableBuilder::new("t", schema);
        b.push_row(&[Value::Int(1), Value::Float(1.0)]);
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    #[test]
    fn renders_nested_tree_with_costs() {
        let cat = catalog();
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::Scan {
                    table: "t".into(),
                    cost: OpCost::new(9.66, 10.34),
                }),
                predicate: Predicate::True,
                cost: OpCost::per_tuple(0.8),
            }),
            group_by: vec![0],
            aggs: vec![("s".into(), Agg::Sum(ScalarExpr::col(1)))],
            cost: OpCost::per_tuple(0.9),
        };
        let text = explain(&plan, &cat);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("aggregate [group=1 aggs=1] (w=0.9/t) -> 2 cols"));
        assert!(lines[1].starts_with("  filter (w=0.8/t) -> 2 cols"));
        assert!(lines[2].starts_with("    scan(t) (w=9.66/t, s=10.34/t) -> 2 cols"));
    }

    #[test]
    fn renders_join_keys() {
        let cat = catalog();
        let scan = || {
            Box::new(PhysicalPlan::Scan {
                table: "t".into(),
                cost: OpCost::default(),
            })
        };
        let plan = PhysicalPlan::HashJoin {
            build: scan(),
            probe: scan(),
            build_key: 0,
            probe_key: 0,
            kind: crate::plan::JoinKind::Semi,
            build_cost: OpCost::per_tuple(4.0),
            probe_cost: OpCost::new(3.0, 0.4),
        };
        let text = explain(&plan, &cat);
        assert!(
            text.contains("hashjoin(Semi) [build.0 = probe.0]"),
            "{text}"
        );
        assert!(text.contains("build w=4/t"));
        // Semi join output = probe schema (2 cols).
        assert!(text.lines().next().unwrap().contains("-> 2 cols"));
    }

    #[test]
    fn trims_trailing_zeros() {
        assert_eq!(trim(10.0), "10");
        assert_eq!(trim(10.34), "10.34");
        assert_eq!(trim(0.5), "0.5");
    }
}
