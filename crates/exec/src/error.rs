//! Typed errors for plan compilation and operator input validation.
//!
//! A malformed plan (string arithmetic, incomparable operand types, a
//! join key that is not an `Int` column, an out-of-range column index)
//! is caught **before** any task is spawned: expression compilation and
//! operator constructors return [`ExecError`] instead of panicking, and
//! the wiring layer propagates it to the query issuer. Runtime input
//! contracts that cannot be checked statically — a merge join fed an
//! unsorted stream — are reported through a per-query [`FaultCell`]:
//! the failing task cancels its inputs, closes its outputs, and records
//! the error, so the query fails while the process (and every other
//! query sharing the simulator) keeps running.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// An execution-layer error: either a plan that does not type-check
/// (caught at compile/instantiation time) or an operator input that
/// violated its contract (caught at run time, per query).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The plan failed validation: expression type errors, unknown
    /// tables, out-of-range columns, mistyped join/sort keys.
    PlanType(String),
    /// A merge-join input stream violated its sorted-ascending
    /// contract.
    UnsortedMergeInput {
        /// Which input (`"left"` or `"right"`).
        side: &'static str,
        /// The key that preceded the violation.
        prev: i64,
        /// The out-of-order key.
        key: i64,
    },
    /// An operator received a page whose schema does not match the
    /// schema it was wired for — a malformed input that would otherwise
    /// decode rows at the wrong width.
    InputPageMismatch {
        /// The operator that rejected the page.
        op: &'static str,
        /// What was expected vs. what arrived.
        detail: String,
    },
    /// A spill-path disk operation failed (create, write, or read of a
    /// spill file).
    Spill {
        /// The operator that was spilling.
        op: &'static str,
        /// The underlying I/O error text.
        detail: String,
    },
    /// The memory budget could not be honoured even after exhausting
    /// the spill strategy (e.g. hash-join repartitioning hit its
    /// recursion cap and a partition still exceeds the budget).
    BudgetExhausted {
        /// The operator that gave up.
        op: &'static str,
        /// Why no further spilling can help.
        detail: String,
    },
    /// The batch/run stopped (time cap or deadlock) while this query was
    /// still in flight; the query never produced a result.
    Stalled {
        /// Why the run stopped (`"time cap"` or `"deadlock"`).
        reason: &'static str,
        /// Tasks still live when the run stopped.
        live_tasks: usize,
    },
    /// A fault injected by the harness (chaos testing) — the query is
    /// failed deliberately to exercise the failure path.
    Injected {
        /// Describes the injection site/campaign.
        detail: String,
    },
}

impl ExecError {
    /// Shorthand for a [`ExecError::PlanType`] from anything printable.
    pub fn plan(msg: impl fmt::Display) -> Self {
        ExecError::PlanType(msg.to_string())
    }

    /// Shorthand for a [`ExecError::Spill`] from an I/O error.
    pub fn spill(op: &'static str, err: impl fmt::Display) -> Self {
        ExecError::Spill {
            op,
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PlanType(msg) => write!(f, "plan does not type-check: {msg}"),
            ExecError::UnsortedMergeInput { side, prev, key } => write!(
                f,
                "merge join {side} input must be sorted ascending: key {key} after {prev}"
            ),
            ExecError::InputPageMismatch { op, detail } => {
                write!(f, "{op} received a page with a mismatched schema: {detail}")
            }
            ExecError::Spill { op, detail } => {
                write!(f, "{op} spill I/O failed: {detail}")
            }
            ExecError::BudgetExhausted { op, detail } => {
                write!(f, "{op} exhausted its memory budget: {detail}")
            }
            ExecError::Stalled { reason, live_tasks } => {
                write!(
                    f,
                    "query still in flight when the run stopped ({reason}, {live_tasks} live tasks)"
                )
            }
            ExecError::Injected { detail } => write!(f, "injected fault: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Shared per-query fault slot (the simulator is single-threaded, so a
/// plain `Rc<RefCell<..>>` suffices). Operator tasks record the first
/// runtime failure here; the harness checks it after the run.
#[derive(Debug, Clone, Default)]
pub struct FaultCell(Rc<RefCell<Option<ExecError>>>);

impl FaultCell {
    /// Records `err` unless a fault was already recorded (first error
    /// wins — later failures are usually cascades of the first).
    pub fn set(&self, err: ExecError) {
        let mut slot = self.0.borrow_mut();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    /// Whether a fault has been recorded.
    pub fn is_set(&self) -> bool {
        self.0.borrow().is_some()
    }

    /// The recorded fault, if any.
    pub fn get(&self) -> Option<ExecError> {
        self.0.borrow().clone()
    }

    /// Removes and returns the recorded fault, if any.
    pub fn take(&self) -> Option<ExecError> {
        self.0.borrow_mut().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_both_variants() {
        let e = ExecError::plan("string column 3 in a numeric expression");
        assert!(e.to_string().contains("does not type-check"));
        let e = ExecError::UnsortedMergeInput {
            side: "left",
            prev: 9,
            key: 3,
        };
        assert!(e.to_string().contains("sorted ascending"));
        assert!(e.to_string().contains("3 after 9"));
        let e = ExecError::Stalled {
            reason: "time cap",
            live_tasks: 3,
        };
        assert!(e.to_string().contains("time cap"));
        assert!(e.to_string().contains("3 live tasks"));
        let e = ExecError::Injected {
            detail: "chaos campaign 7".into(),
        };
        assert!(e.to_string().contains("injected"));
        assert!(e.to_string().contains("campaign 7"));
    }

    #[test]
    fn fault_cell_keeps_first_error() {
        let cell = FaultCell::default();
        assert!(!cell.is_set());
        cell.set(ExecError::plan("first"));
        cell.set(ExecError::plan("second"));
        assert_eq!(cell.get(), Some(ExecError::plan("first")));
        assert_eq!(cell.take(), Some(ExecError::plan("first")));
        assert!(!cell.is_set());
    }

    #[test]
    fn clones_share_the_slot() {
        let cell = FaultCell::default();
        let other = cell.clone();
        other.set(ExecError::plan("shared"));
        assert!(cell.is_set());
    }
}
