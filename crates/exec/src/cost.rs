//! Calibrated virtual-cost parameters for operators.
//!
//! Virtual costs decouple the simulated machine from host speed: an
//! operator's real computation (filtering a page, probing a hash table)
//! executes on the host, but the *simulated* time it takes is
//! `per_page + per_tuple · n_in` work units, plus
//! `out_per_tuple · n_out` for every consumer it delivers a page to.
//! These are exactly the `w` and `s` parameters of the paper's model, so
//! profiled simulations recover them (Section 3.1).

use cordoba_sim::VTime;
use serde::{Deserialize, Serialize};

/// Cost parameters of one operator instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCost {
    /// Work units per input tuple processed (the model's `w`).
    pub per_tuple: f64,
    /// Fixed work units per input page (header/dispatch overhead).
    pub per_page: f64,
    /// Work units per output tuple *per consumer* (the model's `s`).
    pub out_per_tuple: f64,
}

impl OpCost {
    /// A cost spec with only per-input-tuple work.
    pub const fn per_tuple(w: f64) -> Self {
        Self {
            per_tuple: w,
            per_page: 0.0,
            out_per_tuple: 0.0,
        }
    }

    /// A cost spec with input work and per-consumer output cost.
    pub const fn new(per_tuple: f64, out_per_tuple: f64) -> Self {
        Self {
            per_tuple,
            per_page: 0.0,
            out_per_tuple,
        }
    }

    /// Adds a fixed per-page overhead.
    #[must_use]
    pub const fn with_per_page(mut self, per_page: f64) -> Self {
        self.per_page = per_page;
        self
    }

    /// Virtual cost of consuming `tuples` input tuples from one page.
    pub fn input_cost(&self, tuples: usize) -> VTime {
        (self.per_page + self.per_tuple * tuples as f64)
            .round()
            .max(0.0) as VTime
    }

    /// Virtual cost of delivering `tuples` output tuples to one consumer.
    pub fn output_cost(&self, tuples: usize) -> VTime {
        (self.out_per_tuple * tuples as f64).round().max(0.0) as VTime
    }
}

impl Default for OpCost {
    /// One work unit per tuple, free output: a neutral default used by
    /// tests; real workloads calibrate explicitly.
    fn default() -> Self {
        Self {
            per_tuple: 1.0,
            per_page: 0.0,
            out_per_tuple: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_cost_rounds() {
        let c = OpCost {
            per_tuple: 1.5,
            per_page: 2.0,
            out_per_tuple: 0.0,
        };
        assert_eq!(c.input_cost(0), 2);
        assert_eq!(c.input_cost(3), 7); // 2 + 4.5 rounds to 7 (6.5 -> 7)
    }

    #[test]
    fn output_cost_per_consumer() {
        let c = OpCost::new(1.0, 0.25);
        assert_eq!(c.output_cost(100), 25);
        assert_eq!(c.output_cost(0), 0);
    }

    #[test]
    fn zero_costs_allowed() {
        let c = OpCost {
            per_tuple: 0.0,
            per_page: 0.0,
            out_per_tuple: 0.0,
        };
        assert_eq!(c.input_cost(1000), 0);
        assert_eq!(c.output_cost(1000), 0);
    }

    #[test]
    fn builders_compose() {
        let c = OpCost::per_tuple(2.0).with_per_page(5.0);
        assert_eq!(c.input_cost(10), 25);
        assert_eq!(OpCost::new(1.0, 3.0).output_cost(2), 6);
    }
}
