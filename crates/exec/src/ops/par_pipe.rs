//! Sim-side morsel-driven parallel operator groups.
//!
//! When [`crate::wiring::WiringConfig::parallel`] asks for more than
//! one worker, the wiring replaces a {filter | project}* chain over a
//! scan with `k` fused worker tasks plus one merge task, and an
//! aggregate above such a chain with `k` folding workers plus one
//! merge/emit task:
//!
//! * workers claim page-range morsels from a shared
//!   [`MorselDispenser`] and run a privately compiled
//!   [`WorkerPipeline`] one page per step, charging the *sum* of the
//!   fused stages' input costs on the rows each stage actually sees —
//!   the same total work as the serial task-per-operator wiring,
//!   split `k` ways across simulated contexts;
//! * the pipe merge task reassembles per-morsel outputs in morsel
//!   order, so the delivered row stream is identical to the serial
//!   wiring for any worker count (page boundaries may differ, row
//!   order never does);
//! * aggregate workers fold their morsels into private [`AggCore`]s
//!   which the merge task combines in worker-index order and emits
//!   sorted — row-identical to the serial aggregate.
//!
//! The chain root's per-consumer output cost (`s`) is charged by the
//! merge task's fan-out exactly once per delivered page, as in the
//! serial wiring; the internal worker→merge channels are an artifact
//! of parallelization and carry no modeled cost.

use crate::cost::OpCost;
use crate::error::ExecError;
use crate::expr::Agg;
use crate::ops::aggregate::{Acc, AggCore};
use crate::ops::{Fanout, KeyVal, Outbox};
use crate::parallel::{MorselDispenser, ParallelConfig, StageSpec, WorkerPipeline};
use cordoba_sim::channel::{self, Receiver, Recv, Sender};
use cordoba_sim::{Step, Task, TaskCtx, VTime};
use cordoba_storage::{Morsel, Page, PageBuilder, Schema};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// A fused scan + stage chain detected in a plan — what a parallel
/// group's workers execute.
pub(crate) struct ParChain {
    /// The scanned table's name, used to label the group's merge task
    /// so task stats still show which table one parallel group scans.
    pub table: String,
    /// The scanned table's pages, shared by all workers.
    pub pages: Rc<[Arc<Page>]>,
    /// Schema of the scanned pages.
    pub in_schema: Arc<Schema>,
    /// Scan cost, charged per input page.
    pub scan_cost: OpCost,
    /// Stages above the scan, bottom-up, with their plan costs.
    pub stages: Vec<(StageSpec, OpCost)>,
}

impl ParChain {
    /// Number of plan nodes the chain covers (scan + stages).
    pub fn node_count(&self) -> usize {
        1 + self.stages.len()
    }

    /// The chain root's per-consumer output cost (`s`).
    pub fn root_out_per_tuple(&self) -> f64 {
        self.stages
            .last()
            .map(|(_, c)| c.out_per_tuple)
            .unwrap_or(self.scan_cost.out_per_tuple)
    }

    /// The schema the chain produces.
    pub fn out_schema(&self) -> Arc<Schema> {
        self.stages
            .iter()
            .rev()
            .find_map(|(s, _)| match s {
                StageSpec::Project { out_schema, .. } => Some(out_schema.clone()),
                StageSpec::Filter(_) => None,
            })
            .unwrap_or_else(|| self.in_schema.clone())
    }

    fn specs(&self) -> Vec<StageSpec> {
        self.stages.iter().map(|(s, _)| s.clone()).collect()
    }

    fn costs(&self) -> Vec<OpCost> {
        self.stages.iter().map(|(_, c)| *c).collect()
    }
}

/// One worker's half-consumed view of the shared scan: claims morsels,
/// runs the fused pipeline one page per step, and reports the virtual
/// cost of each page as the sum of the fused stages' input costs.
struct FusedScan {
    pages: Rc<[Arc<Page>]>,
    dispenser: Rc<MorselDispenser>,
    pipe: WorkerPipeline,
    scan_cost: OpCost,
    stage_costs: Vec<OpCost>,
    stage_rows: Vec<usize>,
    current: Option<(usize, Morsel, usize)>,
}

impl FusedScan {
    fn new(chain: &ParChain, dispenser: Rc<MorselDispenser>) -> Result<Self, ExecError> {
        Ok(FusedScan {
            pages: chain.pages.clone(),
            dispenser,
            pipe: WorkerPipeline::new(&chain.in_schema, &chain.specs())?,
            scan_cost: chain.scan_cost,
            stage_costs: chain.costs(),
            stage_rows: Vec::new(),
            current: None,
        })
    }

    /// The next unprocessed page: `(morsel index, last page of its
    /// morsel, page)`, claiming a fresh morsel when needed. `None`
    /// when the dispenser is exhausted.
    fn next_page(&mut self) -> Option<(usize, bool, Arc<Page>)> {
        if self.current.is_none() {
            let (idx, m) = self.dispenser.claim()?;
            self.current = Some((idx, m, 0));
        }
        let (idx, m, off) = self.current.as_mut().expect("claimed above"); // lint: allow(filled two lines up)
        let page = self.pages[m.start + *off].clone();
        let morsel_idx = *idx;
        *off += 1;
        let last = m.start + *off >= m.end;
        if last {
            self.current = None;
        }
        Some((morsel_idx, last, page))
    }

    /// Runs one page through the fused stages, returning the produced
    /// pages and the virtual cost of the fused work.
    fn run_page(&mut self, page: &Arc<Page>) -> (Vec<Arc<Page>>, VTime) {
        let out = self
            .pipe
            .run_pages_counted(vec![page.clone()], &mut self.stage_rows);
        let mut cost = self.scan_cost.input_cost(page.rows());
        for (c, &rows) in self.stage_costs.iter().zip(&self.stage_rows) {
            cost += c.input_cost(rows);
        }
        (out, cost)
    }
}

/// A worker's message to its merge task: a produced page tagged with
/// its morsel index, or the morsel's end-marker (`None`).
type PipeMsg = (usize, Option<Arc<Page>>);

/// One fused pipeline worker: claims morsels, processes a page per
/// step, and streams tagged outputs to the group's merge task.
struct ParPipeWorker {
    scan: FusedScan,
    tx: Sender<PipeMsg>,
    pending: VecDeque<PipeMsg>,
}

impl ParPipeWorker {
    /// Sends queued messages; `false` means the channel throttled us.
    fn drain_pending(&mut self, ctx: &mut TaskCtx<'_>) -> bool {
        while let Some(msg) = self.pending.pop_front() {
            if let Err(msg) = self.tx.try_send(msg, ctx) {
                self.pending.push_front(msg);
                return false;
            }
        }
        true
    }
}

impl Task for ParPipeWorker {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        if !self.drain_pending(ctx) {
            return Step::blocked(0);
        }
        let Some((idx, last, page)) = self.scan.next_page() else {
            self.tx.close(ctx);
            return Step::done(0);
        };
        ctx.add_progress(page.rows() as f64);
        let (out, cost) = self.scan.run_page(&page);
        self.pending.extend(out.into_iter().map(|p| (idx, Some(p))));
        if last {
            self.pending.push_back((idx, None));
        }
        if self.drain_pending(ctx) {
            Step::yielded(cost.max(1))
        } else {
            Step::blocked(cost)
        }
    }
}

/// Reassembles per-morsel worker outputs in morsel-index order and
/// delivers them downstream, charging the chain root's `s` once per
/// page — the serial wiring's exact output contract.
struct ParPipeMerge {
    rx: Receiver<PipeMsg>,
    /// Out-of-order morsel outputs: pages so far + completion flag.
    /// Bounded in practice by the round-robin fairness of the
    /// simulator (workers advance at similar rates) plus the input
    /// channel's capacity.
    buffer: BTreeMap<usize, (Vec<Arc<Page>>, bool)>,
    next_morsel: usize,
    outbox: Outbox,
}

impl Task for ParPipeMerge {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        // Release at most one completed morsel per step (bounded work).
        if self
            .buffer
            .get(&self.next_morsel)
            .is_some_and(|(_, done)| *done)
        {
            let (pages, _) = self
                .buffer
                .remove(&self.next_morsel)
                .expect("checked above"); // lint: allow(contains_key checked in the loop condition)
            self.next_morsel += 1;
            for page in pages {
                self.outbox.push(page);
            }
            cost += 1;
            let (c, drained) = self.outbox.flush(ctx);
            cost += c;
            return if drained {
                Step::yielded(cost)
            } else {
                Step::blocked(cost)
            };
        }
        match self.rx.try_recv(ctx) {
            Recv::Value((idx, msg)) => {
                let entry = self
                    .buffer
                    .entry(idx)
                    .or_insert_with(|| (Vec::new(), false));
                match msg {
                    Some(page) => entry.0.push(page),
                    None => entry.1 = true,
                }
                Step::yielded(cost.max(1))
            }
            Recv::Empty => Step::blocked(cost),
            Recv::Closed => {
                if self.buffer.is_empty() {
                    self.outbox.close(ctx);
                    Step::done(cost)
                } else {
                    // Every worker sent its end-markers before closing,
                    // so the remaining morsels are all complete and
                    // dense from `next_morsel`; release them one per
                    // step through the branch above.
                    Step::yielded(cost.max(1))
                }
            }
        }
    }
}

/// One parallel aggregate worker: folds its morsels (after the fused
/// chain) into a private [`AggCore`], then deposits the core with the
/// merge task.
struct ParAggWorker {
    widx: usize,
    scan: FusedScan,
    agg_cost: OpCost,
    core: Option<AggCore>,
    tx: Sender<(usize, AggCore)>,
}

impl Task for ParAggWorker {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let Some((_, _, page)) = self.scan.next_page() else {
            return match self.core.take() {
                Some(core) => match self.tx.try_send((self.widx, core), ctx) {
                    Ok(()) => {
                        self.tx.close(ctx);
                        Step::done(0)
                    }
                    Err((_, core)) => {
                        self.core = Some(core);
                        Step::blocked(0)
                    }
                },
                None => {
                    self.tx.close(ctx);
                    Step::done(0)
                }
            };
        };
        ctx.add_progress(page.rows() as f64);
        let (out, mut cost) = self.scan.run_page(&page);
        // lint: allow(core is only taken when the consume phase ends)
        let core = self.core.as_mut().expect("core present while consuming");
        for p in &out {
            cost += self.agg_cost.input_cost(p.rows());
            core.consume_page(p);
        }
        Step::yielded(cost.max(1))
    }
}

/// Merges deposited cores in worker-index order and emits sorted
/// groups — the same emission order and page batching as the serial
/// [`crate::ops::AggregateTask`].
struct ParAggMerge {
    rx: Receiver<(usize, AggCore)>,
    deposited: Vec<(usize, AggCore)>,
    emit: Option<EmitState>,
    emit_batch: usize,
    outbox: Outbox,
}

struct EmitState {
    core: AggCore,
    iter: std::vec::IntoIter<(Vec<KeyVal>, Vec<Acc>)>,
}

impl Task for ParAggMerge {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        if let Some(emit) = &mut self.emit {
            let mut builder = PageBuilder::new(emit.core.out_schema().clone());
            let mut scratch = Vec::new();
            let mut pages = 0usize;
            let mut exhausted = false;
            loop {
                let Some((key, accs)) = emit.iter.next() else {
                    exhausted = true;
                    break;
                };
                emit.core.encode_row(&key, &accs, &mut scratch);
                if !builder.push_raw(&scratch) {
                    self.outbox.push(builder.finish_and_reset());
                    pages += 1;
                    assert!(builder.push_raw(&scratch));
                }
                if pages >= self.emit_batch {
                    break;
                }
            }
            if !builder.is_empty() {
                self.outbox.push(builder.finish_and_reset());
            }
            cost += 1;
            let (c, drained) = self.outbox.flush(ctx);
            cost += c;
            if exhausted && drained {
                self.outbox.close(ctx);
                return Step::done(cost);
            }
            return if drained {
                Step::yielded(cost)
            } else {
                Step::blocked(cost)
            };
        }
        match self.rx.try_recv(ctx) {
            Recv::Value(pair) => {
                self.deposited.push(pair);
                Step::yielded(cost.max(1))
            }
            Recv::Empty => Step::blocked(cost),
            Recv::Closed => {
                let mut cores = std::mem::take(&mut self.deposited);
                cores.sort_by_key(|&(w, _)| w);
                let mut iter = cores.into_iter();
                let Some((_, mut core)) = iter.next() else {
                    self.outbox.close(ctx);
                    return Step::done(cost);
                };
                for (_, other) in iter {
                    core.merge(other);
                }
                let ordered = core.drain_emit_order();
                self.emit = Some(EmitState {
                    core,
                    iter: ordered.into_iter(),
                });
                Step::yielded(cost.max(1))
            }
        }
    }
}

/// Hands out exactly `n` senders: the original plus `n - 1` clones,
/// so the channel closes when every worker has closed its own.
fn senders_for<T>(tx: Sender<T>, n: usize) -> Vec<Sender<T>> {
    let mut senders = Vec::with_capacity(n);
    for _ in 1..n {
        senders.push(tx.clone());
    }
    senders.push(tx);
    senders
}

/// Builds the `k` fused pipeline workers plus merge task for `chain`,
/// delivering to `outs`. Task names are `{base}:par_pipe[w]` and
/// `{base}:par_merge(scan(<table>))` — the merge task carries the
/// scanned table's name so each parallel group counts as exactly one
/// scan instance in task stats, like a serial scan task does.
pub(crate) fn build_pipe_group(
    base: &str,
    chain: &ParChain,
    outs: Vec<Sender<Arc<Page>>>,
    cfg: &ParallelConfig,
    queue_capacity: usize,
    built: &mut Vec<(String, Box<dyn Task>)>,
) -> Result<(), ExecError> {
    let workers = cfg.effective_workers();
    let dispenser = Rc::new(MorselDispenser::new(chain.pages.len(), cfg.morsel_pages));
    let (tx, rx) = channel::bounded(queue_capacity.max(1));
    let mut senders = senders_for(tx, workers);
    for w in 0..workers {
        built.push((
            format!("{base}:par_pipe[{w}]"),
            Box::new(ParPipeWorker {
                scan: FusedScan::new(chain, dispenser.clone())?,
                // lint: allow(senders vec was built with exactly `workers` entries)
                tx: senders.pop().expect("one sender per worker"),
                pending: VecDeque::new(),
            }),
        ));
    }
    built.push((
        format!("{base}:par_merge(scan({}))", chain.table),
        Box::new(ParPipeMerge {
            rx,
            buffer: BTreeMap::new(),
            next_morsel: 0,
            outbox: Outbox::new(Fanout::new(outs, chain.root_out_per_tuple())),
        }),
    ));
    Ok(())
}

/// Builds the `k` aggregate workers plus merge/emit task for an
/// aggregate over `chain`, delivering to `outs`. Task names are
/// `{base}:par_agg[w]` and `{base}:par_agg_merge(scan(<table>))`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_agg_group(
    base: &str,
    chain: &ParChain,
    group_by: Vec<usize>,
    aggs: Vec<Agg>,
    out_schema: Arc<Schema>,
    agg_cost: OpCost,
    outs: Vec<Sender<Arc<Page>>>,
    cfg: &ParallelConfig,
    built: &mut Vec<(String, Box<dyn Task>)>,
) -> Result<(), ExecError> {
    let workers = cfg.effective_workers();
    let agg_in = chain.out_schema();
    let dispenser = Rc::new(MorselDispenser::new(chain.pages.len(), cfg.morsel_pages));
    let (tx, rx) = channel::bounded(workers);
    let mut senders = senders_for(tx, workers);
    for w in 0..workers {
        let core = AggCore::new(&agg_in, group_by.clone(), aggs.clone(), out_schema.clone())?;
        built.push((
            format!("{base}:par_agg[{w}]"),
            Box::new(ParAggWorker {
                widx: w,
                scan: FusedScan::new(chain, dispenser.clone())?,
                agg_cost,
                core: Some(core),
                // lint: allow(senders vec was built with exactly `workers` entries)
                tx: senders.pop().expect("one sender per worker"),
            }),
        ));
    }
    built.push((
        format!("{base}:par_agg_merge(scan({}))", chain.table),
        Box::new(ParAggMerge {
            rx,
            deposited: Vec::new(),
            emit: None,
            emit_batch: 4,
            outbox: Outbox::new(Fanout::new(outs, agg_cost.out_per_tuple)),
        }),
    ));
    Ok(())
}
