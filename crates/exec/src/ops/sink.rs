//! Query sink: the root consumer. Counts/collects result rows and fires
//! a completion callback — the hook the engine's closed-system client
//! logic uses to resubmit queries (Little's Law regime, paper §1.2).

use crate::cost::OpCost;
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::Page;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Callback invoked (inside the final step) when the sink's input closes.
pub type OnDone = Box<dyn FnMut(&mut TaskCtx<'_>, u64)>;

/// Terminal operator of a query instance.
pub struct SinkTask {
    rx: Receiver<Arc<Page>>,
    cost: OpCost,
    rows_seen: u64,
    collect_into: Option<Rc<RefCell<Vec<Arc<Page>>>>>,
    on_done: Option<OnDone>,
}

impl SinkTask {
    /// Creates a sink that merely drains and counts.
    pub fn new(rx: Receiver<Arc<Page>>, cost: OpCost) -> Self {
        Self {
            rx,
            cost,
            rows_seen: 0,
            collect_into: None,
            on_done: None,
        }
    }

    /// Also collect result pages into the shared buffer.
    #[must_use]
    pub fn collecting(mut self, into: Rc<RefCell<Vec<Arc<Page>>>>) -> Self {
        self.collect_into = Some(into);
        self
    }

    /// Invoke `f(ctx, result_rows)` when the query completes.
    #[must_use]
    pub fn on_done(mut self, f: OnDone) -> Self {
        self.on_done = Some(f);
        self
    }
}

impl Task for SinkTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        match self.rx.try_recv(ctx) {
            Recv::Value(page) => {
                let n = page.rows();
                self.rows_seen += n as u64;
                let cost = self.cost.input_cost(n);
                ctx.add_progress(n as f64);
                if let Some(buf) = &self.collect_into {
                    buf.borrow_mut().push(page);
                }
                Step::yielded(cost)
            }
            Recv::Empty => Step::blocked(0),
            Recv::Closed => {
                if let Some(mut f) = self.on_done.take() {
                    f(ctx, self.rows_seen);
                }
                Step::done(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Fanout, ScanTask};
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, Schema, TableBuilder, Value};
    use std::cell::Cell;

    fn pages(n: usize) -> Vec<Arc<Page>> {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut tb = TableBuilder::with_page_size("t", schema, 64);
        for i in 0..n {
            tb.push_row(&[Value::Int(i as i64)]);
        }
        tb.finish().pages().to_vec()
    }

    #[test]
    fn sink_counts_and_calls_back() {
        let mut sim = Simulator::new(1);
        let (tx, rx) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                pages(20),
                OpCost::default(),
                Fanout::new(vec![tx], 0.0),
            )),
        );
        let seen = Rc::new(Cell::new(0u64));
        let seen2 = seen.clone();
        sim.spawn(
            "sink",
            Box::new(
                SinkTask::new(rx, OpCost::default()).on_done(Box::new(move |_, rows| {
                    seen2.set(rows);
                })),
            ),
        );
        assert!(sim.run_to_idle().completed_all());
        assert_eq!(seen.get(), 20);
    }

    #[test]
    fn collecting_sink_keeps_pages() {
        let mut sim = Simulator::new(1);
        let (tx, rx) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                pages(20),
                OpCost::default(),
                Fanout::new(vec![tx], 0.0),
            )),
        );
        let buf = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(SinkTask::new(rx, OpCost::default()).collecting(buf.clone())),
        );
        assert!(sim.run_to_idle().completed_all());
        let total: usize = buf.borrow().iter().map(|p| p.rows()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn callback_can_spawn_replacement_queries() {
        // Closed-system pattern: a finished sink spawns the next query.
        let mut sim = Simulator::new(1);
        let (tx, rx) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                pages(4),
                OpCost::default(),
                Fanout::new(vec![tx], 0.0),
            )),
        );
        sim.spawn(
            "sink",
            Box::new(
                SinkTask::new(rx, OpCost::default()).on_done(Box::new(|ctx, _| {
                    struct Follow;
                    impl Task for Follow {
                        fn step(&mut self, _: &mut TaskCtx<'_>) -> Step {
                            Step::done(5)
                        }
                    }
                    ctx.spawn("follow-up", Box::new(Follow));
                })),
            ),
        );
        let out = sim.run_to_idle();
        assert!(out.completed_all());
        assert_eq!(sim.all_task_stats().count(), 3);
    }
}
