//! Hash aggregation (stop-&-go): consumes its whole input, then emits
//! one row per group. Groups live in a `BTreeMap` so emission order is
//! deterministic (sorted by group key), matching the reference executor.

use crate::cost::OpCost;
use crate::expr::Agg;
use crate::ops::{encode_keyval, key_of, Fanout, KeyVal, Outbox};
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, PageBuilder, Schema};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Accumulator state per aggregate function.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum(f64),
    Avg { sum: f64, count: i64 },
    Min(Option<f64>),
    Max(Option<f64>),
}

impl Acc {
    fn new(agg: &Agg) -> Self {
        match agg {
            Agg::Count => Acc::Count(0),
            Agg::Sum(_) => Acc::Sum(0.0),
            Agg::Avg(_) => Acc::Avg { sum: 0.0, count: 0 },
            Agg::Min(_) => Acc::Min(None),
            Agg::Max(_) => Acc::Max(None),
        }
    }

    fn update(&mut self, agg: &Agg, tuple: &cordoba_storage::TupleRef<'_>) {
        match (self, agg) {
            (Acc::Count(n), Agg::Count) => *n += 1,
            (Acc::Sum(s), Agg::Sum(e)) => {
                *s += e.eval(tuple).as_f64().expect("SUM over numeric expression")
            }
            (Acc::Avg { sum, count }, Agg::Avg(e)) => {
                *sum += e.eval(tuple).as_f64().expect("AVG over numeric expression");
                *count += 1;
            }
            (Acc::Min(m), Agg::Min(e)) => {
                let v = e.eval(tuple).as_f64().expect("MIN over numeric expression");
                *m = Some(m.map_or(v, |cur| cur.min(v)));
            }
            (Acc::Max(m), Agg::Max(e)) => {
                let v = e.eval(tuple).as_f64().expect("MAX over numeric expression");
                *m = Some(m.map_or(v, |cur| cur.max(v)));
            }
            (acc, agg) => panic!("accumulator/spec mismatch: {acc:?} vs {agg:?}"),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Acc::Count(n) => out.extend_from_slice(&n.to_le_bytes()),
            Acc::Sum(s) => out.extend_from_slice(&s.to_le_bytes()),
            Acc::Avg { sum, count } => {
                let avg = if *count == 0 {
                    0.0
                } else {
                    sum / *count as f64
                };
                out.extend_from_slice(&avg.to_le_bytes());
            }
            Acc::Min(m) => out.extend_from_slice(&m.unwrap_or(0.0).to_le_bytes()),
            Acc::Max(m) => out.extend_from_slice(&m.unwrap_or(0.0).to_le_bytes()),
        }
    }
}

enum PhaseState {
    Consuming,
    Emitting,
    Done,
}

/// Hash-aggregate task.
pub struct AggregateTask {
    rx: Receiver<Arc<Page>>,
    group_by: Vec<usize>,
    aggs: Vec<Agg>,
    cost: OpCost,
    out_schema: Arc<Schema>,
    groups: BTreeMap<Vec<KeyVal>, Vec<Acc>>,
    state: PhaseState,
    outbox: Outbox,
    /// Pages per emit step (bounds step size during emission).
    emit_batch: usize,
    emit_iter: Option<std::collections::btree_map::IntoIter<Vec<KeyVal>, Vec<Acc>>>,
}

impl AggregateTask {
    /// Creates an aggregation task. `out_schema` must be the plan-derived
    /// schema (group columns then aggregate columns).
    pub fn new(
        rx: Receiver<Arc<Page>>,
        group_by: Vec<usize>,
        aggs: Vec<Agg>,
        out_schema: Arc<Schema>,
        cost: OpCost,
        fanout: Fanout,
    ) -> Self {
        assert_eq!(out_schema.len(), group_by.len() + aggs.len());
        Self {
            rx,
            group_by,
            aggs,
            cost,
            out_schema,
            groups: BTreeMap::new(),
            state: PhaseState::Consuming,
            outbox: Outbox::new(fanout),
            emit_batch: 4,
            emit_iter: None,
        }
    }
}

impl Task for AggregateTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        match self.state {
            PhaseState::Consuming => match self.rx.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    cost += self.cost.input_cost(n);
                    ctx.add_progress(n as f64);
                    for t in page.tuples() {
                        let key = key_of(&t, &self.group_by);
                        let accs = self
                            .groups
                            .entry(key)
                            .or_insert_with(|| self.aggs.iter().map(Acc::new).collect());
                        for (acc, agg) in accs.iter_mut().zip(&self.aggs) {
                            acc.update(agg, &t);
                        }
                    }
                    Step::yielded(cost)
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    self.state = PhaseState::Emitting;
                    self.emit_iter = Some(std::mem::take(&mut self.groups).into_iter());
                    Step::yielded(cost)
                }
            },
            PhaseState::Emitting => {
                let mut builder = PageBuilder::new(self.out_schema.clone());
                let mut emitted_rows = 0usize;
                let mut pages = 0usize;
                let mut exhausted = false;
                {
                    let iter = self
                        .emit_iter
                        .as_mut()
                        .expect("emitting phase has iterator");
                    loop {
                        let Some((key, accs)) = iter.next() else {
                            exhausted = true;
                            break;
                        };
                        let mut scratch = Vec::new();
                        for (i, k) in key.iter().enumerate() {
                            encode_keyval(&mut scratch, k, self.out_schema.fields()[i].dtype);
                        }
                        for acc in &accs {
                            acc.encode(&mut scratch);
                        }
                        if !builder.push_raw(&scratch) {
                            self.outbox.push(builder.finish_and_reset());
                            pages += 1;
                            assert!(builder.push_raw(&scratch));
                        }
                        emitted_rows += 1;
                        if pages >= self.emit_batch {
                            break;
                        }
                    }
                }
                if !builder.is_empty() {
                    self.outbox.push(builder.finish_and_reset());
                }
                // Per-consumer delivery cost (`s`) is charged by the
                // fan-out; add one unit so emission steps always advance
                // virtual time.
                let _ = emitted_rows;
                cost += 1;
                if exhausted {
                    self.state = PhaseState::Done;
                }
                let (c, drained) = self.outbox.flush(ctx);
                cost += c;
                if drained {
                    Step::yielded(cost)
                } else {
                    Step::blocked(cost)
                }
            }
            PhaseState::Done => {
                self.outbox.close(ctx);
                Step::done(cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_agg(
        rows: Vec<Vec<Value>>,
        in_schema: Arc<Schema>,
        group_by: Vec<usize>,
        aggs: Vec<Agg>,
        out_schema: Arc<Schema>,
    ) -> Vec<Vec<Value>> {
        let mut tb = TableBuilder::new("t", in_schema);
        for r in &rows {
            tb.push_row(r);
        }
        let table = tb.finish();
        let mut sim = Simulator::new(2);
        let (tx1, rx1) = channel::bounded(4);
        let (tx2, rx2) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![tx1], 0.0),
            )),
        );
        sim.spawn(
            "agg",
            Box::new(AggregateTask::new(
                rx1,
                group_by,
                aggs,
                out_schema,
                OpCost::default(),
                Fanout::new(vec![tx2], 0.0),
            )),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rx2,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        let out = out.borrow().clone();
        out
    }

    #[test]
    fn grouped_count_and_sum() {
        let in_schema = Schema::new(vec![
            Field::new("tag", DataType::Str(2)),
            Field::new("v", DataType::Float),
        ]);
        let out_schema = Schema::new(vec![
            Field::new("tag", DataType::Str(2)),
            Field::new("n", DataType::Int),
            Field::new("sum", DataType::Float),
        ]);
        let rows = vec![
            vec![Value::Str("b".into()), Value::Float(1.0)],
            vec![Value::Str("a".into()), Value::Float(2.0)],
            vec![Value::Str("b".into()), Value::Float(3.0)],
            vec![Value::Str("a".into()), Value::Float(4.0)],
            vec![Value::Str("b".into()), Value::Float(5.0)],
        ];
        let got = run_agg(
            rows,
            in_schema,
            vec![0],
            vec![Agg::Count, Agg::Sum(ScalarExpr::col(1))],
            out_schema,
        );
        assert_eq!(
            got,
            vec![
                vec![Value::Str("a".into()), Value::Int(2), Value::Float(6.0)],
                vec![Value::Str("b".into()), Value::Int(3), Value::Float(9.0)],
            ]
        );
    }

    #[test]
    fn scalar_aggregate_no_groups() {
        let in_schema = Schema::new(vec![Field::new("v", DataType::Float)]);
        let out_schema = Schema::new(vec![
            Field::new("sum", DataType::Float),
            Field::new("avg", DataType::Float),
            Field::new("min", DataType::Float),
            Field::new("max", DataType::Float),
        ]);
        let rows: Vec<Vec<Value>> = (1..=10).map(|i| vec![Value::Float(i as f64)]).collect();
        let got = run_agg(
            rows,
            in_schema,
            vec![],
            vec![
                Agg::Sum(ScalarExpr::col(0)),
                Agg::Avg(ScalarExpr::col(0)),
                Agg::Min(ScalarExpr::col(0)),
                Agg::Max(ScalarExpr::col(0)),
            ],
            out_schema,
        );
        assert_eq!(
            got,
            vec![vec![
                Value::Float(55.0),
                Value::Float(5.5),
                Value::Float(1.0),
                Value::Float(10.0)
            ]]
        );
    }

    #[test]
    fn empty_input_scalar_aggregate_emits_identity_row() {
        // SQL semantics vary; ours (and the reference executor's):
        // grouping over empty input yields no rows — including the
        // no-group case, where the map simply has no entries.
        let in_schema = Schema::new(vec![Field::new("v", DataType::Float)]);
        let out_schema = Schema::new(vec![Field::new("sum", DataType::Float)]);
        let got = run_agg(
            vec![],
            in_schema,
            vec![],
            vec![Agg::Sum(ScalarExpr::col(0))],
            out_schema,
        );
        assert!(got.is_empty());
    }

    #[test]
    fn many_groups_span_multiple_pages() {
        let in_schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let out_schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("n", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..2000).map(|i| vec![Value::Int(i % 1000)]).collect();
        let got = run_agg(rows, in_schema, vec![0], vec![Agg::Count], out_schema);
        assert_eq!(got.len(), 1000);
        // Sorted by key, every count is 2.
        for (i, row) in got.iter().enumerate() {
            assert_eq!(row[0], Value::Int(i as i64));
            assert_eq!(row[1], Value::Int(2));
        }
    }

    #[test]
    fn int_group_keys_from_counts() {
        // Q13-style: group by an Int column computed upstream.
        let in_schema = Schema::new(vec![Field::new("c_count", DataType::Int)]);
        let out_schema = Schema::new(vec![
            Field::new("c_count", DataType::Int),
            Field::new("custdist", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Int(0)],
            vec![Value::Int(0)],
            vec![Value::Int(3)],
            vec![Value::Int(3)],
            vec![Value::Int(3)],
            vec![Value::Int(7)],
        ];
        let got = run_agg(rows, in_schema, vec![0], vec![Agg::Count], out_schema);
        assert_eq!(
            got,
            vec![
                vec![Value::Int(0), Value::Int(2)],
                vec![Value::Int(3), Value::Int(3)],
                vec![Value::Int(7), Value::Int(1)],
            ]
        );
    }
}
