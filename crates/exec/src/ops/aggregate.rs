//! Hash aggregation (stop-&-go), vectorized: aggregate input
//! expressions compile once into [`CompiledExpr`] programs evaluated
//! page-at-a-time into `f64` columns, and group keys take a packed
//! fast path — any combination of group columns totalling ≤ 8 bytes
//! (single Int, Q1's two 1-byte flags, Q13's count, a lone Date) packs
//! into a `u64` looked up in an [`FxHashMap`] with no per-row
//! allocation. Wider keys fall back to the ordered per-tuple map.
//! Emission is always sorted by group key, matching the reference
//! executor.

use crate::cost::OpCost;
use crate::error::ExecError;
use crate::expr::Agg;
use crate::ops::{encode_keyval, key_of, Fanout, KeyVal, Outbox};
use crate::vexpr::{CompiledExpr, ExprScratch};
use cordoba_core::FxHashMap;
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, PageBuilder, Schema};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Accumulator state per aggregate function.
#[derive(Debug, Clone)]
pub(crate) enum Acc {
    Count(i64),
    Sum(f64),
    Avg { sum: f64, count: i64 },
    Min(Option<f64>),
    Max(Option<f64>),
}

impl Acc {
    fn new(agg: &Agg) -> Self {
        match agg {
            Agg::Count => Acc::Count(0),
            Agg::Sum(_) => Acc::Sum(0.0),
            Agg::Avg(_) => Acc::Avg { sum: 0.0, count: 0 },
            Agg::Min(_) => Acc::Min(None),
            Agg::Max(_) => Acc::Max(None),
        }
    }

    /// Folds in one row's pre-evaluated input (`Count` ignores it).
    #[inline]
    fn update(&mut self, v: f64) {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum(s) => *s += v,
            Acc::Avg { sum, count } => {
                *sum += v;
                *count += 1;
            }
            Acc::Min(m) => *m = Some(m.map_or(v, |cur| cur.min(v))),
            Acc::Max(m) => *m = Some(m.map_or(v, |cur| cur.max(v))),
        }
    }

    /// Folds another accumulator of the same function into this one —
    /// the partial-aggregate merge used by the parallel workers. For
    /// `Sum`/`Avg` the merged float total depends on merge order, so
    /// callers must merge workers in a fixed order for determinism.
    pub(crate) fn merge(&mut self, other: &Acc) {
        match (self, other) {
            (Acc::Count(n), Acc::Count(m)) => *n += m,
            (Acc::Sum(s), Acc::Sum(t)) => *s += t,
            (
                Acc::Avg { sum, count },
                Acc::Avg {
                    sum: osum,
                    count: ocount,
                },
            ) => {
                *sum += osum;
                *count += ocount;
            }
            (Acc::Min(m), Acc::Min(o)) => {
                if let Some(v) = o {
                    *m = Some(m.map_or(*v, |cur| cur.min(*v)));
                }
            }
            (Acc::Max(m), Acc::Max(o)) => {
                if let Some(v) = o {
                    *m = Some(m.map_or(*v, |cur| cur.max(*v)));
                }
            }
            // lint: allow(partials merged here were built from one shared aggregate spec)
            _ => unreachable!("merged accumulators come from identical aggregate lists"),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Acc::Count(n) => out.extend_from_slice(&n.to_le_bytes()),
            Acc::Sum(s) => out.extend_from_slice(&s.to_le_bytes()),
            Acc::Avg { sum, count } => {
                let avg = if *count == 0 {
                    0.0
                } else {
                    sum / *count as f64
                };
                out.extend_from_slice(&avg.to_le_bytes());
            }
            Acc::Min(m) => out.extend_from_slice(&m.unwrap_or(0.0).to_le_bytes()),
            Acc::Max(m) => out.extend_from_slice(&m.unwrap_or(0.0).to_le_bytes()),
        }
    }
}

/// How group keys are consumed on the hot path.
enum GroupState {
    /// Group columns pack into ≤ 8 bytes: a `u64` key per row, slot
    /// indices in an integer-hashed map, zero per-row allocation. The
    /// decoded ordered key is computed once per *group* for emission.
    Packed {
        map: FxHashMap<u64, u32>,
        slots: Vec<(Vec<KeyVal>, Vec<Acc>)>,
        /// `(byte offset, width)` of each group column within a row.
        fields: Vec<(usize, usize)>,
    },
    /// Wide keys: ordered map keyed by the decoded tuple key.
    General(BTreeMap<Vec<KeyVal>, Vec<Acc>>),
}

enum PhaseState {
    Consuming,
    Emitting,
    Done,
}

/// The reusable aggregation core: compiled input programs plus group
/// state, independent of any task or channel plumbing. One core serves
/// the single-threaded [`AggregateTask`]; the parallel executor gives
/// each morsel worker its own core and [merges](AggCore::merge) them
/// at the sink in worker order, so partial aggregation reuses exactly
/// the packed-u64 fast path and sorted emission of the serial path.
pub(crate) struct AggCore {
    group_by: Vec<usize>,
    aggs: Vec<Agg>,
    /// One compiled input program per aggregate (`None` for `Count`).
    progs: Vec<Option<CompiledExpr>>,
    out_schema: Arc<Schema>,
    groups: GroupState,
    scratch: ExprScratch,
    /// Per-aggregate evaluated input columns (empty for `Count`).
    agg_cols: Vec<Vec<f64>>,
    /// Packed per-row keys for the fast path.
    keys: Vec<u64>,
}

impl AggCore {
    /// Compiles and validates an aggregation over `in_schema` rows.
    /// `out_schema` must be the plan-derived schema (group columns then
    /// aggregate columns). Errs on non-numeric aggregate inputs,
    /// out-of-range group columns, or an output schema of the wrong
    /// arity.
    pub(crate) fn new(
        in_schema: &Arc<Schema>,
        group_by: Vec<usize>,
        aggs: Vec<Agg>,
        out_schema: Arc<Schema>,
    ) -> Result<Self, ExecError> {
        if out_schema.len() != group_by.len() + aggs.len() {
            return Err(ExecError::plan(format!(
                "aggregate output schema has {} fields for {} groups + {} aggregates",
                out_schema.len(),
                group_by.len(),
                aggs.len()
            )));
        }
        for &c in &group_by {
            if c >= in_schema.len() {
                return Err(crate::plan::column_range_error("group-by", c, in_schema));
            }
        }
        let progs = aggs
            .iter()
            .map(|a| match a {
                Agg::Count => Ok(None),
                // `compile_f64` requires a numeric input, so a string
                // or date aggregate errs here instead of panicking on
                // the first evaluated page.
                Agg::Sum(e) | Agg::Avg(e) | Agg::Min(e) | Agg::Max(e) => {
                    CompiledExpr::compile_f64(e, in_schema).map(Some)
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let key_width: usize = group_by
            .iter()
            .map(|&c| in_schema.fields()[c].dtype.width())
            .sum();
        let groups = if key_width <= 8 {
            GroupState::Packed {
                map: FxHashMap::default(),
                slots: Vec::new(),
                fields: group_by
                    .iter()
                    .map(|&c| (in_schema.offset(c), in_schema.fields()[c].dtype.width()))
                    .collect(),
            }
        } else {
            GroupState::General(BTreeMap::new())
        };
        let agg_cols = vec![Vec::new(); aggs.len()];
        Ok(Self {
            group_by,
            aggs,
            progs,
            out_schema,
            groups,
            scratch: ExprScratch::default(),
            agg_cols,
            keys: Vec::new(),
        })
    }

    /// The plan-derived output schema (group columns then aggregates).
    pub(crate) fn out_schema(&self) -> &Arc<Schema> {
        &self.out_schema
    }

    /// Folds one page into the group state.
    pub(crate) fn consume_page(&mut self, page: &Page) {
        for (col, prog) in self.agg_cols.iter_mut().zip(&self.progs) {
            if let Some(p) = prog {
                p.eval_f64_into(page, &mut self.scratch, col);
            }
        }
        match &mut self.groups {
            GroupState::Packed { map, slots, fields } => {
                // Pack each row's group-column bytes into a u64. Fixed
                // widths and offsets make packed equality coincide with
                // decoded-key equality (strings are space-padded, and
                // float bit equality is `total_cmp` equality).
                self.keys.clear();
                self.keys.reserve(page.rows());
                if let [(off, 8)] = fields[..] {
                    // Single 8-byte column: the field bytes are the key.
                    for raw in page.raw_rows() {
                        // lint: allow(slice is exactly 8 bytes by construction)
                        let bytes: [u8; 8] = raw[off..off + 8].try_into().expect("8 bytes");
                        self.keys.push(u64::from_le_bytes(bytes));
                    }
                } else {
                    for raw in page.raw_rows() {
                        let mut bytes = [0u8; 8];
                        let mut at = 0;
                        for &(off, w) in fields.iter() {
                            bytes[at..at + w].copy_from_slice(&raw[off..off + w]);
                            at += w;
                        }
                        self.keys.push(u64::from_le_bytes(bytes));
                    }
                }
                for (r, &packed) in self.keys.iter().enumerate() {
                    let idx = *map.entry(packed).or_insert_with(|| {
                        slots.push((
                            key_of(&page.tuple(r), &self.group_by),
                            self.aggs.iter().map(Acc::new).collect(),
                        ));
                        (slots.len() - 1) as u32
                    });
                    let accs = &mut slots[idx as usize].1;
                    for (acc, col) in accs.iter_mut().zip(&self.agg_cols) {
                        acc.update(col.get(r).copied().unwrap_or(0.0));
                    }
                }
            }
            GroupState::General(groups) => {
                for (r, t) in page.tuples().enumerate() {
                    let key = key_of(&t, &self.group_by);
                    let accs = groups
                        .entry(key)
                        .or_insert_with(|| self.aggs.iter().map(Acc::new).collect());
                    for (acc, col) in accs.iter_mut().zip(&self.agg_cols) {
                        acc.update(col.get(r).copied().unwrap_or(0.0));
                    }
                }
            }
        }
    }

    /// Folds another core's partial groups into this one. Both cores
    /// must come from the same `AggCore::new` arguments (same group
    /// columns and aggregate list), which the parallel executor
    /// guarantees by construction. `Sum`/`Avg` float totals depend on
    /// the merge order, so workers are always merged in index order.
    pub(crate) fn merge(&mut self, other: AggCore) {
        match (&mut self.groups, other.groups) {
            (
                GroupState::Packed { map, slots, .. },
                GroupState::Packed {
                    map: omap,
                    slots: oslots,
                    ..
                },
            ) => {
                for (packed, oidx) in omap {
                    let (okey, oaccs) = &oslots[oidx as usize];
                    match map.entry(packed) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            let accs = &mut slots[*e.get() as usize].1;
                            for (acc, oacc) in accs.iter_mut().zip(oaccs) {
                                acc.merge(oacc);
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            slots.push((okey.clone(), oaccs.clone()));
                            e.insert((slots.len() - 1) as u32);
                        }
                    }
                }
            }
            (GroupState::General(groups), GroupState::General(ogroups)) => {
                for (key, oaccs) in ogroups {
                    match groups.entry(key) {
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            for (acc, oacc) in e.get_mut().iter_mut().zip(&oaccs) {
                                acc.merge(oacc);
                            }
                        }
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(oaccs);
                        }
                    }
                }
            }
            // lint: allow(both states were constructed from the same aggregate config)
            _ => unreachable!("identical aggregate configs share one GroupState variant"),
        }
    }

    /// Drains the group state into sorted emission order.
    pub(crate) fn drain_emit_order(&mut self) -> Vec<(Vec<KeyVal>, Vec<Acc>)> {
        match &mut self.groups {
            GroupState::Packed { map, slots, .. } => {
                map.clear();
                let mut v = std::mem::take(slots);
                v.sort_by(|a, b| a.0.cmp(&b.0));
                v
            }
            GroupState::General(groups) => std::mem::take(groups).into_iter().collect(),
        }
    }

    /// Encodes one emitted group row (key columns then accumulator
    /// outputs) into `out` as raw row bytes of the output schema.
    pub(crate) fn encode_row(&self, key: &[KeyVal], accs: &[Acc], out: &mut Vec<u8>) {
        out.clear();
        for (i, k) in key.iter().enumerate() {
            encode_keyval(out, k, self.out_schema.fields()[i].dtype);
        }
        for acc in accs {
            acc.encode(out);
        }
    }
}

/// Hash-aggregate task: an [`AggCore`] fed from a channel, emitting
/// sorted output pages through an [`Outbox`].
pub struct AggregateTask {
    rx: Receiver<Arc<Page>>,
    core: AggCore,
    cost: OpCost,
    state: PhaseState,
    outbox: Outbox,
    /// Pages per emit step (bounds step size during emission).
    emit_batch: usize,
    emit_iter: Option<std::vec::IntoIter<(Vec<KeyVal>, Vec<Acc>)>>,
}

impl AggregateTask {
    /// Creates an aggregation task reading pages of `in_schema`.
    /// `out_schema` must be the plan-derived schema (group columns then
    /// aggregate columns); aggregate inputs are compiled here, once.
    /// Errs on non-numeric aggregate inputs, out-of-range group
    /// columns, or an output schema of the wrong arity.
    pub fn new(
        rx: Receiver<Arc<Page>>,
        in_schema: Arc<Schema>,
        group_by: Vec<usize>,
        aggs: Vec<Agg>,
        out_schema: Arc<Schema>,
        cost: OpCost,
        fanout: Fanout,
    ) -> Result<Self, ExecError> {
        Ok(Self {
            rx,
            core: AggCore::new(&in_schema, group_by, aggs, out_schema)?,
            cost,
            state: PhaseState::Consuming,
            outbox: Outbox::new(fanout),
            emit_batch: 4,
            emit_iter: None,
        })
    }
}

impl Task for AggregateTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        match self.state {
            PhaseState::Consuming => match self.rx.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    cost += self.cost.input_cost(n);
                    ctx.add_progress(n as f64);
                    self.core.consume_page(&page);
                    Step::yielded(cost)
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    self.state = PhaseState::Emitting;
                    let ordered = self.core.drain_emit_order();
                    self.emit_iter = Some(ordered.into_iter());
                    Step::yielded(cost)
                }
            },
            PhaseState::Emitting => {
                let mut builder = PageBuilder::new(self.core.out_schema().clone());
                let mut emitted_rows = 0usize;
                let mut pages = 0usize;
                let mut exhausted = false;
                {
                    let mut scratch = Vec::new();
                    let iter = self
                        .emit_iter
                        .as_mut()
                        .expect("emitting phase has iterator"); // lint: allow(set when entering the emitting phase)
                    loop {
                        let Some((key, accs)) = iter.next() else {
                            exhausted = true;
                            break;
                        };
                        self.core.encode_row(&key, &accs, &mut scratch);
                        if !builder.push_raw(&scratch) {
                            self.outbox.push(builder.finish_and_reset());
                            pages += 1;
                            assert!(builder.push_raw(&scratch));
                        }
                        emitted_rows += 1;
                        if pages >= self.emit_batch {
                            break;
                        }
                    }
                }
                if !builder.is_empty() {
                    self.outbox.push(builder.finish_and_reset());
                }
                // Per-consumer delivery cost (`s`) is charged by the
                // fan-out; add one unit so emission steps always advance
                // virtual time.
                let _ = emitted_rows;
                cost += 1;
                if exhausted {
                    self.state = PhaseState::Done;
                }
                let (c, drained) = self.outbox.flush(ctx);
                cost += c;
                if drained {
                    Step::yielded(cost)
                } else {
                    Step::blocked(cost)
                }
            }
            PhaseState::Done => {
                self.outbox.close(ctx);
                Step::done(cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_agg(
        rows: Vec<Vec<Value>>,
        in_schema: Arc<Schema>,
        group_by: Vec<usize>,
        aggs: Vec<Agg>,
        out_schema: Arc<Schema>,
    ) -> Vec<Vec<Value>> {
        let mut tb = TableBuilder::new("t", in_schema.clone());
        for r in &rows {
            tb.push_row(r);
        }
        let table = tb.finish();
        let mut sim = Simulator::new(2);
        let (tx1, rx1) = channel::bounded(4);
        let (tx2, rx2) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![tx1], 0.0),
            )),
        );
        sim.spawn(
            "agg",
            Box::new(
                AggregateTask::new(
                    rx1,
                    in_schema,
                    group_by,
                    aggs,
                    out_schema,
                    OpCost::default(),
                    Fanout::new(vec![tx2], 0.0),
                )
                .expect("aggregate inputs compile"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rx2,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        let out = out.borrow().clone();
        out
    }

    #[test]
    fn grouped_count_and_sum() {
        let in_schema = Schema::new(vec![
            Field::new("tag", DataType::Str(2)),
            Field::new("v", DataType::Float),
        ]);
        let out_schema = Schema::new(vec![
            Field::new("tag", DataType::Str(2)),
            Field::new("n", DataType::Int),
            Field::new("sum", DataType::Float),
        ]);
        let rows = vec![
            vec![Value::Str("b".into()), Value::Float(1.0)],
            vec![Value::Str("a".into()), Value::Float(2.0)],
            vec![Value::Str("b".into()), Value::Float(3.0)],
            vec![Value::Str("a".into()), Value::Float(4.0)],
            vec![Value::Str("b".into()), Value::Float(5.0)],
        ];
        let got = run_agg(
            rows,
            in_schema,
            vec![0],
            vec![Agg::Count, Agg::Sum(ScalarExpr::col(1))],
            out_schema,
        );
        assert_eq!(
            got,
            vec![
                vec![Value::Str("a".into()), Value::Int(2), Value::Float(6.0)],
                vec![Value::Str("b".into()), Value::Int(3), Value::Float(9.0)],
            ]
        );
    }

    #[test]
    fn scalar_aggregate_no_groups() {
        let in_schema = Schema::new(vec![Field::new("v", DataType::Float)]);
        let out_schema = Schema::new(vec![
            Field::new("sum", DataType::Float),
            Field::new("avg", DataType::Float),
            Field::new("min", DataType::Float),
            Field::new("max", DataType::Float),
        ]);
        let rows: Vec<Vec<Value>> = (1..=10).map(|i| vec![Value::Float(i as f64)]).collect();
        let got = run_agg(
            rows,
            in_schema,
            vec![],
            vec![
                Agg::Sum(ScalarExpr::col(0)),
                Agg::Avg(ScalarExpr::col(0)),
                Agg::Min(ScalarExpr::col(0)),
                Agg::Max(ScalarExpr::col(0)),
            ],
            out_schema,
        );
        assert_eq!(
            got,
            vec![vec![
                Value::Float(55.0),
                Value::Float(5.5),
                Value::Float(1.0),
                Value::Float(10.0)
            ]]
        );
    }

    #[test]
    fn empty_input_scalar_aggregate_emits_identity_row() {
        // SQL semantics vary; ours (and the reference executor's):
        // grouping over empty input yields no rows — including the
        // no-group case, where the map simply has no entries.
        let in_schema = Schema::new(vec![Field::new("v", DataType::Float)]);
        let out_schema = Schema::new(vec![Field::new("sum", DataType::Float)]);
        let got = run_agg(
            vec![],
            in_schema,
            vec![],
            vec![Agg::Sum(ScalarExpr::col(0))],
            out_schema,
        );
        assert!(got.is_empty());
    }

    #[test]
    fn many_groups_span_multiple_pages() {
        let in_schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let out_schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("n", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..2000).map(|i| vec![Value::Int(i % 1000)]).collect();
        let got = run_agg(rows, in_schema, vec![0], vec![Agg::Count], out_schema);
        assert_eq!(got.len(), 1000);
        // Sorted by key, every count is 2.
        for (i, row) in got.iter().enumerate() {
            assert_eq!(row[0], Value::Int(i as i64));
            assert_eq!(row[1], Value::Int(2));
        }
    }

    #[test]
    fn int_group_keys_from_counts() {
        // Q13-style: group by an Int column computed upstream.
        let in_schema = Schema::new(vec![Field::new("c_count", DataType::Int)]);
        let out_schema = Schema::new(vec![
            Field::new("c_count", DataType::Int),
            Field::new("custdist", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Int(0)],
            vec![Value::Int(0)],
            vec![Value::Int(3)],
            vec![Value::Int(3)],
            vec![Value::Int(3)],
            vec![Value::Int(7)],
        ];
        let got = run_agg(rows, in_schema, vec![0], vec![Agg::Count], out_schema);
        assert_eq!(
            got,
            vec![
                vec![Value::Int(0), Value::Int(2)],
                vec![Value::Int(3), Value::Int(3)],
                vec![Value::Int(7), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn negative_int_keys_sort_correctly_through_packed_path() {
        // Packed u64 hashing must not disturb sorted signed emission.
        let in_schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let out_schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("n", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Int(5)],
            vec![Value::Int(-3)],
            vec![Value::Int(0)],
            vec![Value::Int(-3)],
        ];
        let got = run_agg(rows, in_schema, vec![0], vec![Agg::Count], out_schema);
        assert_eq!(
            got,
            vec![
                vec![Value::Int(-3), Value::Int(2)],
                vec![Value::Int(0), Value::Int(1)],
                vec![Value::Int(5), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn wide_keys_take_general_path() {
        // Two Int group columns (16 bytes) exceed the packed width.
        let in_schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("v", DataType::Float),
        ]);
        let out_schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("s", DataType::Float),
        ]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(2), Value::Float(10.0)],
            vec![Value::Int(1), Value::Int(1), Value::Float(20.0)],
            vec![Value::Int(1), Value::Int(2), Value::Float(30.0)],
            vec![Value::Int(0), Value::Int(9), Value::Float(40.0)],
        ];
        let got = run_agg(
            rows,
            in_schema,
            vec![0, 1],
            vec![Agg::Sum(ScalarExpr::col(2))],
            out_schema,
        );
        assert_eq!(
            got,
            vec![
                vec![Value::Int(0), Value::Int(9), Value::Float(40.0)],
                vec![Value::Int(1), Value::Int(1), Value::Float(20.0)],
                vec![Value::Int(1), Value::Int(2), Value::Float(40.0)],
            ]
        );
    }
}
