//! Streaming inner merge join over two key-sorted inputs.
//!
//! Unlike the hash join, neither input is materialized: the task
//! buffers just enough rows on each side to assemble the current
//! equal-key groups, emits their cross product, and discards them —
//! the fully-pipelinable merge phase of the paper's Section 5.3.2
//! merge-join decomposition (the blocking sorts are separate upstream
//! operators).
//!
//! Join keys are extracted with one [`Page::gather_i64`] per arriving
//! page (no per-tuple `get_int`), and the sorted-ascending input
//! contract is checked on the gathered column. A violation does **not**
//! abort the process: the task records a typed
//! [`ExecError::UnsortedMergeInput`] in the query's [`FaultCell`],
//! cancels its inputs, closes its outputs, and finishes — the query
//! fails, the simulator (and every other query in it) keeps running.

use crate::cost::OpCost;
use crate::error::{ExecError, FaultCell};
use crate::ops::{int_key, Fanout, Outbox};
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, PageBuilder, Schema};
use std::collections::VecDeque;
use std::sync::Arc;

/// One buffered side of the merge.
struct Side {
    rx: Receiver<Arc<Page>>,
    key_idx: usize,
    name: &'static str,
    rows: VecDeque<(i64, Box<[u8]>)>,
    closed: bool,
    last_key: Option<i64>,
    /// Reused gathered-key buffer (one gather per page).
    key_buf: Vec<i64>,
}

impl Side {
    /// Pulls one page into the buffer. Returns `Ok(Some(tuples))` when a
    /// page arrived, `Ok(None)` when the channel was empty (waiter
    /// registered) or just closed, and `Err` when the page violates the
    /// sorted-ascending key contract.
    fn pull(&mut self, ctx: &mut TaskCtx<'_>) -> Result<Option<usize>, ExecError> {
        match self.rx.try_recv(ctx) {
            Recv::Value(page) => {
                let n = page.rows();
                page.gather_i64(self.key_idx, &mut self.key_buf);
                // Vectorized sortedness check over the gathered column:
                // page-start continuity plus in-page monotonicity.
                if let (Some(&first), Some(prev)) = (self.key_buf.first(), self.last_key) {
                    if first < prev {
                        return Err(self.unsorted(prev, first));
                    }
                }
                if let Some(w) = self.key_buf.windows(2).find(|w| w[1] < w[0]) {
                    return Err(self.unsorted(w[0], w[1]));
                }
                self.last_key = self.key_buf.last().copied().or(self.last_key);
                for (&key, raw) in self.key_buf.iter().zip(page.raw_rows()) {
                    self.rows.push_back((key, raw.to_vec().into_boxed_slice()));
                }
                Ok(Some(n))
            }
            Recv::Empty => Ok(None),
            Recv::Closed => {
                self.closed = true;
                Ok(None)
            }
        }
    }

    fn unsorted(&self, prev: i64, key: i64) -> ExecError {
        ExecError::UnsortedMergeInput {
            side: self.name,
            prev,
            key,
        }
    }

    /// Whether the group starting at the buffer front is complete: a
    /// larger key follows it, or the stream has ended.
    fn front_group_len(&self) -> Option<usize> {
        let (front_key, _) = self.rows.front()?;
        match self.rows.iter().position(|(k, _)| k != front_key) {
            Some(len) => Some(len),
            None if self.closed => Some(self.rows.len()),
            None => None, // group may continue in unseen pages
        }
    }

    fn exhausted(&self) -> bool {
        self.closed && self.rows.is_empty()
    }
}

/// Merge-join task.
pub struct MergeJoinTask {
    left: Side,
    right: Side,
    cost: OpCost,
    builder: PageBuilder,
    outbox: Outbox,
    fault: FaultCell,
    done: bool,
}

impl MergeJoinTask {
    /// Creates a merge join; `out_schema` must be left ++ right. Errs
    /// when a key column is out of range or not `Int`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rx_left: Receiver<Arc<Page>>,
        rx_right: Receiver<Arc<Page>>,
        left_schema: &Arc<Schema>,
        right_schema: &Arc<Schema>,
        left_key: usize,
        right_key: usize,
        out_schema: Arc<Schema>,
        cost: OpCost,
        fanout: Fanout,
        fault: FaultCell,
    ) -> Result<Self, ExecError> {
        int_key("merge join left", left_schema, left_key)?;
        int_key("merge join right", right_schema, right_key)?;
        Ok(Self {
            left: Side {
                rx: rx_left,
                key_idx: left_key,
                name: "left",
                rows: VecDeque::new(),
                closed: false,
                last_key: None,
                key_buf: Vec::new(),
            },
            right: Side {
                rx: rx_right,
                key_idx: right_key,
                name: "right",
                rows: VecDeque::new(),
                closed: false,
                last_key: None,
                key_buf: Vec::new(),
            },
            cost,
            builder: PageBuilder::new(out_schema),
            outbox: Outbox::new(fanout),
            fault,
            done: false,
        })
    }

    /// Merges as far as the buffered rows allow. Returns emitted rows.
    fn merge_available(&mut self) -> usize {
        let mut emitted = 0;
        loop {
            // One side exhausted: nothing further can match.
            if self.left.exhausted() || self.right.exhausted() {
                self.left.rows.clear();
                self.right.rows.clear();
                if self.left.closed && self.right.closed {
                    self.done = true;
                }
                return emitted;
            }
            let (Some(&(lk, _)), Some(&(rk, _))) =
                (self.left.rows.front(), self.right.rows.front())
            else {
                return emitted; // need more input
            };
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => {
                    self.left.rows.pop_front();
                }
                std::cmp::Ordering::Greater => {
                    self.right.rows.pop_front();
                }
                std::cmp::Ordering::Equal => {
                    let (Some(lg), Some(rg)) =
                        (self.left.front_group_len(), self.right.front_group_len())
                    else {
                        return emitted; // groups not complete yet
                    };
                    for li in 0..lg {
                        for ri in 0..rg {
                            let (lrow, rrow) = (&self.left.rows[li].1, &self.right.rows[ri].1);
                            if !self.builder.push_raw_parts(lrow, rrow) {
                                let full = self.builder.finish_and_reset();
                                self.outbox.push(full);
                                assert!(self.builder.push_raw_parts(lrow, rrow));
                            }
                            emitted += 1;
                        }
                    }
                    self.left.rows.drain(..lg);
                    self.right.rows.drain(..rg);
                }
            }
        }
    }

    /// Fails the query: records the fault, cancels both inputs, drops
    /// all buffered state, and closes the outputs without delivering
    /// further pages.
    fn fail(&mut self, ctx: &mut TaskCtx<'_>, err: ExecError) -> Step {
        self.fault.set(err);
        self.left.rx.close(ctx);
        self.right.rx.close(ctx);
        self.left.rows.clear();
        self.right.rows.clear();
        self.outbox.abandon();
        self.outbox.close(ctx);
        self.done = true;
        Step::done(1)
    }
}

impl Task for MergeJoinTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        if self.done {
            if !self.builder.is_empty() {
                let tail = self.builder.finish_and_reset();
                self.outbox.push(tail);
                let (c, drained) = self.outbox.flush(ctx);
                cost += c;
                if !drained {
                    return Step::blocked(cost);
                }
            }
            self.outbox.close(ctx);
            return Step::done(cost.max(1));
        }
        // Pull from whichever side the merge is starved on (prefer the
        // side with fewer buffered rows).
        let mut pulled = 0usize;
        let order: [bool; 2] = if self.left.rows.len() <= self.right.rows.len() {
            [true, false]
        } else {
            [false, true]
        };
        for is_left in order {
            let side = if is_left {
                &mut self.left
            } else {
                &mut self.right
            };
            if !side.closed {
                match side.pull(ctx) {
                    Ok(Some(n)) => {
                        pulled += n;
                        break;
                    }
                    Ok(None) => {}
                    Err(err) => return self.fail(ctx, err),
                }
            }
        }
        cost += self.cost.input_cost(pulled);
        if pulled > 0 {
            ctx.add_progress(pulled as f64);
        }
        self.merge_available();
        let (c, drained) = self.outbox.flush(ctx);
        cost += c;
        if !drained {
            return Step::blocked(cost);
        }
        if self.done || pulled > 0 {
            Step::yielded(cost.max(1))
        } else if self.left.closed && self.right.closed {
            // Both streams ended; finish next step.
            self.done = true;
            Step::yielded(cost.max(1))
        } else {
            Step::blocked(cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use crate::plan::concat_schemas;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn try_run_merge(
        left: Vec<(i64, i64)>,
        right: Vec<(i64, i64)>,
    ) -> Result<Vec<Vec<Value>>, ExecError> {
        let ls = Schema::new(vec![
            Field::new("lk", DataType::Int),
            Field::new("lv", DataType::Int),
        ]);
        let rs = Schema::new(vec![
            Field::new("rk", DataType::Int),
            Field::new("rv", DataType::Int),
        ]);
        let mut lt = TableBuilder::with_page_size("l", ls.clone(), 64);
        for (k, v) in &left {
            lt.push_row(&[Value::Int(*k), Value::Int(*v)]);
        }
        let mut rt = TableBuilder::with_page_size("r", rs.clone(), 64);
        for (k, v) in &right {
            rt.push_row(&[Value::Int(*k), Value::Int(*v)]);
        }
        let out_schema = concat_schemas(&ls, &rs);
        let fault = FaultCell::default();
        let mut sim = Simulator::new(2);
        let (txl, rxl) = channel::bounded(2);
        let (txr, rxr) = channel::bounded(2);
        let (txo, rxo) = channel::bounded(2);
        sim.spawn(
            "l",
            Box::new(ScanTask::new(
                lt.finish().pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txl], 0.0),
            )),
        );
        sim.spawn(
            "r",
            Box::new(ScanTask::new(
                rt.finish().pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txr], 0.0),
            )),
        );
        sim.spawn(
            "mj",
            Box::new(
                MergeJoinTask::new(
                    rxl,
                    rxr,
                    &ls,
                    &rs,
                    0,
                    0,
                    out_schema,
                    OpCost::default(),
                    Fanout::new(vec![txo], 0.0),
                    fault.clone(),
                )
                .expect("valid keys"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rxo,
                rows: out.clone(),
            }),
        );
        let outcome = sim.run_to_idle();
        if let Some(err) = fault.take() {
            assert!(
                outcome.completed_all(),
                "failure must not wedge: {outcome:?}"
            );
            return Err(err);
        }
        assert!(outcome.completed_all(), "{outcome:?}");
        let out = out.borrow().clone();
        Ok(out)
    }

    fn run_merge(left: Vec<(i64, i64)>, right: Vec<(i64, i64)>) -> Vec<Vec<Value>> {
        try_run_merge(left, right).expect("sorted inputs")
    }

    #[test]
    fn basic_sorted_merge() {
        let got = run_merge(
            vec![(1, 10), (3, 30), (5, 50)],
            vec![(1, 100), (2, 200), (5, 500)],
        );
        assert_eq!(
            got,
            vec![
                vec![
                    Value::Int(1),
                    Value::Int(10),
                    Value::Int(1),
                    Value::Int(100)
                ],
                vec![
                    Value::Int(5),
                    Value::Int(50),
                    Value::Int(5),
                    Value::Int(500)
                ],
            ]
        );
    }

    #[test]
    fn duplicate_keys_cross_product() {
        let got = run_merge(vec![(2, 1), (2, 2)], vec![(2, 10), (2, 20), (2, 30)]);
        assert_eq!(got.len(), 6);
        // All pairs present exactly once.
        let mut pairs: Vec<(i64, i64)> = got
            .iter()
            .map(|r| (r[1].as_int().unwrap(), r[3].as_int().unwrap()))
            .collect();
        pairs.sort_unstable();
        assert_eq!(
            pairs,
            vec![(1, 10), (1, 20), (1, 30), (2, 10), (2, 20), (2, 30)]
        );
    }

    #[test]
    fn groups_spanning_page_boundaries() {
        // 8 rows per page (64-byte pages, 16-byte rows): a key group of
        // 12 spans pages; the join must wait for the full group.
        let left: Vec<(i64, i64)> = (0..12).map(|i| (7, i)).chain([(9, 99)]).collect();
        let right = vec![(7, 1000), (9, 900)];
        let got = run_merge(left, right);
        assert_eq!(got.len(), 13);
    }

    #[test]
    fn disjoint_keys_produce_nothing() {
        let got = run_merge(vec![(1, 1), (3, 3)], vec![(2, 2), (4, 4)]);
        assert!(got.is_empty());
    }

    #[test]
    fn empty_sides() {
        assert!(run_merge(vec![], vec![(1, 1)]).is_empty());
        assert!(run_merge(vec![(1, 1)], vec![]).is_empty());
        assert!(run_merge(vec![], vec![]).is_empty());
    }

    #[test]
    fn one_side_much_longer() {
        let left: Vec<(i64, i64)> = (0..100).map(|i| (i, i)).collect();
        let right = vec![(50, 1), (99, 2)];
        let got = run_merge(left, right);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0][0], Value::Int(50));
        assert_eq!(got[1][0], Value::Int(99));
    }

    #[test]
    fn unsorted_input_fails_query_with_typed_error() {
        // In-page violation on the left side.
        let err = try_run_merge(vec![(3, 1), (1, 2)], vec![(1, 1)]).unwrap_err();
        assert_eq!(
            err,
            ExecError::UnsortedMergeInput {
                side: "left",
                prev: 3,
                key: 1
            }
        );
        // Cross-page violation on the right side (4 rows per 64-byte
        // page): the bad key leads its page, so the check spans pages.
        let right: Vec<(i64, i64)> = (0..8).map(|i| (10 + i, i)).chain([(2, 99)]).collect();
        let err = try_run_merge(vec![(1, 1)], right).unwrap_err();
        assert_eq!(
            err,
            ExecError::UnsortedMergeInput {
                side: "right",
                prev: 17,
                key: 2
            }
        );
    }

    #[test]
    fn non_int_key_errors_at_construction() {
        let ls = Schema::new(vec![Field::new("lk", DataType::Float)]);
        let rs = Schema::new(vec![Field::new("rk", DataType::Int)]);
        let out = concat_schemas(&ls, &rs);
        let (_txl, rxl) = channel::bounded::<Arc<Page>>(1);
        let (_txr, rxr) = channel::bounded::<Arc<Page>>(1);
        let err = MergeJoinTask::new(
            rxl,
            rxr,
            &ls,
            &rs,
            0,
            0,
            out,
            OpCost::default(),
            Fanout::new(vec![], 0.0),
            FaultCell::default(),
        )
        .err()
        .expect("constructor must reject");
        assert!(err.to_string().contains("must be Int"), "{err}");
    }
}
