//! Full sort (stop-&-go): materializes its input, sorts, then streams
//! the result — the canonical blocking operator of the paper's
//! Section 5.2 phase decomposition.

use crate::cost::OpCost;
use crate::ops::{key_of, Fanout, KeyVal, Outbox};
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, PageBuilder, Schema};
use std::sync::Arc;

enum PhaseState {
    Consuming,
    Emitting {
        rows: Vec<(Vec<KeyVal>, Box<[u8]>)>,
        next: usize,
    },
    Done,
}

/// Sort task (ascending by the given key columns, major first).
pub struct SortTask {
    rx: Receiver<Arc<Page>>,
    keys: Vec<usize>,
    cost: OpCost,
    schema: Arc<Schema>,
    buffered: Vec<(Vec<KeyVal>, Box<[u8]>)>,
    state: PhaseState,
    outbox: Outbox,
    emit_batch_rows: usize,
}

impl SortTask {
    /// Creates a sort over pages of `schema`.
    pub fn new(
        rx: Receiver<Arc<Page>>,
        schema: Arc<Schema>,
        keys: Vec<usize>,
        cost: OpCost,
        fanout: Fanout,
    ) -> Self {
        let emit_batch_rows = (crate::ops::sort::DEFAULT_EMIT_BYTES / schema.row_width()).max(1);
        Self {
            rx,
            keys,
            cost,
            schema,
            buffered: Vec::new(),
            state: PhaseState::Consuming,
            outbox: Outbox::new(fanout),
            emit_batch_rows,
        }
    }
}

/// Bytes emitted per step during the output phase (≈4 pages).
const DEFAULT_EMIT_BYTES: usize = 16 * 1024;

impl Task for SortTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        match &mut self.state {
            PhaseState::Consuming => match self.rx.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    cost += self.cost.input_cost(n);
                    ctx.add_progress(n as f64);
                    for t in page.tuples() {
                        self.buffered
                            .push((key_of(&t, &self.keys), t.raw().to_vec().into_boxed_slice()));
                    }
                    Step::yielded(cost)
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    let mut rows = std::mem::take(&mut self.buffered);
                    // The actual sort. Charged linearly per tuple to keep
                    // the model's per-unit-progress cost structure; the
                    // log factor is ~constant across the paper's scales.
                    rows.sort_by(|a, b| a.0.cmp(&b.0));
                    cost += self.cost.input_cost(rows.len());
                    self.state = PhaseState::Emitting { rows, next: 0 };
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::Emitting { rows, next } => {
                let mut builder = PageBuilder::new(self.schema.clone());
                let end = (*next + self.emit_batch_rows).min(rows.len());
                for (_, raw) in &rows[*next..end] {
                    if !builder.push_raw(raw) {
                        self.outbox.push(builder.finish_and_reset());
                        assert!(builder.push_raw(raw));
                    }
                }
                *next = end;
                if !builder.is_empty() {
                    self.outbox.push(builder.finish_and_reset());
                }
                let finished = *next >= rows.len();
                if finished {
                    self.state = PhaseState::Done;
                }
                cost += 1; // keep emission steps advancing virtual time
                let (c, drained) = self.outbox.flush(ctx);
                cost += c;
                if drained {
                    Step::yielded(cost)
                } else {
                    Step::blocked(cost)
                }
            }
            PhaseState::Done => {
                self.outbox.close(ctx);
                Step::done(cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_sort(rows: Vec<Vec<Value>>, schema: Arc<Schema>, keys: Vec<usize>) -> Vec<Vec<Value>> {
        let mut tb = TableBuilder::new("t", schema.clone());
        for r in &rows {
            tb.push_row(r);
        }
        let table = tb.finish();
        let mut sim = Simulator::new(2);
        let (tx1, rx1) = channel::bounded(4);
        let (tx2, rx2) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![tx1], 0.0),
            )),
        );
        sim.spawn(
            "sort",
            Box::new(SortTask::new(
                rx1,
                schema,
                keys,
                OpCost::default(),
                Fanout::new(vec![tx2], 0.0),
            )),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rx2,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        let out = out.borrow().clone();
        out
    }

    #[test]
    fn sorts_ints_ascending() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = [5i64, 3, 9, 1, 7, 1]
            .iter()
            .map(|&v| vec![Value::Int(v)])
            .collect();
        let got = run_sort(rows, schema, vec![0]);
        let keys: Vec<i64> = got.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn multi_key_sort_major_first() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Str(2)),
            Field::new("b", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Str("y".into()), Value::Int(1)],
            vec![Value::Str("x".into()), Value::Int(2)],
            vec![Value::Str("x".into()), Value::Int(1)],
            vec![Value::Str("y".into()), Value::Int(0)],
        ];
        let got = run_sort(rows, schema, vec![0, 1]);
        assert_eq!(
            got,
            vec![
                vec![Value::Str("x".into()), Value::Int(1)],
                vec![Value::Str("x".into()), Value::Int(2)],
                vec![Value::Str("y".into()), Value::Int(0)],
                vec![Value::Str("y".into()), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn large_sort_spans_many_pages() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = (0..5000).rev().map(|v| vec![Value::Int(v)]).collect();
        let got = run_sort(rows, schema, vec![0]);
        assert_eq!(got.len(), 5000);
        assert!(got.windows(2).all(|w| w[0][0].as_int() <= w[1][0].as_int()));
    }

    #[test]
    fn empty_input_sorts_to_empty() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        assert!(run_sort(vec![], schema, vec![0]).is_empty());
    }

    #[test]
    fn sort_is_stable_for_equal_keys() {
        // Rust's sort_by is stable; rows with equal keys keep arrival
        // order (matters for reference-executor equivalence).
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("seq", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i % 3), Value::Int(i)])
            .collect();
        let got = run_sort(rows, schema, vec![0]);
        for w in got.windows(2) {
            if w[0][0] == w[1][0] {
                assert!(w[0][1].as_int() < w[1][1].as_int());
            }
        }
    }
}
