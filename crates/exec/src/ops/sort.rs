//! Full sort (stop-&-go): materializes its input, sorts, then streams
//! the result — the canonical blocking operator of the paper's
//! Section 5.2 phase decomposition.
//!
//! Key extraction is vectorized: buffered pages are kept whole and key
//! columns are gathered page-at-a-time. Keys totalling ≤ 8 bytes take
//! the packed-`u64` fast path ([`PackedKeySpec`], order-preserving —
//! the sort compares machine words); wider keys fall back to per-row
//! [`KeyVal`] tuples. Either way the sort orders a `(page, row)`
//! permutation and emission copies raw rows straight out of the
//! buffered pages — no per-row boxed copies on intake.
//!
//! # Out-of-core operation
//!
//! The buffered input is charged to the query's
//! [`MemoryBroker`](crate::MemoryBroker). When a grant is refused the
//! task **spills**: it sorts the buffered batch, writes it to a
//! [`SpillFile`] as a sorted run, and releases the memory. After input
//! ends the runs are k-way merged — cascaded first if there are more
//! runs than the budget allows open cursors — reusing the same packed
//! keys for the merge comparisons. Runs are chronological and the
//! merge breaks key ties toward the earliest run, so spilled output is
//! *identical*, row for row, to the in-memory stable sort. With an
//! unbounded broker (the default) no spilling occurs and behaviour is
//! unchanged.

use crate::cost::OpCost;
use crate::error::ExecError;
use crate::memory::SpillContext;
use crate::ops::sort_key::{KeyScratch, PackedKeySpec};
use crate::ops::{key_of, Fanout, KeyVal, Outbox};
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx, VTime};
use cordoba_storage::spill::{SpillFile, SpillReader, SpillWriter};
use cordoba_storage::{Page, PageBuilder, Schema, PAGE_SIZE};
use std::sync::Arc;

/// Per-row sort keys, packed when they fit a machine word.
enum Keys {
    Packed {
        spec: PackedKeySpec,
        scratch: KeyScratch,
        keys: Vec<u64>,
    },
    General(Vec<Vec<KeyVal>>),
}

enum PhaseState {
    Consuming,
    Emitting { order: Vec<u32>, next: usize },
    Merging(KWayMerge),
    Done,
}

/// Sort task (ascending by the given key columns, major first).
pub struct SortTask {
    rx: Receiver<Arc<Page>>,
    key_cols: Vec<usize>,
    cost: OpCost,
    schema: Arc<Schema>,
    /// Buffered input pages (rows are emitted from here by reference).
    pages: Vec<Arc<Page>>,
    /// `(page, row)` of each buffered row, aligned with the keys.
    locs: Vec<(u32, u32)>,
    keys: Keys,
    state: PhaseState,
    outbox: Outbox,
    emit_batch_rows: usize,
    spill: SpillContext,
    /// Bytes currently granted for the buffered pages.
    granted: usize,
    /// Sorted runs spilled so far, in arrival (chronological) order.
    runs: Vec<SpillFile>,
}

impl SortTask {
    /// Creates a sort over pages of `schema`, erring when a key column
    /// is out of range. `spill` supplies the query's memory account and
    /// spill policy; [`SpillContext::unbounded`] reproduces the fully
    /// in-memory behaviour.
    pub fn new(
        rx: Receiver<Arc<Page>>,
        schema: Arc<Schema>,
        keys: Vec<usize>,
        cost: OpCost,
        fanout: Fanout,
        spill: SpillContext,
    ) -> Result<Self, ExecError> {
        for &k in &keys {
            if k >= schema.len() {
                return Err(crate::plan::column_range_error("sort key", k, &schema));
            }
        }
        let emit_batch_rows = (DEFAULT_EMIT_BYTES / schema.row_width()).max(1);
        let keys_state = match PackedKeySpec::try_new(&schema, &keys) {
            Some(spec) => Keys::Packed {
                spec,
                scratch: KeyScratch::default(),
                keys: Vec::new(),
            },
            None => Keys::General(Vec::new()),
        };
        Ok(Self {
            rx,
            key_cols: keys,
            cost,
            schema,
            pages: Vec::new(),
            locs: Vec::new(),
            keys: keys_state,
            state: PhaseState::Consuming,
            outbox: Outbox::new(fanout),
            emit_batch_rows,
            spill,
            granted: 0,
            runs: Vec::new(),
        })
    }

    /// Buffers one page: record row locations and extract its keys.
    fn consume_page(&mut self, page: Arc<Page>) {
        let page_idx = self.pages.len() as u32;
        self.locs
            .extend((0..page.rows()).map(|r| (page_idx, r as u32)));
        match &mut self.keys {
            Keys::Packed {
                spec,
                scratch,
                keys,
            } => spec.extend_keys(&page, scratch, keys),
            Keys::General(keys) => {
                keys.extend(page.tuples().map(|t| key_of(&t, &self.key_cols)));
            }
        }
        self.pages.push(page);
    }

    /// Computes the sorted row permutation (stable: equal keys keep
    /// arrival order, matching the reference executor).
    fn sorted_order(&mut self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.locs.len() as u32).collect();
        match &self.keys {
            Keys::Packed { keys, .. } => order.sort_by_key(|&r| keys[r as usize]),
            Keys::General(keys) => {
                order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
            }
        }
        // The keys are no longer needed; free them before emission.
        match &mut self.keys {
            Keys::Packed { keys, .. } => {
                keys.clear();
                keys.shrink_to_fit();
            }
            Keys::General(keys) => {
                keys.clear();
                keys.shrink_to_fit();
            }
        }
        order
    }

    /// Sorts the buffered batch, writes it out as one run, and frees
    /// its memory. Returns the number of rows spilled.
    fn spill_run(&mut self) -> Result<usize, ExecError> {
        if self.locs.is_empty() {
            return Ok(0);
        }
        let order = self.sorted_order();
        let mut writer = SpillWriter::create(&self.spill.dir, self.schema.clone())
            .map_err(|e| ExecError::spill("sort", e))?;
        let mut builder = PageBuilder::new(self.schema.clone());
        for &idx in &order {
            let (p, r) = self.locs[idx as usize];
            let raw = self.pages[p as usize].tuple(r as usize).raw();
            if !builder.push_raw(raw) {
                writer
                    .write_page(&builder.finish_and_reset())
                    .map_err(|e| ExecError::spill("sort", e))?;
                assert!(builder.push_raw(raw));
            }
        }
        if !builder.is_empty() {
            writer
                .write_page(&builder.finish_and_reset())
                .map_err(|e| ExecError::spill("sort", e))?;
        }
        self.runs
            .push(writer.finish().map_err(|e| ExecError::spill("sort", e))?);
        self.pages.clear();
        self.locs.clear();
        self.spill.broker.release(self.granted);
        self.granted = 0;
        Ok(order.len())
    }

    /// How many run cursors the budget allows open at once during a
    /// merge (each holds one page; two pages are reserved for the
    /// output builder and slack).
    fn merge_fanout(&self) -> usize {
        match self.spill.broker.budget() {
            Some(b) => ((b / PAGE_SIZE).saturating_sub(2)).clamp(2, MAX_MERGE_FANOUT),
            None => MAX_MERGE_FANOUT,
        }
    }

    /// Merges the first `k` runs into one, reinserted at the front so
    /// the run list stays chronological (ties still resolve toward the
    /// earliest-arrived row).
    fn merge_front_runs(&mut self, k: usize) -> Result<usize, ExecError> {
        let rest = self.runs.split_off(k);
        let front = std::mem::replace(&mut self.runs, rest);
        let mut merge = KWayMerge::open(front, &mut self.keys, &self.key_cols, &self.spill)?;
        let mut writer = SpillWriter::create(&self.spill.dir, self.schema.clone())
            .map_err(|e| ExecError::spill("sort", e))?;
        let mut builder = PageBuilder::new(self.schema.clone());
        let mut rows = 0usize;
        while let Some(i) = merge.min_cursor(&self.keys) {
            let cursor = &merge.cursors[i];
            let raw = cursor
                .page
                .as_ref()
                // lint: allow(min_cursor only returns cursors holding a page)
                .expect("live cursor")
                .tuple(cursor.row)
                .raw();
            if !builder.push_raw(raw) {
                writer
                    .write_page(&builder.finish_and_reset())
                    .map_err(|e| ExecError::spill("sort", e))?;
                assert!(builder.push_raw(raw));
            }
            rows += 1;
            merge.advance(i, &mut self.keys, &self.key_cols, &self.spill)?;
        }
        if !builder.is_empty() {
            writer
                .write_page(&builder.finish_and_reset())
                .map_err(|e| ExecError::spill("sort", e))?;
        }
        merge.release_all(&self.spill);
        let merged = writer.finish().map_err(|e| ExecError::spill("sort", e))?;
        self.runs.insert(0, merged);
        Ok(rows)
    }

    /// Transition from consuming to the streaming merge: spill the
    /// final batch, cascade-merge until the run count fits the budget's
    /// cursor fan-in, then open the final merge.
    fn begin_merge(&mut self) -> Result<(VTime, KWayMerge), ExecError> {
        let spilled = self.spill_run()?;
        let mut cost = self.cost.input_cost(spilled);
        let fanout = self.merge_fanout();
        while self.runs.len() > fanout {
            let k = fanout.min(self.runs.len());
            let merged = self.merge_front_runs(k)?;
            cost += self.cost.input_cost(merged);
        }
        let runs = std::mem::take(&mut self.runs);
        let merge = KWayMerge::open(runs, &mut self.keys, &self.key_cols, &self.spill)?;
        Ok((cost, merge))
    }

    /// One output step of the final merge: emit up to a batch of rows.
    /// Returns the virtual cost and whether the merge is finished.
    fn merge_step(&mut self) -> Result<(VTime, bool), ExecError> {
        let PhaseState::Merging(merge) = &mut self.state else {
            // lint: allow(callers dispatch on phase before calling merge_step)
            unreachable!("merge_step outside Merging");
        };
        let mut builder = PageBuilder::new(self.schema.clone());
        let mut emitted = 0usize;
        while emitted < self.emit_batch_rows {
            let Some(i) = merge.min_cursor(&self.keys) else {
                break;
            };
            let cursor = &merge.cursors[i];
            let raw = cursor
                .page
                .as_ref()
                // lint: allow(min_cursor only returns cursors holding a page)
                .expect("live cursor")
                .tuple(cursor.row)
                .raw();
            if !builder.push_raw(raw) {
                self.outbox.push(builder.finish_and_reset());
                assert!(builder.push_raw(raw));
            }
            emitted += 1;
            merge.advance(i, &mut self.keys, &self.key_cols, &self.spill)?;
        }
        if !builder.is_empty() {
            self.outbox.push(builder.finish_and_reset());
        }
        let finished = merge.min_cursor(&self.keys).is_none();
        if finished {
            merge.release_all(&self.spill);
        }
        Ok((self.cost.input_cost(emitted).max(1), finished))
    }

    /// Aborts the query: records the fault, cancels the input, frees
    /// buffered state and closes the output without the drain check.
    fn fail(&mut self, ctx: &mut TaskCtx<'_>, err: ExecError) -> Step {
        self.spill.fault.set(err);
        self.rx.close(ctx);
        self.pages.clear();
        self.locs.clear();
        self.runs.clear();
        self.spill.broker.release(self.granted);
        self.granted = 0;
        if let PhaseState::Merging(merge) = &mut self.state {
            merge.release_all(&self.spill);
        }
        self.outbox.abandon();
        self.outbox.close(ctx);
        self.state = PhaseState::Done;
        Step::done(1)
    }
}

/// Bytes emitted per step during the output phase (≈4 pages).
const DEFAULT_EMIT_BYTES: usize = 16 * 1024;

/// Cursor fan-in cap for one merge pass.
const MAX_MERGE_FANOUT: usize = 64;

/// A read cursor over one sorted run: the current page, the row within
/// it, and that page's extracted sort keys.
struct RunCursor {
    reader: SpillReader,
    page: Option<Arc<Page>>,
    row: usize,
    /// Packed keys for the current page (packed mode).
    packed: Vec<u64>,
    /// Key of the current row (general mode).
    gkey: Vec<KeyVal>,
    /// Bytes granted for the current page.
    granted: usize,
}

impl RunCursor {
    /// Loads the next page of the run (releasing the previous page's
    /// grant) and extracts its keys.
    fn load_next(
        &mut self,
        keys: &mut Keys,
        key_cols: &[usize],
        spill: &SpillContext,
    ) -> Result<(), ExecError> {
        spill.broker.release(self.granted);
        self.granted = 0;
        self.page = self
            .reader
            .next_page()
            .map_err(|e| ExecError::spill("sort", e))?;
        self.row = 0;
        if let Some(page) = &self.page {
            self.granted = page.byte_len();
            spill.broker.grant(self.granted);
            match keys {
                Keys::Packed { spec, scratch, .. } => {
                    self.packed.clear();
                    spec.extend_keys(page, scratch, &mut self.packed);
                }
                Keys::General(_) => self.gkey = key_of(&page.tuple(0), key_cols),
            }
        }
        Ok(())
    }
}

/// A k-way merge over sorted runs. Cursor order is run (arrival)
/// order; [`KWayMerge::min_cursor`] resolves equal keys toward the
/// lowest cursor index, which makes the merged output exactly the
/// stable in-memory sort.
struct KWayMerge {
    cursors: Vec<RunCursor>,
}

impl KWayMerge {
    /// Opens every run and primes the first page of each.
    fn open(
        runs: Vec<SpillFile>,
        keys: &mut Keys,
        key_cols: &[usize],
        spill: &SpillContext,
    ) -> Result<Self, ExecError> {
        let mut cursors = Vec::with_capacity(runs.len());
        for run in runs {
            let mut cursor = RunCursor {
                reader: run.into_reader().map_err(|e| ExecError::spill("sort", e))?,
                page: None,
                row: 0,
                packed: Vec::new(),
                gkey: Vec::new(),
                granted: 0,
            };
            cursor.load_next(keys, key_cols, spill)?;
            cursors.push(cursor);
        }
        Ok(KWayMerge { cursors })
    }

    /// Index of the cursor holding the smallest current key; ties go to
    /// the lowest index (earliest run). `None` when every run is
    /// exhausted.
    fn min_cursor(&self, keys: &Keys) -> Option<usize> {
        let mut best: Option<usize> = None;
        match keys {
            Keys::Packed { .. } => {
                let mut best_key = 0u64;
                for (i, c) in self.cursors.iter().enumerate() {
                    if c.page.is_none() {
                        continue;
                    }
                    let k = c.packed[c.row];
                    if best.is_none() || k < best_key {
                        best = Some(i);
                        best_key = k;
                    }
                }
            }
            Keys::General(_) => {
                for (i, c) in self.cursors.iter().enumerate() {
                    if c.page.is_none() {
                        continue;
                    }
                    if best.is_none_or(|b| c.gkey < self.cursors[b].gkey) {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Steps cursor `i` past its current row.
    fn advance(
        &mut self,
        i: usize,
        keys: &mut Keys,
        key_cols: &[usize],
        spill: &SpillContext,
    ) -> Result<(), ExecError> {
        let cursor = &mut self.cursors[i];
        let rows = cursor.page.as_ref().map_or(0, |p| p.rows());
        if cursor.row + 1 < rows {
            cursor.row += 1;
            if let Keys::General(_) = keys {
                // lint: allow(rows > 0 above implies the page is present)
                let page = cursor.page.as_ref().expect("live cursor");
                cursor.gkey = key_of(&page.tuple(cursor.row), key_cols);
            }
            Ok(())
        } else {
            cursor.load_next(keys, key_cols, spill)
        }
    }

    /// Returns every cursor's page grant to the broker.
    fn release_all(&mut self, spill: &SpillContext) {
        for cursor in &mut self.cursors {
            spill.broker.release(cursor.granted);
            cursor.granted = 0;
            cursor.page = None;
        }
    }
}

impl Task for SortTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        match &mut self.state {
            PhaseState::Consuming => match self.rx.try_recv(ctx) {
                Recv::Value(page) => {
                    if **page.schema() != *self.schema {
                        return self.fail(
                            ctx,
                            ExecError::InputPageMismatch {
                                op: "sort",
                                detail: format!(
                                    "expected {} columns / {} B rows, got {} columns / {} B rows",
                                    self.schema.len(),
                                    self.schema.row_width(),
                                    page.schema().len(),
                                    page.schema().row_width()
                                ),
                            },
                        );
                    }
                    let n = page.rows();
                    cost += self.cost.input_cost(n);
                    ctx.add_progress(n as f64);
                    let bytes = page.byte_len();
                    if !self.spill.broker.try_grant(bytes) {
                        // Over budget: spill the buffered batch as a
                        // sorted run, then retry (forcing if a single
                        // page alone exceeds the budget).
                        match self.spill_run() {
                            Ok(spilled) => cost += self.cost.input_cost(spilled),
                            Err(err) => return self.fail(ctx, err),
                        }
                        if !self.spill.broker.try_grant(bytes) {
                            self.spill.broker.grant(bytes);
                        }
                    }
                    self.granted += bytes;
                    self.consume_page(page);
                    Step::yielded(cost)
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    if self.runs.is_empty() {
                        // Fully in-memory: the actual sort. Charged
                        // linearly per tuple to keep the model's
                        // per-unit-progress cost structure; the log
                        // factor is ~constant across the paper's scales.
                        let order = self.sorted_order();
                        cost += self.cost.input_cost(order.len());
                        self.state = PhaseState::Emitting { order, next: 0 };
                        Step::yielded(cost.max(1))
                    } else {
                        match self.begin_merge() {
                            Ok((c, merge)) => {
                                cost += c;
                                self.state = PhaseState::Merging(merge);
                                Step::yielded(cost.max(1))
                            }
                            Err(err) => self.fail(ctx, err),
                        }
                    }
                }
            },
            PhaseState::Emitting { order, next } => {
                let mut builder = PageBuilder::new(self.schema.clone());
                let end = (*next + self.emit_batch_rows).min(order.len());
                for &idx in &order[*next..end] {
                    let (p, r) = self.locs[idx as usize];
                    let raw = self.pages[p as usize].tuple(r as usize).raw();
                    if !builder.push_raw(raw) {
                        self.outbox.push(builder.finish_and_reset());
                        assert!(builder.push_raw(raw));
                    }
                }
                *next = end;
                if !builder.is_empty() {
                    self.outbox.push(builder.finish_and_reset());
                }
                let finished = *next >= order.len();
                if finished {
                    self.pages.clear();
                    self.locs.clear();
                    self.spill.broker.release(self.granted);
                    self.granted = 0;
                    self.state = PhaseState::Done;
                }
                cost += 1; // keep emission steps advancing virtual time
                let (c, drained) = self.outbox.flush(ctx);
                cost += c;
                if drained {
                    Step::yielded(cost)
                } else {
                    Step::blocked(cost)
                }
            }
            PhaseState::Merging(_) => match self.merge_step() {
                Ok((c, finished)) => {
                    cost += c;
                    if finished {
                        self.state = PhaseState::Done;
                    }
                    let (c, drained) = self.outbox.flush(ctx);
                    cost += c;
                    if drained {
                        Step::yielded(cost)
                    } else {
                        Step::blocked(cost)
                    }
                }
                Err(err) => self.fail(ctx, err),
            },
            PhaseState::Done => {
                self.outbox.close(ctx);
                Step::done(cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBroker;
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_sort_with(
        rows: Vec<Vec<Value>>,
        schema: Arc<Schema>,
        keys: Vec<usize>,
        spill: SpillContext,
    ) -> Vec<Vec<Value>> {
        let mut tb = TableBuilder::new("t", schema.clone());
        for r in &rows {
            tb.push_row(r);
        }
        let table = tb.finish();
        let mut sim = Simulator::new(2);
        let (tx1, rx1) = channel::bounded(4);
        let (tx2, rx2) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![tx1], 0.0),
            )),
        );
        let fault = spill.fault.clone();
        sim.spawn(
            "sort",
            Box::new(
                SortTask::new(
                    rx1,
                    schema,
                    keys,
                    OpCost::default(),
                    Fanout::new(vec![tx2], 0.0),
                    spill,
                )
                .expect("valid sort keys"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rx2,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        assert_eq!(fault.get(), None, "sort must not fault");
        let out = out.borrow().clone();
        out
    }

    fn run_sort(rows: Vec<Vec<Value>>, schema: Arc<Schema>, keys: Vec<usize>) -> Vec<Vec<Value>> {
        run_sort_with(rows, schema, keys, SpillContext::unbounded())
    }

    #[test]
    fn sorts_ints_ascending() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = [5i64, 3, 9, 1, 7, 1]
            .iter()
            .map(|&v| vec![Value::Int(v)])
            .collect();
        let got = run_sort(rows, schema, vec![0]);
        let keys: Vec<i64> = got.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn negative_keys_sort_through_packed_path() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = [5i64, -3, 0, i64::MIN, i64::MAX, -3]
            .iter()
            .map(|&v| vec![Value::Int(v)])
            .collect();
        let got = run_sort(rows, schema, vec![0]);
        let keys: Vec<i64> = got.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![i64::MIN, -3, -3, 0, 5, i64::MAX]);
    }

    #[test]
    fn multi_key_sort_major_first() {
        // Str(2) + Int = 10 bytes: exercises the general (wide-key)
        // fallback path.
        let schema = Schema::new(vec![
            Field::new("a", DataType::Str(2)),
            Field::new("b", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Str("y".into()), Value::Int(1)],
            vec![Value::Str("x".into()), Value::Int(2)],
            vec![Value::Str("x".into()), Value::Int(1)],
            vec![Value::Str("y".into()), Value::Int(0)],
        ];
        let got = run_sort(rows, schema, vec![0, 1]);
        assert_eq!(
            got,
            vec![
                vec![Value::Str("x".into()), Value::Int(1)],
                vec![Value::Str("x".into()), Value::Int(2)],
                vec![Value::Str("y".into()), Value::Int(0)],
                vec![Value::Str("y".into()), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn packed_composite_key_sorts_major_first() {
        // Str(2) + Date = 6 bytes: packed composite key.
        let schema = Schema::new(vec![
            Field::new("a", DataType::Str(2)),
            Field::new("d", DataType::Date),
        ]);
        let rows = vec![
            vec![
                Value::Str("y".into()),
                Value::Date(cordoba_storage::Date(1)),
            ],
            vec![
                Value::Str("x".into()),
                Value::Date(cordoba_storage::Date(2)),
            ],
            vec![
                Value::Str("x".into()),
                Value::Date(cordoba_storage::Date(-1)),
            ],
            vec![Value::Str("".into()), Value::Date(cordoba_storage::Date(9))],
        ];
        let got = run_sort(rows, schema, vec![0, 1]);
        assert_eq!(
            got,
            vec![
                vec![Value::Str("".into()), Value::Date(cordoba_storage::Date(9))],
                vec![
                    Value::Str("x".into()),
                    Value::Date(cordoba_storage::Date(-1))
                ],
                vec![
                    Value::Str("x".into()),
                    Value::Date(cordoba_storage::Date(2))
                ],
                vec![
                    Value::Str("y".into()),
                    Value::Date(cordoba_storage::Date(1))
                ],
            ]
        );
    }

    #[test]
    fn large_sort_spans_many_pages() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = (0..5000).rev().map(|v| vec![Value::Int(v)]).collect();
        let got = run_sort(rows, schema, vec![0]);
        assert_eq!(got.len(), 5000);
        assert!(got.windows(2).all(|w| w[0][0].as_int() <= w[1][0].as_int()));
    }

    #[test]
    fn empty_input_sorts_to_empty() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        assert!(run_sort(vec![], schema, vec![0]).is_empty());
    }

    #[test]
    fn sort_is_stable_for_equal_keys() {
        // The permutation sort is stable; rows with equal keys keep
        // arrival order (matters for reference-executor equivalence).
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("seq", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i % 3), Value::Int(i)])
            .collect();
        let got = run_sort(rows, schema, vec![0]);
        for w in got.windows(2) {
            if w[0][0] == w[1][0] {
                assert!(w[0][1].as_int() < w[1][1].as_int());
            }
        }
    }

    #[test]
    fn out_of_range_key_errors_at_construction() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let (_tx, rx) = channel::bounded::<Arc<Page>>(1);
        let err = SortTask::new(
            rx,
            schema,
            vec![7],
            OpCost::default(),
            Fanout::new(vec![], 0.0),
            SpillContext::unbounded(),
        )
        .err()
        .expect("constructor must reject");
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn tiny_budget_spills_and_matches_in_memory_sort() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("seq", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..4000)
            .map(|i| vec![Value::Int((i * 7919) % 50), Value::Int(i)])
            .collect();
        let want = run_sort(rows.clone(), schema.clone(), vec![0]);

        // Budget of 4 pages vs ~16 pages of input: several spilled runs.
        let spill = SpillContext::with_budget(4 * PAGE_SIZE);
        let broker = spill.broker.clone();
        let got = run_sort_with(rows, schema, vec![0], spill);
        assert!(broker.peak() > 0, "broker must have tracked memory");
        assert_eq!(broker.used(), 0, "all grants released at completion");
        assert_eq!(got, want, "spilled sort must equal in-memory stable sort");
    }

    #[test]
    fn one_page_budget_forces_cascaded_merges() {
        // merge_fanout clamps to 2, and ~16 runs of one page each force
        // several cascade passes before the final merge.
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("seq", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..4000)
            .map(|i| vec![Value::Int(((i * 31) % 11) - 5), Value::Int(i)])
            .collect();
        let want = run_sort(rows.clone(), schema.clone(), vec![0]);
        let got = run_sort_with(rows, schema, vec![0], SpillContext::with_budget(PAGE_SIZE));
        assert_eq!(got, want);
    }

    #[test]
    fn tiny_budget_spills_wide_keys_through_general_path() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Str(4)),
            Field::new("b", DataType::Int),
            Field::new("seq", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..2000)
            .map(|i| {
                vec![
                    Value::Str(format!("s{:02}", i % 13)),
                    Value::Int((i * 17) % 7),
                    Value::Int(i),
                ]
            })
            .collect();
        let want = run_sort(rows.clone(), schema.clone(), vec![0, 1]);
        let got = run_sort_with(
            rows,
            schema,
            vec![0, 1],
            SpillContext::with_budget(2 * PAGE_SIZE),
        );
        assert_eq!(got, want);
    }

    #[test]
    fn mismatched_page_schema_faults_instead_of_panicking() {
        let sort_schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let wrong = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let mut tb = TableBuilder::new("w", wrong.clone());
        tb.push_row(&[Value::Int(1), Value::Int(2)]);
        let table = tb.finish();

        let mut sim = Simulator::new(2);
        let (tx1, rx1) = channel::bounded(4);
        let (tx2, rx2) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![tx1], 0.0),
            )),
        );
        let spill = SpillContext::unbounded();
        let fault = spill.fault.clone();
        sim.spawn(
            "sort",
            Box::new(
                SortTask::new(
                    rx1,
                    sort_schema,
                    vec![0],
                    OpCost::default(),
                    Fanout::new(vec![tx2], 0.0),
                    spill,
                )
                .expect("valid keys"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rx2,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        assert!(
            matches!(
                fault.get(),
                Some(ExecError::InputPageMismatch { op: "sort", .. })
            ),
            "got {:?}",
            fault.get()
        );
        assert!(out.borrow().is_empty());
    }

    #[test]
    fn spill_io_error_faults_the_query() {
        // Point the spill dir at a path that cannot be created (a file
        // stands where the directory should go).
        let blocker =
            std::env::temp_dir().join(format!("cordoba-sort-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").expect("create blocker");

        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut tb = TableBuilder::new("t", schema.clone());
        for i in 0..2000 {
            tb.push_row(&[Value::Int(i)]);
        }
        let table = tb.finish();

        let mut sim = Simulator::new(2);
        let (tx1, rx1) = channel::bounded(4);
        let (tx2, rx2) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![tx1], 0.0),
            )),
        );
        let mut spill = SpillContext::with_budget(PAGE_SIZE);
        spill.dir = blocker.clone();
        let fault = spill.fault.clone();
        sim.spawn(
            "sort",
            Box::new(
                SortTask::new(
                    rx1,
                    schema,
                    vec![0],
                    OpCost::default(),
                    Fanout::new(vec![tx2], 0.0),
                    spill,
                )
                .expect("valid keys"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rx2,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        assert!(
            matches!(fault.get(), Some(ExecError::Spill { op: "sort", .. })),
            "got {:?}",
            fault.get()
        );
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn spilled_sort_peak_stays_near_budget() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = (0..20_000).rev().map(|v| vec![Value::Int(v)]).collect();
        // ~156 KiB of input against a 32 KiB budget (≥ 4× over).
        let budget = 8 * PAGE_SIZE;
        let spill = SpillContext {
            broker: MemoryBroker::with_budget(budget),
            ..SpillContext::unbounded()
        };
        let broker = spill.broker.clone();
        let got = run_sort_with(rows, schema, vec![0], spill);
        assert_eq!(got.len(), 20_000);
        assert!(
            broker.peak() <= budget + budget / 4,
            "peak {} exceeds 1.25 × budget {}",
            broker.peak(),
            budget
        );
    }
}
