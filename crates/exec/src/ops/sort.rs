//! Full sort (stop-&-go): materializes its input, sorts, then streams
//! the result — the canonical blocking operator of the paper's
//! Section 5.2 phase decomposition.
//!
//! Key extraction is vectorized: buffered pages are kept whole and key
//! columns are gathered page-at-a-time. Keys totalling ≤ 8 bytes take
//! the packed-`u64` fast path ([`PackedKeySpec`], order-preserving —
//! the sort compares machine words); wider keys fall back to per-row
//! [`KeyVal`] tuples. Either way the sort orders a `(page, row)`
//! permutation and emission copies raw rows straight out of the
//! buffered pages — no per-row boxed copies on intake.

use crate::cost::OpCost;
use crate::error::ExecError;
use crate::ops::sort_key::{KeyScratch, PackedKeySpec};
use crate::ops::{key_of, Fanout, KeyVal, Outbox};
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, PageBuilder, Schema};
use std::sync::Arc;

/// Per-row sort keys, packed when they fit a machine word.
enum Keys {
    Packed {
        spec: PackedKeySpec,
        scratch: KeyScratch,
        keys: Vec<u64>,
    },
    General(Vec<Vec<KeyVal>>),
}

enum PhaseState {
    Consuming,
    Emitting { order: Vec<u32>, next: usize },
    Done,
}

/// Sort task (ascending by the given key columns, major first).
pub struct SortTask {
    rx: Receiver<Arc<Page>>,
    key_cols: Vec<usize>,
    cost: OpCost,
    schema: Arc<Schema>,
    /// Buffered input pages (rows are emitted from here by reference).
    pages: Vec<Arc<Page>>,
    /// `(page, row)` of each buffered row, aligned with the keys.
    locs: Vec<(u32, u32)>,
    keys: Keys,
    state: PhaseState,
    outbox: Outbox,
    emit_batch_rows: usize,
}

impl SortTask {
    /// Creates a sort over pages of `schema`, erring when a key column
    /// is out of range.
    pub fn new(
        rx: Receiver<Arc<Page>>,
        schema: Arc<Schema>,
        keys: Vec<usize>,
        cost: OpCost,
        fanout: Fanout,
    ) -> Result<Self, ExecError> {
        for &k in &keys {
            if k >= schema.len() {
                return Err(crate::plan::column_range_error("sort key", k, &schema));
            }
        }
        let emit_batch_rows = (DEFAULT_EMIT_BYTES / schema.row_width()).max(1);
        let keys_state = match PackedKeySpec::try_new(&schema, &keys) {
            Some(spec) => Keys::Packed {
                spec,
                scratch: KeyScratch::default(),
                keys: Vec::new(),
            },
            None => Keys::General(Vec::new()),
        };
        Ok(Self {
            rx,
            key_cols: keys,
            cost,
            schema,
            pages: Vec::new(),
            locs: Vec::new(),
            keys: keys_state,
            state: PhaseState::Consuming,
            outbox: Outbox::new(fanout),
            emit_batch_rows,
        })
    }

    /// Buffers one page: record row locations and extract its keys.
    fn consume_page(&mut self, page: Arc<Page>) {
        let page_idx = self.pages.len() as u32;
        self.locs
            .extend((0..page.rows()).map(|r| (page_idx, r as u32)));
        match &mut self.keys {
            Keys::Packed {
                spec,
                scratch,
                keys,
            } => spec.extend_keys(&page, scratch, keys),
            Keys::General(keys) => {
                keys.extend(page.tuples().map(|t| key_of(&t, &self.key_cols)));
            }
        }
        self.pages.push(page);
    }

    /// Computes the sorted row permutation (stable: equal keys keep
    /// arrival order, matching the reference executor).
    fn sorted_order(&mut self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.locs.len() as u32).collect();
        match &self.keys {
            Keys::Packed { keys, .. } => order.sort_by_key(|&r| keys[r as usize]),
            Keys::General(keys) => {
                order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
            }
        }
        // The keys are no longer needed; free them before emission.
        match &mut self.keys {
            Keys::Packed { keys, .. } => {
                keys.clear();
                keys.shrink_to_fit();
            }
            Keys::General(keys) => {
                keys.clear();
                keys.shrink_to_fit();
            }
        }
        order
    }
}

/// Bytes emitted per step during the output phase (≈4 pages).
const DEFAULT_EMIT_BYTES: usize = 16 * 1024;

impl Task for SortTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        match &mut self.state {
            PhaseState::Consuming => match self.rx.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    cost += self.cost.input_cost(n);
                    ctx.add_progress(n as f64);
                    self.consume_page(page);
                    Step::yielded(cost)
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    // The actual sort. Charged linearly per tuple to keep
                    // the model's per-unit-progress cost structure; the
                    // log factor is ~constant across the paper's scales.
                    let order = self.sorted_order();
                    cost += self.cost.input_cost(order.len());
                    self.state = PhaseState::Emitting { order, next: 0 };
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::Emitting { order, next } => {
                let mut builder = PageBuilder::new(self.schema.clone());
                let end = (*next + self.emit_batch_rows).min(order.len());
                for &idx in &order[*next..end] {
                    let (p, r) = self.locs[idx as usize];
                    let raw = self.pages[p as usize].tuple(r as usize).raw();
                    if !builder.push_raw(raw) {
                        self.outbox.push(builder.finish_and_reset());
                        assert!(builder.push_raw(raw));
                    }
                }
                *next = end;
                if !builder.is_empty() {
                    self.outbox.push(builder.finish_and_reset());
                }
                let finished = *next >= order.len();
                if finished {
                    self.pages.clear();
                    self.locs.clear();
                    self.state = PhaseState::Done;
                }
                cost += 1; // keep emission steps advancing virtual time
                let (c, drained) = self.outbox.flush(ctx);
                cost += c;
                if drained {
                    Step::yielded(cost)
                } else {
                    Step::blocked(cost)
                }
            }
            PhaseState::Done => {
                self.outbox.close(ctx);
                Step::done(cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_sort(rows: Vec<Vec<Value>>, schema: Arc<Schema>, keys: Vec<usize>) -> Vec<Vec<Value>> {
        let mut tb = TableBuilder::new("t", schema.clone());
        for r in &rows {
            tb.push_row(r);
        }
        let table = tb.finish();
        let mut sim = Simulator::new(2);
        let (tx1, rx1) = channel::bounded(4);
        let (tx2, rx2) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![tx1], 0.0),
            )),
        );
        sim.spawn(
            "sort",
            Box::new(
                SortTask::new(
                    rx1,
                    schema,
                    keys,
                    OpCost::default(),
                    Fanout::new(vec![tx2], 0.0),
                )
                .expect("valid sort keys"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rx2,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        let out = out.borrow().clone();
        out
    }

    #[test]
    fn sorts_ints_ascending() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = [5i64, 3, 9, 1, 7, 1]
            .iter()
            .map(|&v| vec![Value::Int(v)])
            .collect();
        let got = run_sort(rows, schema, vec![0]);
        let keys: Vec<i64> = got.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn negative_keys_sort_through_packed_path() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = [5i64, -3, 0, i64::MIN, i64::MAX, -3]
            .iter()
            .map(|&v| vec![Value::Int(v)])
            .collect();
        let got = run_sort(rows, schema, vec![0]);
        let keys: Vec<i64> = got.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![i64::MIN, -3, -3, 0, 5, i64::MAX]);
    }

    #[test]
    fn multi_key_sort_major_first() {
        // Str(2) + Int = 10 bytes: exercises the general (wide-key)
        // fallback path.
        let schema = Schema::new(vec![
            Field::new("a", DataType::Str(2)),
            Field::new("b", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Str("y".into()), Value::Int(1)],
            vec![Value::Str("x".into()), Value::Int(2)],
            vec![Value::Str("x".into()), Value::Int(1)],
            vec![Value::Str("y".into()), Value::Int(0)],
        ];
        let got = run_sort(rows, schema, vec![0, 1]);
        assert_eq!(
            got,
            vec![
                vec![Value::Str("x".into()), Value::Int(1)],
                vec![Value::Str("x".into()), Value::Int(2)],
                vec![Value::Str("y".into()), Value::Int(0)],
                vec![Value::Str("y".into()), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn packed_composite_key_sorts_major_first() {
        // Str(2) + Date = 6 bytes: packed composite key.
        let schema = Schema::new(vec![
            Field::new("a", DataType::Str(2)),
            Field::new("d", DataType::Date),
        ]);
        let rows = vec![
            vec![
                Value::Str("y".into()),
                Value::Date(cordoba_storage::Date(1)),
            ],
            vec![
                Value::Str("x".into()),
                Value::Date(cordoba_storage::Date(2)),
            ],
            vec![
                Value::Str("x".into()),
                Value::Date(cordoba_storage::Date(-1)),
            ],
            vec![Value::Str("".into()), Value::Date(cordoba_storage::Date(9))],
        ];
        let got = run_sort(rows, schema, vec![0, 1]);
        assert_eq!(
            got,
            vec![
                vec![Value::Str("".into()), Value::Date(cordoba_storage::Date(9))],
                vec![
                    Value::Str("x".into()),
                    Value::Date(cordoba_storage::Date(-1))
                ],
                vec![
                    Value::Str("x".into()),
                    Value::Date(cordoba_storage::Date(2))
                ],
                vec![
                    Value::Str("y".into()),
                    Value::Date(cordoba_storage::Date(1))
                ],
            ]
        );
    }

    #[test]
    fn large_sort_spans_many_pages() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = (0..5000).rev().map(|v| vec![Value::Int(v)]).collect();
        let got = run_sort(rows, schema, vec![0]);
        assert_eq!(got.len(), 5000);
        assert!(got.windows(2).all(|w| w[0][0].as_int() <= w[1][0].as_int()));
    }

    #[test]
    fn empty_input_sorts_to_empty() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        assert!(run_sort(vec![], schema, vec![0]).is_empty());
    }

    #[test]
    fn sort_is_stable_for_equal_keys() {
        // The permutation sort is stable; rows with equal keys keep
        // arrival order (matters for reference-executor equivalence).
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("seq", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i % 3), Value::Int(i)])
            .collect();
        let got = run_sort(rows, schema, vec![0]);
        for w in got.windows(2) {
            if w[0][0] == w[1][0] {
                assert!(w[0][1].as_int() < w[1][1].as_int());
            }
        }
    }

    #[test]
    fn out_of_range_key_errors_at_construction() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let (_tx, rx) = channel::bounded::<Arc<Page>>(1);
        let err = SortTask::new(
            rx,
            schema,
            vec![7],
            OpCost::default(),
            Fanout::new(vec![], 0.0),
        )
        .err()
        .expect("constructor must reject");
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
