//! Operator tasks and shared machinery (fan-out, key encoding).

pub mod aggregate;
pub mod filter;
pub mod hash_join;
pub mod merge_join;
pub mod nlj;
pub(crate) mod par_pipe;
pub mod project;
pub mod scan;
pub mod sink;
pub mod sort;
pub mod sort_key;

#[cfg(test)]
mod join_properties;
#[cfg(test)]
pub(crate) mod testutil;

pub use aggregate::AggregateTask;
pub use filter::FilterTask;
pub use hash_join::{BuildTable, HashJoinTask};
pub use merge_join::MergeJoinTask;
pub use nlj::NestedLoopJoinTask;
pub use project::ProjectTask;
pub use scan::ScanTask;
pub use sink::SinkTask;
pub use sort::SortTask;
pub use sort_key::{KeyScratch, PackedKeySpec};

use cordoba_sim::channel::Sender;
use cordoba_sim::{TaskCtx, VTime};
use cordoba_storage::{DataType, Page, Schema, TupleRef};
use std::sync::Arc;

/// Delivers produced pages to one or more consumers, charging the
/// operator's per-consumer output cost (`s`) for each delivery.
///
/// This is the serialization point the paper analyzes: a pivot shared by
/// `M` queries delivers every page `M` times, paying `M · s` per tuple
/// of forward progress, all in a single thread of control.
pub struct Fanout {
    outs: Vec<Sender<Arc<Page>>>,
    pending: Option<(Arc<Page>, usize)>,
    out_per_tuple: f64,
}

impl Fanout {
    /// Creates a fan-out over the given consumers. An empty consumer
    /// list is allowed (a root operator nobody listens to — used in
    /// drain benchmarks).
    pub fn new(outs: Vec<Sender<Arc<Page>>>, out_per_tuple: f64) -> Self {
        Self {
            outs,
            pending: None,
            out_per_tuple,
        }
    }

    /// Number of consumers.
    pub fn consumers(&self) -> usize {
        self.outs.len()
    }

    /// Whether a page is mid-delivery (some consumers not yet served).
    pub fn is_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Begins delivering `page` to all consumers.
    ///
    /// # Panics
    ///
    /// Panics if a delivery is already pending — callers must pump to
    /// completion first.
    pub fn begin(&mut self, page: Arc<Page>) {
        assert!(self.pending.is_none(), "fanout already has a pending page");
        self.pending = Some((page, 0));
    }

    /// Continues the pending delivery. Returns the cost accrued this
    /// call and whether delivery completed (`false` = blocked on a full
    /// consumer queue; the task should return [`cordoba_sim::Step::blocked`]).
    pub fn pump(&mut self, ctx: &mut TaskCtx<'_>) -> (VTime, bool) {
        let Some((page, mut next)) = self.pending.take() else {
            return (0, true);
        };
        let tuples = page.rows();
        let mut cost = 0;
        while next < self.outs.len() {
            match self.outs[next].try_send(page.clone(), ctx) {
                Ok(()) => {
                    cost += (self.out_per_tuple * tuples as f64).round() as VTime;
                    next += 1;
                }
                Err(_) => {
                    self.pending = Some((page, next));
                    return (cost, false);
                }
            }
        }
        (cost, true)
    }

    /// Closes all consumer channels (end of stream).
    pub fn close(&mut self, ctx: &mut TaskCtx<'_>) {
        for out in &self.outs {
            out.close(ctx);
        }
    }

    /// Discards a mid-delivery page (query abort): consumers already
    /// served keep it, the rest never see it.
    pub fn abandon(&mut self) {
        self.pending = None;
    }
}

/// An ordered queue of produced pages awaiting fan-out delivery.
///
/// Operators that can emit several pages from one step (projections that
/// widen rows, joins, aggregate emission) push here and flush; pages are
/// delivered in order, and a blocked consumer pauses the queue without
/// reordering.
pub struct Outbox {
    queue: std::collections::VecDeque<Arc<Page>>,
    fanout: Fanout,
}

impl Outbox {
    /// Wraps a fan-out in an ordered outbox.
    pub fn new(fanout: Fanout) -> Self {
        Self {
            queue: std::collections::VecDeque::new(),
            fanout,
        }
    }

    /// Number of consumers of the underlying fan-out.
    pub fn consumers(&self) -> usize {
        self.fanout.consumers()
    }

    /// Queues a page for delivery.
    pub fn push(&mut self, page: Arc<Page>) {
        self.queue.push_back(page);
    }

    /// Whether all queued pages have been fully delivered.
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty() && !self.fanout.is_pending()
    }

    /// Delivers as much as possible; returns accrued cost and whether
    /// the outbox fully drained (`false` = blocked on a consumer).
    pub fn flush(&mut self, ctx: &mut TaskCtx<'_>) -> (VTime, bool) {
        let mut cost = 0;
        loop {
            let (c, done) = self.fanout.pump(ctx);
            cost += c;
            if !done {
                return (cost, false);
            }
            match self.queue.pop_front() {
                Some(page) => self.fanout.begin(page),
                None => return (cost, true),
            }
        }
    }

    /// Closes all consumer channels.
    pub fn close(&mut self, ctx: &mut TaskCtx<'_>) {
        debug_assert!(
            self.is_drained(),
            "closing an outbox with undelivered pages"
        );
        self.fanout.close(ctx);
    }

    /// Discards every undelivered page (query abort) so the outbox can
    /// close without delivering stale results downstream.
    pub fn abandon(&mut self) {
        self.queue.clear();
        self.fanout.abandon();
    }
}

/// A totally ordered key component for grouping and sorting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum KeyVal {
    /// Integer key.
    Int(i64),
    /// Float key under IEEE total order.
    Float(TotalF64),
    /// Date key (day number).
    Date(i32),
    /// String key.
    Str(String),
}

/// `f64` wrapper ordered by `total_cmp` so it can key `BTreeMap`s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);
impl Eq for TotalF64 {}
impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Validates that `col` is an `Int` column of `schema` — the join-key
/// contract shared by the hash and merge joins.
pub(crate) fn int_key(
    what: &str,
    schema: &Arc<Schema>,
    col: usize,
) -> Result<(), crate::error::ExecError> {
    let dtype = schema
        .fields()
        .get(col)
        .map(|f| f.dtype)
        .ok_or_else(|| crate::plan::column_range_error(what, col, schema))?;
    if dtype != DataType::Int {
        return Err(crate::error::ExecError::plan(format!(
            "{what} key column {col} must be Int, got {dtype:?}"
        )));
    }
    Ok(())
}

/// Extracts the `cols` of a tuple as an ordered key.
pub fn key_of(tuple: &TupleRef<'_>, cols: &[usize]) -> Vec<KeyVal> {
    cols.iter()
        .map(|&i| match tuple.schema().fields()[i].dtype {
            DataType::Int => KeyVal::Int(tuple.get_int(i)),
            DataType::Float => KeyVal::Float(TotalF64(tuple.get_float(i))),
            DataType::Date => KeyVal::Date(tuple.get_date(i).0),
            DataType::Str(_) => KeyVal::Str(tuple.get_str(i).to_string()),
        })
        .collect()
}

/// Encodes a [`KeyVal`] back into raw row bytes for its field type.
pub fn encode_keyval(out: &mut Vec<u8>, key: &KeyVal, dtype: DataType) {
    match (key, dtype) {
        (KeyVal::Int(v), DataType::Int) => out.extend_from_slice(&v.to_le_bytes()),
        (KeyVal::Float(v), DataType::Float) => out.extend_from_slice(&v.0.to_le_bytes()),
        (KeyVal::Date(v), DataType::Date) => out.extend_from_slice(&v.to_le_bytes()),
        (KeyVal::Str(s), DataType::Str(n)) => {
            out.extend_from_slice(s.as_bytes());
            out.extend(std::iter::repeat_n(b' ', n - s.len()));
        }
        // lint: allow(group keys are derived from the schema they encode back into)
        (k, d) => panic!("key {k:?} does not match field type {d:?}"),
    }
}

/// Type-default row bytes for a schema (0 / 0.0 / epoch / spaces) —
/// the fill for unmatched LEFT OUTER probe rows.
pub fn default_row_bytes(schema: &Arc<Schema>) -> Vec<u8> {
    let mut out = Vec::with_capacity(schema.row_width());
    for f in schema.fields() {
        match f.dtype {
            DataType::Int => out.extend_from_slice(&0i64.to_le_bytes()),
            DataType::Float => out.extend_from_slice(&0f64.to_le_bytes()),
            DataType::Date => out.extend_from_slice(&0i32.to_le_bytes()),
            DataType::Str(n) => out.extend(std::iter::repeat_n(b' ', n)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_storage::{Field, PageBuilder, Value};

    #[test]
    fn total_f64_orders_nan_consistently() {
        let mut v = [
            TotalF64(f64::NAN),
            TotalF64(1.0),
            TotalF64(-1.0),
            TotalF64(0.0),
        ];
        v.sort();
        assert_eq!(v[0].0, -1.0);
        assert_eq!(v[1].0, 0.0);
        assert_eq!(v[2].0, 1.0);
        assert!(v[3].0.is_nan());
    }

    #[test]
    fn key_extraction_and_encoding_round_trip() {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("s", DataType::Str(4)),
        ]);
        let mut b = PageBuilder::new(schema.clone());
        b.push_row(&[Value::Int(9), Value::Float(1.5), Value::Str("ab".into())]);
        let page = b.finish();
        let key = key_of(&page.tuple(0), &[0, 1, 2]);
        assert_eq!(
            key,
            vec![
                KeyVal::Int(9),
                KeyVal::Float(TotalF64(1.5)),
                KeyVal::Str("ab".into())
            ]
        );
        // Encode back and compare to the original raw row.
        let mut bytes = Vec::new();
        for (k, f) in key.iter().zip(schema.fields()) {
            encode_keyval(&mut bytes, k, f.dtype);
        }
        assert_eq!(bytes.as_slice(), page.tuple(0).raw());
    }

    #[test]
    fn default_row_matches_schema_width() {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("d", DataType::Date),
            Field::new("s", DataType::Str(7)),
        ]);
        let bytes = default_row_bytes(&schema);
        assert_eq!(bytes.len(), schema.row_width());
        // Reading the default row yields the type defaults.
        let mut b = PageBuilder::new(schema);
        assert!(b.push_raw(&bytes));
        let page = b.finish();
        let t = page.tuple(0);
        assert_eq!(t.get_int(0), 0);
        assert_eq!(t.get_date(1).0, 0);
        assert_eq!(t.get_str(2), "");
    }

    #[test]
    fn keyvals_sort_lexicographically() {
        let a = vec![KeyVal::Str("A".into()), KeyVal::Str("F".into())];
        let b = vec![KeyVal::Str("A".into()), KeyVal::Str("O".into())];
        let c = vec![KeyVal::Str("N".into()), KeyVal::Str("F".into())];
        let mut v = vec![c.clone(), b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }
}
