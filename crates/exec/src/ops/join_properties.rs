//! Property tests for join-family correctness: on random inputs the
//! hash, nested-loop, and merge joins must agree with each other (the
//! paper's Section 5.3 treats the families as interchangeable once
//! blocking phases are accounted for), the semi/anti pair must
//! partition the probe side, and the simulated operator tasks must
//! reproduce the synchronous reference executor.

use crate::cost::OpCost;
use crate::expr::{CmpOp, Predicate, ScalarExpr};
use crate::ops::testutil::CollectingSink;
use crate::plan::{JoinKind, PhysicalPlan};
use crate::{reference, wiring};
use cordoba_sim::Simulator;
use cordoba_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Registers `l` and `r` as two-column (key, payload) tables.
fn kv_catalog(left: &[(i64, i64)], right: &[(i64, i64)]) -> Catalog {
    let mut catalog = Catalog::new();
    for (name, rows) in [("l", left), ("r", right)] {
        let schema = Schema::new(vec![
            Field::new(format!("{name}k"), DataType::Int),
            Field::new(format!("{name}v"), DataType::Int),
        ]);
        let mut tb = TableBuilder::new(name, schema);
        for (k, v) in rows {
            tb.push_row(&[Value::Int(*k), Value::Int(*v)]);
        }
        catalog.register(tb.finish());
    }
    catalog
}

fn scan(table: &str) -> Box<PhysicalPlan> {
    Box::new(PhysicalPlan::Scan {
        table: table.into(),
        cost: OpCost::default(),
    })
}

fn sorted(table: &str) -> Box<PhysicalPlan> {
    Box::new(PhysicalPlan::Sort {
        input: scan(table),
        keys: vec![0],
        cost: OpCost::default(),
    })
}

/// Inner hash join l ⨝ r on the key columns; output is l ++ r.
fn hash_inner() -> PhysicalPlan {
    PhysicalPlan::HashJoin {
        build: scan("r"),
        probe: scan("l"),
        build_key: 0,
        probe_key: 0,
        kind: JoinKind::Inner,
        build_cost: OpCost::default(),
        probe_cost: OpCost::default(),
    }
}

/// Small key domains force duplicates and collisions on both sides.
fn kv_rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..8, 0i64..100), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hash join ≡ nested-loop join ≡ merge join on random inputs.
    #[test]
    fn hash_nlj_merge_joins_agree(left in kv_rows(), right in kv_rows()) {
        let catalog = kv_catalog(&left, &right);
        let nlj = PhysicalPlan::NestedLoopJoin {
            outer: scan("l"),
            inner: scan("r"),
            // Key equality over the concatenated (l ++ r) schema.
            predicate: Predicate::cmp(ScalarExpr::col(0), CmpOp::Eq, ScalarExpr::col(2)),
            cost: OpCost::default(),
        };
        let merge = PhysicalPlan::MergeJoin {
            left: sorted("l"),
            right: sorted("r"),
            left_key: 0,
            right_key: 0,
            cost: OpCost::default(),
        };
        let via_hash = reference::canonicalize(reference::execute(&catalog, &hash_inner()));
        let via_nlj = reference::canonicalize(reference::execute(&catalog, &nlj));
        let via_merge = reference::canonicalize(reference::execute(&catalog, &merge));
        prop_assert_eq!(&via_hash, &via_nlj, "hash vs nested-loop");
        prop_assert_eq!(&via_hash, &via_merge, "hash vs merge");
    }

    /// Semi and anti joins partition the probe side: every probe row
    /// appears in exactly one of the two outputs.
    #[test]
    fn semi_and_anti_partition_probe_rows(left in kv_rows(), right in kv_rows()) {
        let catalog = kv_catalog(&left, &right);
        let join = |kind| PhysicalPlan::HashJoin {
            build: scan("r"),
            probe: scan("l"),
            build_key: 0,
            probe_key: 0,
            kind,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let mut semi = reference::execute(&catalog, &join(JoinKind::Semi));
        let anti = reference::execute(&catalog, &join(JoinKind::Anti));
        semi.extend(anti);
        prop_assert_eq!(
            reference::canonicalize(semi),
            reference::canonicalize(reference::execute(&catalog, &scan("l")))
        );
    }

    /// A left-outer join keeps every inner match and pads exactly the
    /// anti-join rows with default build columns.
    #[test]
    fn left_outer_extends_inner_with_unmatched_probes(
        left in kv_rows(),
        right in kv_rows(),
    ) {
        let catalog = kv_catalog(&left, &right);
        let outer = PhysicalPlan::HashJoin {
            build: scan("r"),
            probe: scan("l"),
            build_key: 0,
            probe_key: 0,
            kind: JoinKind::LeftOuter,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let anti = PhysicalPlan::HashJoin {
            build: scan("r"),
            probe: scan("l"),
            build_key: 0,
            probe_key: 0,
            kind: JoinKind::Anti,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        let n_outer = reference::execute(&catalog, &outer).len();
        let n_inner = reference::execute(&catalog, &hash_inner()).len();
        let n_anti = reference::execute(&catalog, &anti).len();
        prop_assert_eq!(n_outer, n_inner + n_anti);
    }

    /// The simulated hash-join task pipeline (scan → build/probe →
    /// sink) produces exactly the reference executor's rows.
    #[test]
    fn simulated_hash_join_matches_reference(left in kv_rows(), right in kv_rows()) {
        let catalog = kv_catalog(&left, &right);
        let plan = hash_inner();
        let expected = reference::canonicalize(reference::execute(&catalog, &plan));

        let mut sim = Simulator::new(3);
        let (rx, _ops, _fault) =
            wiring::instantiate(&mut sim, &catalog, &plan, "hj", &wiring::WiringConfig::default())
                .expect("plan wires"); // lint: allow(property-test harness; generated plans always wire)
        let rows = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx,
                rows: rows.clone(),
            }),
        );
        prop_assert!(sim.run_to_idle().completed_all());
        let got = reference::canonicalize(rows.borrow().clone());
        prop_assert_eq!(got, expected);
    }
}
