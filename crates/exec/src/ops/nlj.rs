//! Block nested-loop join: materializes the inner side, then streams the
//! outer side, testing an arbitrary predicate over each (outer, inner)
//! pair. Fully general but O(|outer| · |inner|) — used for small inputs
//! and as a join oracle in tests.
//!
//! The predicate compiles **once** into a [`CompiledPredicate`] over the
//! pair schema. Candidate pairs are assembled page-at-a-time into a
//! reused candidate page (outer row bytes ++ inner row bytes), the
//! compiled program evaluates the whole page into a selection vector,
//! and survivors move to the output with bulk row copies — replacing
//! the old one-row-page-per-pair `Predicate::eval` loop. The inner side
//! lands in one contiguous arena (a bulk payload copy per page, no
//! boxed row per tuple).

use crate::cost::OpCost;
use crate::error::ExecError;
use crate::expr::Predicate;
use crate::ops::{Fanout, Outbox};
use crate::vexpr::{CompiledPredicate, ExprScratch};
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, PageBuilder, Schema};
use std::sync::Arc;

enum PhaseState {
    LoadingInner,
    Streaming,
    Flushing,
    Done,
}

/// Nested-loop join task.
pub struct NestedLoopJoinTask {
    rx_outer: Receiver<Arc<Page>>,
    rx_inner: Receiver<Arc<Page>>,
    predicate: CompiledPredicate,
    cost: OpCost,
    /// Materialized inner rows, contiguous.
    inner_arena: Vec<u8>,
    /// Byte width of one inner row (set when the first page arrives).
    inner_width: usize,
    inner_rows: usize,
    builder: PageBuilder,
    /// Reused candidate-pair page under construction.
    candidates: PageBuilder,
    outbox: Outbox,
    state: PhaseState,
    scratch: ExprScratch,
    sel: Vec<u32>,
}

impl NestedLoopJoinTask {
    /// Creates a nested-loop join. `pair_schema` is outer ++ inner (the
    /// output schema); the predicate is compiled against it here, once,
    /// erring on type mismatches or out-of-range columns.
    pub fn new(
        rx_outer: Receiver<Arc<Page>>,
        rx_inner: Receiver<Arc<Page>>,
        predicate: Predicate,
        pair_schema: Arc<Schema>,
        cost: OpCost,
        fanout: Fanout,
    ) -> Result<Self, ExecError> {
        Ok(Self {
            rx_outer,
            rx_inner,
            predicate: CompiledPredicate::compile(&predicate, &pair_schema)?,
            cost,
            inner_arena: Vec::new(),
            inner_width: 0,
            inner_rows: 0,
            builder: PageBuilder::new(pair_schema.clone()),
            candidates: PageBuilder::new(pair_schema),
            outbox: Outbox::new(fanout),
            state: PhaseState::LoadingInner,
            scratch: ExprScratch::default(),
            sel: Vec::new(),
        })
    }

    /// Evaluates the buffered candidate page and moves the selected
    /// pairs into the output builder (full output pages go to the
    /// outbox).
    fn flush_candidates(&mut self) {
        if self.candidates.is_empty() {
            return;
        }
        let page = self.candidates.finish_and_reset();
        self.predicate
            .select(&page, &mut self.scratch, &mut self.sel);
        let mut taken = 0;
        while taken < self.sel.len() {
            if self.builder.is_full() {
                self.outbox.push(self.builder.finish_and_reset());
            }
            taken += page.copy_rows_into(&self.sel[taken..], &mut self.builder);
        }
        if self.builder.is_full() {
            self.outbox.push(self.builder.finish_and_reset());
        }
    }

    /// Pairs one outer page against the whole inner arena through the
    /// candidate page.
    fn stream_page(&mut self, page: &Page) {
        if self.inner_rows == 0 {
            return; // empty inner: inner join emits nothing
        }
        // Detach the arena so the pair loop can borrow it while the
        // candidate builder (also `self`) fills and flushes.
        let arena = std::mem::take(&mut self.inner_arena);
        for t in page.tuples() {
            let outer = t.raw();
            for inner in arena.chunks_exact(self.inner_width) {
                if !self.candidates.push_raw_parts(outer, inner) {
                    self.flush_candidates();
                    let pushed = self.candidates.push_raw_parts(outer, inner);
                    debug_assert!(pushed, "candidate page just flushed");
                }
            }
        }
        self.inner_arena = arena;
        self.flush_candidates();
    }
}

impl Task for NestedLoopJoinTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        match self.state {
            PhaseState::LoadingInner => match self.rx_inner.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    cost += self.cost.input_cost(n);
                    self.inner_width = page.schema().row_width();
                    self.inner_rows += n;
                    self.inner_arena.extend_from_slice(page.payload());
                    Step::yielded(cost)
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    self.state = PhaseState::Streaming;
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::Streaming => match self.rx_outer.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    // Pair-examination cost: every (outer, inner) pair.
                    cost += self.cost.input_cost(n * self.inner_rows.max(1));
                    ctx.add_progress(n as f64);
                    self.stream_page(&page);
                    let (c, drained) = self.outbox.flush(ctx);
                    cost += c;
                    if drained {
                        Step::yielded(cost)
                    } else {
                        Step::blocked(cost)
                    }
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    self.state = PhaseState::Flushing;
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::Flushing => {
                if !self.builder.is_empty() {
                    let tail = self.builder.finish_and_reset();
                    self.outbox.push(tail);
                }
                self.state = PhaseState::Done;
                let (c, drained) = self.outbox.flush(ctx);
                cost += c + 1;
                if drained {
                    Step::yielded(cost)
                } else {
                    Step::blocked(cost)
                }
            }
            PhaseState::Done => {
                self.outbox.close(ctx);
                Step::done(cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, ScalarExpr};
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use crate::plan::concat_schemas;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn equi_predicate_matches_hash_join_inner() {
        let ls = Schema::new(vec![Field::new("a", DataType::Int)]);
        let rs = Schema::new(vec![Field::new("b", DataType::Int)]);
        let mut lt = TableBuilder::new("l", ls.clone());
        for v in [1i64, 2, 3] {
            lt.push_row(&[Value::Int(v)]);
        }
        let mut rt = TableBuilder::new("r", rs.clone());
        for v in [2i64, 3, 4, 3] {
            rt.push_row(&[Value::Int(v)]);
        }
        let pair = concat_schemas(&ls, &rs);
        let pred = Predicate::Cmp {
            left: ScalarExpr::col(0),
            op: CmpOp::Eq,
            right: ScalarExpr::col(1),
        };
        let mut sim = Simulator::new(2);
        let (txo, rxo) = channel::bounded(4);
        let (txi, rxi) = channel::bounded(4);
        let (txout, rxout) = channel::bounded(4);
        sim.spawn(
            "outer",
            Box::new(ScanTask::new(
                lt.finish().pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txo], 0.0),
            )),
        );
        sim.spawn(
            "inner",
            Box::new(ScanTask::new(
                rt.finish().pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txi], 0.0),
            )),
        );
        sim.spawn(
            "nlj",
            Box::new(
                NestedLoopJoinTask::new(
                    rxo,
                    rxi,
                    pred,
                    pair,
                    OpCost::default(),
                    Fanout::new(vec![txout], 0.0),
                )
                .expect("predicate compiles"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rxout,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        let mut got = out.borrow().clone();
        got.sort_by_key(|r| (r[0].as_int(), r[1].as_int()));
        assert_eq!(
            got,
            vec![
                vec![Value::Int(2), Value::Int(2)],
                vec![Value::Int(3), Value::Int(3)],
                vec![Value::Int(3), Value::Int(3)],
            ]
        );
    }

    #[test]
    fn inequality_predicate_band_join() {
        // a < b: band joins are NLJ's raison d'être.
        let ls = Schema::new(vec![Field::new("a", DataType::Int)]);
        let rs = Schema::new(vec![Field::new("b", DataType::Int)]);
        let mut lt = TableBuilder::new("l", ls.clone());
        for v in [1i64, 5] {
            lt.push_row(&[Value::Int(v)]);
        }
        let mut rt = TableBuilder::new("r", rs.clone());
        for v in [3i64, 6] {
            rt.push_row(&[Value::Int(v)]);
        }
        let pair = concat_schemas(&ls, &rs);
        let pred = Predicate::Cmp {
            left: ScalarExpr::col(0),
            op: CmpOp::Lt,
            right: ScalarExpr::col(1),
        };
        let mut sim = Simulator::new(1);
        let (txo, rxo) = channel::bounded(4);
        let (txi, rxi) = channel::bounded(4);
        let (txout, rxout) = channel::bounded(4);
        sim.spawn(
            "outer",
            Box::new(ScanTask::new(
                lt.finish().pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txo], 0.0),
            )),
        );
        sim.spawn(
            "inner",
            Box::new(ScanTask::new(
                rt.finish().pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txi], 0.0),
            )),
        );
        sim.spawn(
            "nlj",
            Box::new(
                NestedLoopJoinTask::new(
                    rxo,
                    rxi,
                    pred,
                    pair,
                    OpCost::default(),
                    Fanout::new(vec![txout], 0.0),
                )
                .expect("predicate compiles"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rxout,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        // pairs: (1,3),(1,6),(5,6)
        assert_eq!(out.borrow().len(), 3);
    }

    #[test]
    fn mistyped_predicate_errors_at_construction() {
        let ls = Schema::new(vec![Field::new("a", DataType::Int)]);
        let rs = Schema::new(vec![Field::new("b", DataType::Str(4))]);
        let pair = concat_schemas(&ls, &rs);
        let (_txo, rxo) = channel::bounded::<Arc<Page>>(1);
        let (_txi, rxi) = channel::bounded::<Arc<Page>>(1);
        // Int vs Str comparison: incomparable, caught before any task
        // is spawned.
        let pred = Predicate::Cmp {
            left: ScalarExpr::col(0),
            op: CmpOp::Eq,
            right: ScalarExpr::col(1),
        };
        let err = NestedLoopJoinTask::new(
            rxo,
            rxi,
            pred,
            pair,
            OpCost::default(),
            Fanout::new(vec![], 0.0),
        )
        .err()
        .expect("constructor must reject");
        assert!(err.to_string().contains("incomparable"), "{err}");
    }
}
