//! Block nested-loop join: materializes the inner side, then streams the
//! outer side, testing an arbitrary predicate over each (outer, inner)
//! pair. Fully general but O(|outer| · |inner|) — used for small inputs
//! and as a join oracle in tests.

use crate::cost::OpCost;
use crate::expr::Predicate;
use crate::ops::{Fanout, Outbox};
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, PageBuilder, Schema};
use std::sync::Arc;

enum PhaseState {
    LoadingInner,
    Streaming,
    Flushing,
    Done,
}

/// Nested-loop join task.
pub struct NestedLoopJoinTask {
    rx_outer: Receiver<Arc<Page>>,
    rx_inner: Receiver<Arc<Page>>,
    predicate: Predicate,
    cost: OpCost,
    inner_rows: Vec<Box<[u8]>>,
    pair_schema: Arc<Schema>,
    builder: PageBuilder,
    outbox: Outbox,
    state: PhaseState,
    scratch: Vec<u8>,
}

impl NestedLoopJoinTask {
    /// Creates a nested-loop join. `pair_schema` is outer ++ inner (the
    /// output schema; the predicate is evaluated over it).
    pub fn new(
        rx_outer: Receiver<Arc<Page>>,
        rx_inner: Receiver<Arc<Page>>,
        predicate: Predicate,
        pair_schema: Arc<Schema>,
        cost: OpCost,
        fanout: Fanout,
    ) -> Self {
        Self {
            rx_outer,
            rx_inner,
            predicate,
            cost,
            inner_rows: Vec::new(),
            builder: PageBuilder::new(pair_schema.clone()),
            pair_schema,
            outbox: Outbox::new(fanout),
            state: PhaseState::LoadingInner,
            scratch: Vec::new(),
        }
    }
}

impl Task for NestedLoopJoinTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        match self.state {
            PhaseState::LoadingInner => match self.rx_inner.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    cost += self.cost.input_cost(n);
                    for t in page.tuples() {
                        self.inner_rows.push(t.raw().to_vec().into_boxed_slice());
                    }
                    Step::yielded(cost)
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    self.state = PhaseState::Streaming;
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::Streaming => match self.rx_outer.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    // Pair-examination cost: every (outer, inner) pair.
                    cost += self.cost.input_cost(n * self.inner_rows.len().max(1));
                    ctx.add_progress(n as f64);
                    // Evaluate the predicate over a materialized pair row
                    // (one-row page, reused builder).
                    let mut probe = PageBuilder::new(self.pair_schema.clone());
                    for t in page.tuples() {
                        for inner in &self.inner_rows {
                            self.scratch.clear();
                            self.scratch.extend_from_slice(t.raw());
                            self.scratch.extend_from_slice(inner);
                            assert!(probe.push_raw(&self.scratch));
                            let candidate = probe.finish_and_reset();
                            if self.predicate.eval(&candidate.tuple(0))
                                && !self.builder.push_raw(&self.scratch)
                            {
                                let full = self.builder.finish_and_reset();
                                self.outbox.push(full);
                                assert!(self.builder.push_raw(&self.scratch));
                            }
                        }
                    }
                    let (c, drained) = self.outbox.flush(ctx);
                    cost += c;
                    if drained {
                        Step::yielded(cost)
                    } else {
                        Step::blocked(cost)
                    }
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    self.state = PhaseState::Flushing;
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::Flushing => {
                if !self.builder.is_empty() {
                    let tail = self.builder.finish_and_reset();
                    self.outbox.push(tail);
                }
                self.state = PhaseState::Done;
                let (c, drained) = self.outbox.flush(ctx);
                cost += c + 1;
                if drained {
                    Step::yielded(cost)
                } else {
                    Step::blocked(cost)
                }
            }
            PhaseState::Done => {
                self.outbox.close(ctx);
                Step::done(cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, ScalarExpr};
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use crate::plan::concat_schemas;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn equi_predicate_matches_hash_join_inner() {
        let ls = Schema::new(vec![Field::new("a", DataType::Int)]);
        let rs = Schema::new(vec![Field::new("b", DataType::Int)]);
        let mut lt = TableBuilder::new("l", ls.clone());
        for v in [1i64, 2, 3] {
            lt.push_row(&[Value::Int(v)]);
        }
        let mut rt = TableBuilder::new("r", rs.clone());
        for v in [2i64, 3, 4, 3] {
            rt.push_row(&[Value::Int(v)]);
        }
        let pair = concat_schemas(&ls, &rs);
        let pred = Predicate::Cmp {
            left: ScalarExpr::col(0),
            op: CmpOp::Eq,
            right: ScalarExpr::col(1),
        };
        let mut sim = Simulator::new(2);
        let (txo, rxo) = channel::bounded(4);
        let (txi, rxi) = channel::bounded(4);
        let (txout, rxout) = channel::bounded(4);
        sim.spawn(
            "outer",
            Box::new(ScanTask::new(
                lt.finish().pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txo], 0.0),
            )),
        );
        sim.spawn(
            "inner",
            Box::new(ScanTask::new(
                rt.finish().pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txi], 0.0),
            )),
        );
        sim.spawn(
            "nlj",
            Box::new(NestedLoopJoinTask::new(
                rxo,
                rxi,
                pred,
                pair,
                OpCost::default(),
                Fanout::new(vec![txout], 0.0),
            )),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rxout,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        let mut got = out.borrow().clone();
        got.sort_by_key(|r| (r[0].as_int(), r[1].as_int()));
        assert_eq!(
            got,
            vec![
                vec![Value::Int(2), Value::Int(2)],
                vec![Value::Int(3), Value::Int(3)],
                vec![Value::Int(3), Value::Int(3)],
            ]
        );
    }

    #[test]
    fn inequality_predicate_band_join() {
        // a < b: band joins are NLJ's raison d'être.
        let ls = Schema::new(vec![Field::new("a", DataType::Int)]);
        let rs = Schema::new(vec![Field::new("b", DataType::Int)]);
        let mut lt = TableBuilder::new("l", ls.clone());
        for v in [1i64, 5] {
            lt.push_row(&[Value::Int(v)]);
        }
        let mut rt = TableBuilder::new("r", rs.clone());
        for v in [3i64, 6] {
            rt.push_row(&[Value::Int(v)]);
        }
        let pair = concat_schemas(&ls, &rs);
        let pred = Predicate::Cmp {
            left: ScalarExpr::col(0),
            op: CmpOp::Lt,
            right: ScalarExpr::col(1),
        };
        let mut sim = Simulator::new(1);
        let (txo, rxo) = channel::bounded(4);
        let (txi, rxi) = channel::bounded(4);
        let (txout, rxout) = channel::bounded(4);
        sim.spawn(
            "outer",
            Box::new(ScanTask::new(
                lt.finish().pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txo], 0.0),
            )),
        );
        sim.spawn(
            "inner",
            Box::new(ScanTask::new(
                rt.finish().pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txi], 0.0),
            )),
        );
        sim.spawn(
            "nlj",
            Box::new(NestedLoopJoinTask::new(
                rxo,
                rxi,
                pred,
                pair,
                OpCost::default(),
                Fanout::new(vec![txout], 0.0),
            )),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rxout,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        // pairs: (1,3),(1,6),(5,6)
        assert_eq!(out.borrow().len(), 3);
    }
}
