//! Hash join: blocking build over one input, pipelined probe over the
//! other. Supports inner, semi (EXISTS — TPC-H Q4), anti, and left
//! outer (TPC-H Q13) semantics on integer equi-keys.
//!
//! The build side is allocation-free per row: every build page's
//! payload is appended to one contiguous arena in a single copy, and
//! rows sharing a key are chained through index links in a flat entry
//! vector keyed by an [`FxHashMap`] (integer hashing, no SipHash) —
//! the layout Jahangiri et al. (PAPERS.md) show join throughput hinges
//! on, replacing the old `HashMap<i64, Vec<Box<[u8]>>>` with its
//! boxed-row heap allocation per build tuple. Probe keys are gathered
//! page-at-a-time through [`Page::gather_i64`].

use crate::cost::OpCost;
use crate::error::ExecError;
use crate::ops::{default_row_bytes, int_key, Fanout, Outbox};
use crate::plan::JoinKind;
use cordoba_core::FxHashMap;
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, PageBuilder, Schema};
use std::sync::Arc;

/// Sentinel terminating a bucket chain.
const NIL: u32 = u32::MAX;

/// One chained build row: the byte offset of its row in the arena and
/// the index of the next row with the same key.
#[derive(Debug, Clone, Copy)]
struct BuildEntry {
    offset: u32,
    next: u32,
}

/// The arena-backed hash-join build table: contiguous row bytes,
/// chained same-key rows, and an integer-hashed directory. Insertion
/// performs zero per-row heap allocations (the arena and entry vector
/// grow amortized, by page).
#[derive(Debug, Default)]
pub struct BuildTable {
    /// key -> (first, last) entry index; `last` keeps chains in
    /// insertion order so inner joins emit matches in build order.
    heads: FxHashMap<i64, (u32, u32)>,
    entries: Vec<BuildEntry>,
    arena: Vec<u8>,
    row_width: usize,
    key_scratch: Vec<i64>,
}

impl BuildTable {
    /// Creates an empty build table for rows of `row_width` bytes.
    pub fn new(row_width: usize) -> Self {
        Self {
            row_width,
            ..Self::default()
        }
    }

    /// Number of build rows inserted.
    pub fn rows(&self) -> usize {
        self.entries.len()
    }

    /// Arena bytes in use (diagnostics / memory accounting).
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Inserts every row of `page`, keyed by Int column `key_col`: one
    /// bulk payload copy plus one directory update per row.
    ///
    /// # Panics
    ///
    /// Panics if the page's rows are not `row_width` wide or the arena
    /// exceeds `u32` addressing (> 4 GiB of build rows).
    pub fn insert_page(&mut self, page: &Page, key_col: usize) {
        assert_eq!(page.schema().row_width(), self.row_width);
        let base = self.arena.len();
        self.arena.extend_from_slice(page.payload());
        assert!(
            self.arena.len() <= u32::MAX as usize,
            "build arena exceeds u32 addressing"
        );
        let mut keys = std::mem::take(&mut self.key_scratch);
        page.gather_i64(key_col, &mut keys);
        for (r, &key) in keys.iter().enumerate() {
            let idx = self.entries.len() as u32;
            self.entries.push(BuildEntry {
                offset: (base + r * self.row_width) as u32,
                next: NIL,
            });
            match self.heads.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((idx, idx));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (_, last) = *e.get();
                    self.entries[last as usize].next = idx;
                    e.get_mut().1 = idx;
                }
            }
        }
        self.key_scratch = keys;
    }

    /// Whether any build row has `key`.
    pub fn contains(&self, key: i64) -> bool {
        self.heads.contains_key(&key)
    }

    /// Iterates the raw rows matching `key`, in insertion order.
    pub fn matches(&self, key: i64) -> MatchIter<'_> {
        MatchIter {
            table: self,
            next: self.heads.get(&key).map_or(NIL, |&(first, _)| first),
        }
    }
}

/// Iterator over a key's chained build rows.
pub struct MatchIter<'a> {
    table: &'a BuildTable,
    next: u32,
}

impl<'a> Iterator for MatchIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.next == NIL {
            return None;
        }
        let entry = self.table.entries[self.next as usize];
        self.next = entry.next;
        let at = entry.offset as usize;
        Some(&self.table.arena[at..at + self.table.row_width])
    }
}

enum PhaseState {
    Building,
    Probing,
    Flushing,
    Done,
}

/// Hash-join task.
pub struct HashJoinTask {
    rx_build: Receiver<Arc<Page>>,
    rx_probe: Receiver<Arc<Page>>,
    build_key: usize,
    probe_key: usize,
    kind: JoinKind,
    build_cost: OpCost,
    probe_cost: OpCost,
    table: BuildTable,
    build_defaults: Vec<u8>,
    builder: PageBuilder,
    outbox: Outbox,
    state: PhaseState,
    probe_keys: Vec<i64>,
}

impl HashJoinTask {
    /// Creates a hash join.
    ///
    /// `out_schema` must be the plan-derived schema for `kind`
    /// (probe ++ build for Inner/LeftOuter, probe only for Semi/Anti);
    /// `build_schema` / `probe_schema` are the input schemas (default
    /// fill for outer joins, key-column validation). Errs when a key
    /// column is out of range or not `Int`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rx_build: Receiver<Arc<Page>>,
        rx_probe: Receiver<Arc<Page>>,
        build_key: usize,
        probe_key: usize,
        kind: JoinKind,
        build_schema: Arc<Schema>,
        probe_schema: &Arc<Schema>,
        out_schema: Arc<Schema>,
        build_cost: OpCost,
        probe_cost: OpCost,
        fanout: Fanout,
    ) -> Result<Self, ExecError> {
        int_key("hash join build", &build_schema, build_key)?;
        int_key("hash join probe", probe_schema, probe_key)?;
        Ok(Self {
            rx_build,
            rx_probe,
            build_key,
            probe_key,
            kind,
            build_cost,
            probe_cost,
            table: BuildTable::new(build_schema.row_width()),
            build_defaults: default_row_bytes(&build_schema),
            builder: PageBuilder::new(out_schema),
            outbox: Outbox::new(fanout),
            state: PhaseState::Building,
            probe_keys: Vec::new(),
        })
    }

    /// Probes one page, emitting result rows into the builder/outbox.
    fn probe_page(&mut self, page: &Page) {
        page.gather_i64(self.probe_key, &mut self.probe_keys);
        for (probe_raw, &key) in page.raw_rows().zip(&self.probe_keys) {
            match self.kind {
                JoinKind::Inner => {
                    for build_raw in self.table.matches(key) {
                        emit_row(&mut self.builder, &mut self.outbox, probe_raw, build_raw);
                    }
                }
                JoinKind::Semi => {
                    if self.table.contains(key) {
                        emit_row(&mut self.builder, &mut self.outbox, probe_raw, &[]);
                    }
                }
                JoinKind::Anti => {
                    if !self.table.contains(key) {
                        emit_row(&mut self.builder, &mut self.outbox, probe_raw, &[]);
                    }
                }
                JoinKind::LeftOuter => {
                    let mut m = self.table.matches(key).peekable();
                    if m.peek().is_none() {
                        emit_row(
                            &mut self.builder,
                            &mut self.outbox,
                            probe_raw,
                            &self.build_defaults,
                        );
                    } else {
                        for build_raw in m {
                            emit_row(&mut self.builder, &mut self.outbox, probe_raw, build_raw);
                        }
                    }
                }
            }
        }
    }
}

/// Appends `probe_raw ++ build_raw` to the builder, spilling full pages
/// to the outbox. The two fragments are written directly — no
/// intermediate row scratch buffer.
fn emit_row(builder: &mut PageBuilder, outbox: &mut Outbox, probe_raw: &[u8], build_raw: &[u8]) {
    if builder.is_full() {
        outbox.push(builder.finish_and_reset());
    }
    assert!(builder.push_raw_parts(probe_raw, build_raw));
}

impl Task for HashJoinTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        match self.state {
            PhaseState::Building => match self.rx_build.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    cost += self.build_cost.input_cost(n);
                    ctx.add_progress(n as f64);
                    self.table.insert_page(&page, self.build_key);
                    Step::yielded(cost)
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    self.state = PhaseState::Probing;
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::Probing => match self.rx_probe.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    cost += self.probe_cost.input_cost(n);
                    ctx.add_progress(n as f64);
                    self.probe_page(&page);
                    let (c, drained) = self.outbox.flush(ctx);
                    cost += c;
                    if drained {
                        Step::yielded(cost)
                    } else {
                        Step::blocked(cost)
                    }
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    self.state = PhaseState::Flushing;
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::Flushing => {
                if !self.builder.is_empty() {
                    let tail = self.builder.finish_and_reset();
                    self.outbox.push(tail);
                }
                self.state = PhaseState::Done;
                let (c, drained) = self.outbox.flush(ctx);
                cost += c + 1;
                if drained {
                    Step::yielded(cost)
                } else {
                    Step::blocked(cost)
                }
            }
            PhaseState::Done => {
                self.outbox.close(ctx);
                Step::done(cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use crate::plan::concat_schemas;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn build_side() -> (Arc<Schema>, Vec<Vec<Value>>) {
        let schema = Schema::new(vec![
            Field::new("bk", DataType::Int),
            Field::new("bv", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(2), Value::Int(21)],
            vec![Value::Int(4), Value::Int(40)],
        ];
        (schema, rows)
    }

    fn probe_side() -> (Arc<Schema>, Vec<Vec<Value>>) {
        let schema = Schema::new(vec![
            Field::new("pk", DataType::Int),
            Field::new("pv", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(100)],
            vec![Value::Int(2), Value::Int(200)],
            vec![Value::Int(3), Value::Int(300)],
        ];
        (schema, rows)
    }

    #[test]
    fn build_table_chains_preserve_insertion_order() {
        let (schema, rows) = build_side();
        let mut tb = TableBuilder::new("b", schema.clone());
        for r in &rows {
            tb.push_row(r);
        }
        let table = tb.finish();
        let mut bt = BuildTable::new(schema.row_width());
        for page in table.pages() {
            bt.insert_page(page, 0);
        }
        assert_eq!(bt.rows(), 4);
        assert_eq!(bt.arena_bytes(), 4 * schema.row_width());
        assert!(bt.contains(1) && bt.contains(2) && bt.contains(4));
        assert!(!bt.contains(3));
        // Key 2's two rows come back in build order (20 then 21).
        let values: Vec<i64> = bt
            .matches(2)
            .map(|raw| i64::from_le_bytes(raw[8..16].try_into().unwrap()))
            .collect();
        assert_eq!(values, vec![20, 21]);
        assert_eq!(bt.matches(99).count(), 0);
    }

    fn run_join(kind: JoinKind) -> Vec<Vec<Value>> {
        let (bs, brows) = build_side();
        let (ps, prows) = probe_side();
        let mut tb = TableBuilder::new("b", bs.clone());
        for r in &brows {
            tb.push_row(r);
        }
        let btable = tb.finish();
        let mut tp = TableBuilder::new("p", ps.clone());
        for r in &prows {
            tp.push_row(r);
        }
        let ptable = tp.finish();

        let out_schema = match kind {
            JoinKind::Semi | JoinKind::Anti => ps.clone(),
            _ => concat_schemas(&ps, &bs),
        };
        let mut sim = Simulator::new(2);
        let (txb, rxb) = channel::bounded(4);
        let (txp, rxp) = channel::bounded(4);
        let (txo, rxo) = channel::bounded(4);
        sim.spawn(
            "scan_b",
            Box::new(ScanTask::new(
                btable.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txb], 0.0),
            )),
        );
        sim.spawn(
            "scan_p",
            Box::new(ScanTask::new(
                ptable.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txp], 0.0),
            )),
        );
        sim.spawn(
            "join",
            Box::new(
                HashJoinTask::new(
                    rxb,
                    rxp,
                    0,
                    0,
                    kind,
                    bs,
                    &ps,
                    out_schema,
                    OpCost::default(),
                    OpCost::default(),
                    Fanout::new(vec![txo], 0.0),
                )
                .expect("valid keys"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rxo,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        let out = out.borrow().clone();
        out
    }

    #[test]
    fn inner_join_expands_matches() {
        let got = run_join(JoinKind::Inner);
        assert_eq!(
            got,
            vec![
                vec![
                    Value::Int(1),
                    Value::Int(100),
                    Value::Int(1),
                    Value::Int(10)
                ],
                vec![
                    Value::Int(2),
                    Value::Int(200),
                    Value::Int(2),
                    Value::Int(20)
                ],
                vec![
                    Value::Int(2),
                    Value::Int(200),
                    Value::Int(2),
                    Value::Int(21)
                ],
            ]
        );
    }

    #[test]
    fn semi_join_emits_probe_rows_once() {
        let got = run_join(JoinKind::Semi);
        assert_eq!(
            got,
            vec![
                vec![Value::Int(1), Value::Int(100)],
                vec![Value::Int(2), Value::Int(200)],
            ]
        );
    }

    #[test]
    fn anti_join_emits_unmatched() {
        let got = run_join(JoinKind::Anti);
        assert_eq!(got, vec![vec![Value::Int(3), Value::Int(300)]]);
    }

    #[test]
    fn left_outer_fills_defaults() {
        let got = run_join(JoinKind::LeftOuter);
        assert_eq!(got.len(), 4);
        // Probe key 3 has no build match: build columns defaulted to 0.
        assert_eq!(
            got[3],
            vec![Value::Int(3), Value::Int(300), Value::Int(0), Value::Int(0)]
        );
    }

    #[test]
    fn empty_build_side() {
        // Inner/semi produce nothing; anti/left-outer pass all probe rows.
        let (bs, _) = build_side();
        let (ps, prows) = probe_side();
        for (kind, expect) in [
            (JoinKind::Inner, 0usize),
            (JoinKind::Semi, 0),
            (JoinKind::Anti, 3),
            (JoinKind::LeftOuter, 3),
        ] {
            let mut tb = TableBuilder::new("b", bs.clone());
            let btable = tb_finish_empty(&mut tb);
            let mut tp = TableBuilder::new("p", ps.clone());
            for r in &prows {
                tp.push_row(r);
            }
            let ptable = tp.finish();
            let out_schema = match kind {
                JoinKind::Semi | JoinKind::Anti => ps.clone(),
                _ => concat_schemas(&ps, &bs),
            };
            let mut sim = Simulator::new(2);
            let (txb, rxb) = channel::bounded(4);
            let (txp, rxp) = channel::bounded(4);
            let (txo, rxo) = channel::bounded(4);
            sim.spawn(
                "scan_b",
                Box::new(ScanTask::new(
                    btable.pages().to_vec(),
                    OpCost::default(),
                    Fanout::new(vec![txb], 0.0),
                )),
            );
            sim.spawn(
                "scan_p",
                Box::new(ScanTask::new(
                    ptable.pages().to_vec(),
                    OpCost::default(),
                    Fanout::new(vec![txp], 0.0),
                )),
            );
            sim.spawn(
                "join",
                Box::new(
                    HashJoinTask::new(
                        rxb,
                        rxp,
                        0,
                        0,
                        kind,
                        bs.clone(),
                        &ps,
                        out_schema,
                        OpCost::default(),
                        OpCost::default(),
                        Fanout::new(vec![txo], 0.0),
                    )
                    .expect("valid keys"),
                ),
            );
            let out = Rc::new(RefCell::new(Vec::new()));
            sim.spawn(
                "sink",
                Box::new(CollectingSink {
                    rx: rxo,
                    rows: out.clone(),
                }),
            );
            assert!(sim.run_to_idle().completed_all());
            assert_eq!(out.borrow().len(), expect, "{kind:?}");
        }
    }

    fn tb_finish_empty(b: &mut TableBuilder) -> Arc<cordoba_storage::Table> {
        // Build an empty table with the builder's schema.
        std::mem::replace(
            b,
            TableBuilder::new("x", Schema::new(vec![Field::new("d", DataType::Int)])),
        )
        .finish()
    }
}
