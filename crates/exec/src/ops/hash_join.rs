//! Hash join: blocking build over one input, pipelined probe over the
//! other. Supports inner, semi (EXISTS — TPC-H Q4), anti, and left
//! outer (TPC-H Q13) semantics on integer equi-keys.

use crate::cost::OpCost;
use crate::ops::{default_row_bytes, Fanout, Outbox};
use crate::plan::JoinKind;
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, PageBuilder, Schema};
use std::collections::HashMap;
use std::sync::Arc;

enum PhaseState {
    Building,
    Probing,
    Flushing,
    Done,
}

/// Hash-join task.
pub struct HashJoinTask {
    rx_build: Receiver<Arc<Page>>,
    rx_probe: Receiver<Arc<Page>>,
    build_key: usize,
    probe_key: usize,
    kind: JoinKind,
    build_cost: OpCost,
    probe_cost: OpCost,
    /// key -> raw build rows (empty-row vec never stored).
    table: HashMap<i64, Vec<Box<[u8]>>>,
    build_defaults: Vec<u8>,
    builder: PageBuilder,
    outbox: Outbox,
    state: PhaseState,
    scratch: Vec<u8>,
}

impl HashJoinTask {
    /// Creates a hash join.
    ///
    /// `out_schema` must be the plan-derived schema for `kind`
    /// (probe ++ build for Inner/LeftOuter, probe only for Semi/Anti);
    /// `build_schema` is the build input's schema (for outer-join
    /// default fill).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rx_build: Receiver<Arc<Page>>,
        rx_probe: Receiver<Arc<Page>>,
        build_key: usize,
        probe_key: usize,
        kind: JoinKind,
        build_schema: Arc<Schema>,
        out_schema: Arc<Schema>,
        build_cost: OpCost,
        probe_cost: OpCost,
        fanout: Fanout,
    ) -> Self {
        Self {
            rx_build,
            rx_probe,
            build_key,
            probe_key,
            kind,
            build_cost,
            probe_cost,
            table: HashMap::new(),
            build_defaults: default_row_bytes(&build_schema),
            builder: PageBuilder::new(out_schema),
            outbox: Outbox::new(fanout),
            state: PhaseState::Building,
            scratch: Vec::new(),
        }
    }

    fn emit_row(&mut self, probe_raw: &[u8], build_raw: Option<&[u8]>) {
        self.scratch.clear();
        self.scratch.extend_from_slice(probe_raw);
        match self.kind {
            JoinKind::Semi | JoinKind::Anti => {}
            JoinKind::Inner | JoinKind::LeftOuter => {
                self.scratch
                    .extend_from_slice(build_raw.unwrap_or(&self.build_defaults));
            }
        }
        if !self.builder.push_raw(&self.scratch) {
            let full = self.builder.finish_and_reset();
            self.outbox.push(full);
            assert!(self.builder.push_raw(&self.scratch));
        }
    }
}

impl Task for HashJoinTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        match self.state {
            PhaseState::Building => match self.rx_build.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    cost += self.build_cost.input_cost(n);
                    ctx.add_progress(n as f64);
                    for t in page.tuples() {
                        let key = t.get_int(self.build_key);
                        self.table
                            .entry(key)
                            .or_default()
                            .push(t.raw().to_vec().into_boxed_slice());
                    }
                    Step::yielded(cost)
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    self.state = PhaseState::Probing;
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::Probing => match self.rx_probe.try_recv(ctx) {
                Recv::Value(page) => {
                    let n = page.rows();
                    cost += self.probe_cost.input_cost(n);
                    ctx.add_progress(n as f64);
                    for t in page.tuples() {
                        let key = t.get_int(self.probe_key);
                        let matches = self.table.get(&key);
                        match self.kind {
                            JoinKind::Inner => {
                                if let Some(rows) = matches {
                                    let rows = rows.clone();
                                    for b in &rows {
                                        self.emit_row(t.raw(), Some(b));
                                    }
                                }
                            }
                            JoinKind::Semi => {
                                if matches.is_some() {
                                    self.emit_row(t.raw(), None);
                                }
                            }
                            JoinKind::Anti => {
                                if matches.is_none() {
                                    self.emit_row(t.raw(), None);
                                }
                            }
                            JoinKind::LeftOuter => match matches {
                                Some(rows) => {
                                    let rows = rows.clone();
                                    for b in &rows {
                                        self.emit_row(t.raw(), Some(b));
                                    }
                                }
                                None => self.emit_row(t.raw(), None),
                            },
                        }
                    }
                    let (c, drained) = self.outbox.flush(ctx);
                    cost += c;
                    if drained {
                        Step::yielded(cost)
                    } else {
                        Step::blocked(cost)
                    }
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    self.state = PhaseState::Flushing;
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::Flushing => {
                if !self.builder.is_empty() {
                    let tail = self.builder.finish_and_reset();
                    self.outbox.push(tail);
                }
                self.state = PhaseState::Done;
                let (c, drained) = self.outbox.flush(ctx);
                cost += c + 1;
                if drained {
                    Step::yielded(cost)
                } else {
                    Step::blocked(cost)
                }
            }
            PhaseState::Done => {
                self.outbox.close(ctx);
                Step::done(cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use crate::plan::concat_schemas;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn build_side() -> (Arc<Schema>, Vec<Vec<Value>>) {
        let schema = Schema::new(vec![
            Field::new("bk", DataType::Int),
            Field::new("bv", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(2), Value::Int(21)],
            vec![Value::Int(4), Value::Int(40)],
        ];
        (schema, rows)
    }

    fn probe_side() -> (Arc<Schema>, Vec<Vec<Value>>) {
        let schema = Schema::new(vec![
            Field::new("pk", DataType::Int),
            Field::new("pv", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(100)],
            vec![Value::Int(2), Value::Int(200)],
            vec![Value::Int(3), Value::Int(300)],
        ];
        (schema, rows)
    }

    fn run_join(kind: JoinKind) -> Vec<Vec<Value>> {
        let (bs, brows) = build_side();
        let (ps, prows) = probe_side();
        let mut tb = TableBuilder::new("b", bs.clone());
        for r in &brows {
            tb.push_row(r);
        }
        let btable = tb.finish();
        let mut tp = TableBuilder::new("p", ps.clone());
        for r in &prows {
            tp.push_row(r);
        }
        let ptable = tp.finish();

        let out_schema = match kind {
            JoinKind::Semi | JoinKind::Anti => ps.clone(),
            _ => concat_schemas(&ps, &bs),
        };
        let mut sim = Simulator::new(2);
        let (txb, rxb) = channel::bounded(4);
        let (txp, rxp) = channel::bounded(4);
        let (txo, rxo) = channel::bounded(4);
        sim.spawn(
            "scan_b",
            Box::new(ScanTask::new(
                btable.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txb], 0.0),
            )),
        );
        sim.spawn(
            "scan_p",
            Box::new(ScanTask::new(
                ptable.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txp], 0.0),
            )),
        );
        sim.spawn(
            "join",
            Box::new(HashJoinTask::new(
                rxb,
                rxp,
                0,
                0,
                kind,
                bs,
                out_schema,
                OpCost::default(),
                OpCost::default(),
                Fanout::new(vec![txo], 0.0),
            )),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rxo,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        let out = out.borrow().clone();
        out
    }

    #[test]
    fn inner_join_expands_matches() {
        let got = run_join(JoinKind::Inner);
        assert_eq!(
            got,
            vec![
                vec![
                    Value::Int(1),
                    Value::Int(100),
                    Value::Int(1),
                    Value::Int(10)
                ],
                vec![
                    Value::Int(2),
                    Value::Int(200),
                    Value::Int(2),
                    Value::Int(20)
                ],
                vec![
                    Value::Int(2),
                    Value::Int(200),
                    Value::Int(2),
                    Value::Int(21)
                ],
            ]
        );
    }

    #[test]
    fn semi_join_emits_probe_rows_once() {
        let got = run_join(JoinKind::Semi);
        assert_eq!(
            got,
            vec![
                vec![Value::Int(1), Value::Int(100)],
                vec![Value::Int(2), Value::Int(200)],
            ]
        );
    }

    #[test]
    fn anti_join_emits_unmatched() {
        let got = run_join(JoinKind::Anti);
        assert_eq!(got, vec![vec![Value::Int(3), Value::Int(300)]]);
    }

    #[test]
    fn left_outer_fills_defaults() {
        let got = run_join(JoinKind::LeftOuter);
        assert_eq!(got.len(), 4);
        // Probe key 3 has no build match: build columns defaulted to 0.
        assert_eq!(
            got[3],
            vec![Value::Int(3), Value::Int(300), Value::Int(0), Value::Int(0)]
        );
    }

    #[test]
    fn empty_build_side() {
        // Inner/semi produce nothing; anti/left-outer pass all probe rows.
        let (bs, _) = build_side();
        let (ps, prows) = probe_side();
        for (kind, expect) in [
            (JoinKind::Inner, 0usize),
            (JoinKind::Semi, 0),
            (JoinKind::Anti, 3),
            (JoinKind::LeftOuter, 3),
        ] {
            let mut tb = TableBuilder::new("b", bs.clone());
            let btable = tb_finish_empty(&mut tb);
            let mut tp = TableBuilder::new("p", ps.clone());
            for r in &prows {
                tp.push_row(r);
            }
            let ptable = tp.finish();
            let out_schema = match kind {
                JoinKind::Semi | JoinKind::Anti => ps.clone(),
                _ => concat_schemas(&ps, &bs),
            };
            let mut sim = Simulator::new(2);
            let (txb, rxb) = channel::bounded(4);
            let (txp, rxp) = channel::bounded(4);
            let (txo, rxo) = channel::bounded(4);
            sim.spawn(
                "scan_b",
                Box::new(ScanTask::new(
                    btable.pages().to_vec(),
                    OpCost::default(),
                    Fanout::new(vec![txb], 0.0),
                )),
            );
            sim.spawn(
                "scan_p",
                Box::new(ScanTask::new(
                    ptable.pages().to_vec(),
                    OpCost::default(),
                    Fanout::new(vec![txp], 0.0),
                )),
            );
            sim.spawn(
                "join",
                Box::new(HashJoinTask::new(
                    rxb,
                    rxp,
                    0,
                    0,
                    kind,
                    bs.clone(),
                    out_schema,
                    OpCost::default(),
                    OpCost::default(),
                    Fanout::new(vec![txo], 0.0),
                )),
            );
            let out = Rc::new(RefCell::new(Vec::new()));
            sim.spawn(
                "sink",
                Box::new(CollectingSink {
                    rx: rxo,
                    rows: out.clone(),
                }),
            );
            assert!(sim.run_to_idle().completed_all());
            assert_eq!(out.borrow().len(), expect, "{kind:?}");
        }
    }

    fn tb_finish_empty(b: &mut TableBuilder) -> Arc<cordoba_storage::Table> {
        // Build an empty table with the builder's schema.
        std::mem::replace(
            b,
            TableBuilder::new("x", Schema::new(vec![Field::new("d", DataType::Int)])),
        )
        .finish()
    }
}
