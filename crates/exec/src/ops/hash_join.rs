//! Hash join: blocking build over one input, pipelined probe over the
//! other. Supports inner, semi (EXISTS — TPC-H Q4), anti, and left
//! outer (TPC-H Q13) semantics on integer equi-keys.
//!
//! The build side is allocation-free per row: every build page's
//! payload is appended to one contiguous arena in a single copy, and
//! rows sharing a key are chained through index links in a flat entry
//! vector keyed by an [`FxHashMap`] (integer hashing, no SipHash) —
//! the layout Jahangiri et al. (PAPERS.md) show join throughput hinges
//! on, replacing the old `HashMap<i64, Vec<Box<[u8]>>>` with its
//! boxed-row heap allocation per build tuple. Probe keys are gathered
//! page-at-a-time through [`Page::gather_i64`].
//!
//! # Out-of-core operation (dynamic hybrid hash join)
//!
//! With a budgeted [`MemoryBroker`](crate::MemoryBroker) the join
//! follows the dynamic hybrid design of Jahangiri et al.: the build
//! input is split into a growth-aware number of partitions, each
//! starting memory-resident. When a grant is refused, the largest
//! resident partition is the **spill victim** — its arena is dumped to
//! a [`SpillFile`] and further rows for it stream to disk. Probe rows
//! for resident partitions are joined immediately; probe rows for
//! spilled partitions are spilled alongside. After the streaming probe
//! each (build, probe) spill pair is reloaded and joined; a pair whose
//! build side still exceeds the budget is **recursively repartitioned**
//! with a level-seeded hash, up to `max_recursion` levels, after which
//! the query fails with a typed
//! [`ExecError::BudgetExhausted`](crate::ExecError::BudgetExhausted).
//! With an unbounded broker (the default) there is a single resident
//! partition and behaviour is unchanged from the in-memory join.

use crate::cost::OpCost;
use crate::error::ExecError;
use crate::memory::SpillContext;
use crate::ops::{default_row_bytes, int_key, Fanout, Outbox};
use crate::plan::JoinKind;
use cordoba_core::FxHashMap;
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx, VTime};
use cordoba_storage::spill::{SpillFile, SpillReader, SpillWriter};
use cordoba_storage::{Page, PageBuilder, Schema, PAGE_SIZE};
use std::collections::VecDeque;
use std::sync::Arc;

/// Sentinel terminating a bucket chain.
const NIL: u32 = u32::MAX;

/// One chained build row: the byte offset of its row in the arena and
/// the index of the next row with the same key.
#[derive(Debug, Clone, Copy)]
struct BuildEntry {
    offset: u32,
    next: u32,
}

/// The arena-backed hash-join build table: contiguous row bytes,
/// chained same-key rows, and an integer-hashed directory. Insertion
/// performs zero per-row heap allocations (the arena and entry vector
/// grow amortized, by page).
#[derive(Debug, Default)]
pub struct BuildTable {
    /// key -> (first, last) entry index; `last` keeps chains in
    /// insertion order so inner joins emit matches in build order.
    heads: FxHashMap<i64, (u32, u32)>,
    entries: Vec<BuildEntry>,
    arena: Vec<u8>,
    row_width: usize,
    key_scratch: Vec<i64>,
}

impl BuildTable {
    /// Creates an empty build table for rows of `row_width` bytes.
    pub fn new(row_width: usize) -> Self {
        Self {
            row_width,
            ..Self::default()
        }
    }

    /// Number of build rows inserted.
    pub fn rows(&self) -> usize {
        self.entries.len()
    }

    /// Arena bytes in use (diagnostics / memory accounting).
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// The raw row arena — `rows()` contiguous rows of `row_width`
    /// bytes in insertion order (the bulk path for spilling a
    /// partition to disk).
    pub fn arena(&self) -> &[u8] {
        &self.arena
    }

    /// Links the entry for the row at `offset` into `key`'s chain.
    fn link(&mut self, key: i64, offset: usize) {
        let idx = self.entries.len() as u32;
        self.entries.push(BuildEntry {
            offset: offset as u32,
            next: NIL,
        });
        match self.heads.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((idx, idx));
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (_, last) = *e.get();
                self.entries[last as usize].next = idx;
                e.get_mut().1 = idx;
            }
        }
    }

    /// Inserts every row of `page`, keyed by Int column `key_col`: one
    /// bulk payload copy plus one directory update per row.
    ///
    /// # Panics
    ///
    /// Panics if the page's rows are not `row_width` wide or the arena
    /// exceeds `u32` addressing (> 4 GiB of build rows).
    pub fn insert_page(&mut self, page: &Page, key_col: usize) {
        assert_eq!(page.schema().row_width(), self.row_width);
        let base = self.arena.len();
        self.arena.extend_from_slice(page.payload());
        assert!(
            self.arena.len() <= u32::MAX as usize,
            "build arena exceeds u32 addressing"
        );
        let mut keys = std::mem::take(&mut self.key_scratch);
        page.gather_i64(key_col, &mut keys);
        for (r, &key) in keys.iter().enumerate() {
            self.link(key, base + r * self.row_width);
        }
        self.key_scratch = keys;
    }

    /// Inserts a single pre-encoded row under `key` (the partitioned
    /// build path, where a page's rows scatter across partitions).
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not `row_width` bytes or the arena exceeds
    /// `u32` addressing.
    pub fn insert_row(&mut self, key: i64, raw: &[u8]) {
        assert_eq!(raw.len(), self.row_width);
        let base = self.arena.len();
        self.arena.extend_from_slice(raw);
        assert!(
            self.arena.len() <= u32::MAX as usize,
            "build arena exceeds u32 addressing"
        );
        self.link(key, base);
    }

    /// Merges `other` into this table: one bulk arena append plus a
    /// relinked directory. Chains keep insertion order — all of
    /// `self`'s rows for a key precede all of `other`'s — so absorbing
    /// per-worker partition tables in worker order yields one
    /// deterministic table. This is how the parallel partitioned build
    /// folds its per-worker partition sets into the single `BuildTable`
    /// the probe (and the spill path) consume.
    ///
    /// # Panics
    ///
    /// Panics if the row widths differ or the merged arena exceeds
    /// `u32` addressing.
    pub fn absorb(&mut self, other: BuildTable) {
        assert_eq!(other.row_width, self.row_width, "row widths must match");
        let arena_shift = self.arena.len();
        let entry_shift = self.entries.len() as u32;
        self.arena.extend_from_slice(&other.arena);
        assert!(
            self.arena.len() <= u32::MAX as usize,
            "build arena exceeds u32 addressing"
        );
        self.entries.reserve(other.entries.len());
        for e in &other.entries {
            self.entries.push(BuildEntry {
                offset: e.offset + arena_shift as u32,
                next: if e.next == NIL {
                    NIL
                } else {
                    e.next + entry_shift
                },
            });
        }
        for (key, (first, last)) in other.heads {
            let (first, last) = (first + entry_shift, last + entry_shift);
            match self.heads.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((first, last));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (_, own_last) = *e.get();
                    self.entries[own_last as usize].next = first;
                    e.get_mut().1 = last;
                }
            }
        }
    }

    /// Whether any build row has `key`.
    pub fn contains(&self, key: i64) -> bool {
        self.heads.contains_key(&key)
    }

    /// Iterates the raw rows matching `key`, in insertion order.
    pub fn matches(&self, key: i64) -> MatchIter<'_> {
        MatchIter {
            table: self,
            next: self.heads.get(&key).map_or(NIL, |&(first, _)| first),
        }
    }
}

/// Iterator over a key's chained build rows.
pub struct MatchIter<'a> {
    table: &'a BuildTable,
    next: u32,
}

impl<'a> Iterator for MatchIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.next == NIL {
            return None;
        }
        let entry = self.table.entries[self.next as usize];
        self.next = entry.next;
        let at = entry.offset as usize;
        Some(&self.table.arena[at..at + self.table.row_width])
    }
}

/// Routes `key` to one of `parts` partitions. `level` seeds the hash
/// so each repartitioning pass redistributes keys that collided at the
/// previous level. Uses a splitmix64 finalizer rather than FxHash:
/// the routing takes `hash % parts`, and FxHash's low bits are too
/// weak for that (its low bit tracks key parity at every level, which
/// would make recursive repartitioning a no-op).
pub(crate) fn partition_of(key: i64, level: u32, parts: usize) -> usize {
    if parts <= 1 {
        return 0;
    }
    let mut x =
        (key as u64).wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(level) + 1));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % parts as u64) as usize
}

/// Growth-aware initial partition count: with budget `b` bytes and
/// page-granular spill buffers, √(b / page) partitions balance the
/// resident directory against per-partition buffer overhead (the
/// classic hybrid-hash sizing, per Jahangiri et al.). Unbounded
/// brokers get a single partition — the pure in-memory join.
fn initial_partitions(budget: Option<usize>, max_parts: usize) -> usize {
    match budget {
        None => 1,
        Some(b) => {
            let pages = (b / PAGE_SIZE).max(1);
            ((pages as f64).sqrt().ceil() as usize).clamp(2, max_parts)
        }
    }
}

/// One build partition: memory-resident until chosen as a spill
/// victim, on disk afterwards.
enum Partition {
    Resident {
        table: BuildTable,
        /// Bytes granted for `table`'s arena.
        granted: usize,
    },
    // Boxed: `SpilledPart` dwarfs `Resident` and partitions are long
    // vectors of this enum.
    Spilled(Box<SpilledPart>),
}

/// A spilled partition: its build rows stream to disk, and during the
/// probe phase its probe rows do too.
struct SpilledPart {
    writer: Option<SpillWriter>,
    buf: PageBuilder,
    file: Option<SpillFile>,
    probe: Option<ProbeSpill>,
}

/// Probe-side spill stream for one spilled partition.
struct ProbeSpill {
    writer: SpillWriter,
    buf: PageBuilder,
}

impl SpilledPart {
    fn create(spill: &SpillContext, schema: Arc<Schema>) -> Result<Self, ExecError> {
        let writer = SpillWriter::create(&spill.dir, schema.clone())
            .map_err(|e| ExecError::spill("hash join", e))?;
        // One in-flight buffer page that spilling cannot eliminate.
        spill.broker.grant(PAGE_SIZE);
        Ok(SpilledPart {
            writer: Some(writer),
            buf: PageBuilder::new(schema),
            file: None,
            probe: None,
        })
    }

    fn push_build_row(&mut self, raw: &[u8]) -> Result<(), ExecError> {
        if self.buf.is_full() {
            // lint: allow(writer opens with the build phase and closes only in finish_build)
            let writer = self.writer.as_mut().expect("open build writer");
            writer
                .write_page(&self.buf.finish_and_reset())
                .map_err(|e| ExecError::spill("hash join", e))?;
        }
        assert!(self.buf.push_raw(raw));
        Ok(())
    }

    /// Seals the build stream (end of build phase) and releases its
    /// buffer page.
    fn finish_build(&mut self, spill: &SpillContext) -> Result<(), ExecError> {
        // lint: allow(finish_build runs once, while the build writer is still open)
        let mut writer = self.writer.take().expect("open build writer");
        if !self.buf.is_empty() {
            writer
                .write_page(&self.buf.finish_and_reset())
                .map_err(|e| ExecError::spill("hash join", e))?;
        }
        self.file = Some(
            writer
                .finish()
                .map_err(|e| ExecError::spill("hash join", e))?,
        );
        spill.broker.release(PAGE_SIZE);
        Ok(())
    }

    fn push_probe_row(
        &mut self,
        raw: &[u8],
        probe_schema: &Arc<Schema>,
        spill: &SpillContext,
    ) -> Result<(), ExecError> {
        if self.probe.is_none() {
            let writer = SpillWriter::create(&spill.dir, probe_schema.clone())
                .map_err(|e| ExecError::spill("hash join", e))?;
            spill.broker.grant(PAGE_SIZE);
            self.probe = Some(ProbeSpill {
                writer,
                buf: PageBuilder::new(probe_schema.clone()),
            });
        }
        let probe = self.probe.as_mut().expect("just created"); // lint: allow(populated directly above)
        if probe.buf.is_full() {
            probe
                .writer
                .write_page(&probe.buf.finish_and_reset())
                .map_err(|e| ExecError::spill("hash join", e))?;
        }
        assert!(probe.buf.push_raw(raw));
        Ok(())
    }

    /// Seals the probe stream (end of probe phase). Returns the
    /// (build, probe) pair to join later, or `None` when no probe row
    /// ever routed here — every join kind is probe-driven, so a
    /// probe-less partition produces no output.
    fn into_pair(mut self, spill: &SpillContext) -> Result<Option<SpillPair>, ExecError> {
        let Some(mut probe) = self.probe.take() else {
            return Ok(None);
        };
        if !probe.buf.is_empty() {
            probe
                .writer
                .write_page(&probe.buf.finish_and_reset())
                .map_err(|e| ExecError::spill("hash join", e))?;
        }
        let probe_file = probe
            .writer
            .finish()
            .map_err(|e| ExecError::spill("hash join", e))?;
        spill.broker.release(PAGE_SIZE);
        if probe_file.rows() == 0 {
            return Ok(None);
        }
        let build = self.file.take().filter(|f| f.rows() > 0);
        Ok(Some(SpillPair {
            build,
            probe: probe_file,
            level: 1,
        }))
    }
}

/// A spilled (build, probe) pair awaiting its out-of-core join.
/// `build: None` means the build side was empty — Anti and LeftOuter
/// still emit for such pairs, so the probe file is joined against an
/// empty table.
struct SpillPair {
    build: Option<SpillFile>,
    probe: SpillFile,
    level: u32,
}

/// The pair currently being joined: its reloaded build table and the
/// streaming probe reader.
struct ActivePair {
    table: BuildTable,
    /// Bytes granted for the reloaded table.
    granted: usize,
    reader: SpillReader,
    /// Bytes granted for the probe page in flight.
    page_granted: usize,
}

enum PhaseState {
    Building,
    Probing,
    /// Streaming probe done; joining spilled partition pairs.
    SpillJoin,
    Flushing,
    Done,
}

/// Hash-join task.
pub struct HashJoinTask {
    rx_build: Receiver<Arc<Page>>,
    rx_probe: Receiver<Arc<Page>>,
    build_key: usize,
    probe_key: usize,
    kind: JoinKind,
    build_cost: OpCost,
    probe_cost: OpCost,
    build_schema: Arc<Schema>,
    probe_schema: Arc<Schema>,
    build_defaults: Vec<u8>,
    builder: PageBuilder,
    outbox: Outbox,
    state: PhaseState,
    probe_keys: Vec<i64>,
    spill: SpillContext,
    partitions: Vec<Partition>,
    pending: VecDeque<SpillPair>,
    active: Option<ActivePair>,
}

impl HashJoinTask {
    /// Creates a hash join.
    ///
    /// `out_schema` must be the plan-derived schema for `kind`
    /// (probe ++ build for Inner/LeftOuter, probe only for Semi/Anti);
    /// `build_schema` / `probe_schema` are the input schemas (default
    /// fill for outer joins, key-column validation). `spill` supplies
    /// the query's memory account and spill policy;
    /// [`SpillContext::unbounded`] reproduces the fully in-memory
    /// behaviour. Errs when a key column is out of range or not `Int`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rx_build: Receiver<Arc<Page>>,
        rx_probe: Receiver<Arc<Page>>,
        build_key: usize,
        probe_key: usize,
        kind: JoinKind,
        build_schema: Arc<Schema>,
        probe_schema: &Arc<Schema>,
        out_schema: Arc<Schema>,
        build_cost: OpCost,
        probe_cost: OpCost,
        fanout: Fanout,
        spill: SpillContext,
    ) -> Result<Self, ExecError> {
        int_key("hash join build", &build_schema, build_key)?;
        int_key("hash join probe", probe_schema, probe_key)?;
        let parts = initial_partitions(spill.broker.budget(), spill.max_partitions);
        let partitions = (0..parts)
            .map(|_| Partition::Resident {
                table: BuildTable::new(build_schema.row_width()),
                granted: 0,
            })
            .collect();
        Ok(Self {
            rx_build,
            rx_probe,
            build_key,
            probe_key,
            kind,
            build_cost,
            probe_cost,
            build_defaults: default_row_bytes(&build_schema),
            build_schema,
            probe_schema: probe_schema.clone(),
            builder: PageBuilder::new(out_schema),
            outbox: Outbox::new(fanout),
            state: PhaseState::Building,
            probe_keys: Vec::new(),
            spill,
            partitions,
            pending: VecDeque::new(),
            active: None,
        })
    }

    /// Routes one build page into the partitions, spilling victims
    /// until the resident demand fits the budget.
    fn build_page(&mut self, page: &Page) -> Result<(), ExecError> {
        let w = self.build_schema.row_width();
        if self.partitions.len() == 1 {
            // Unbounded fast path: bulk arena append, as before the
            // broker existed (try_grant on an unbounded broker always
            // succeeds; it exists to keep the accounting honest).
            let bytes = page.byte_len();
            self.spill.broker.try_grant(bytes);
            let Partition::Resident { table, granted } = &mut self.partitions[0] else {
                // lint: allow(partition 0 stays resident when partitioning is disabled)
                unreachable!("single partition never spills");
            };
            *granted += bytes;
            table.insert_page(page, self.build_key);
            return Ok(());
        }
        page.gather_i64(self.build_key, &mut self.probe_keys);
        let parts = self.partitions.len();
        loop {
            // Bytes this page adds to *resident* partitions.
            let mut demand = 0usize;
            for &key in &self.probe_keys {
                if let Partition::Resident { .. } = self.partitions[partition_of(key, 0, parts)] {
                    demand += w;
                }
            }
            if demand == 0 || self.spill.broker.try_grant(demand) {
                break;
            }
            if !self.spill_victim()? {
                // Nothing left to spill; take the memory anyway (a
                // single page exceeding the whole budget).
                self.spill.broker.grant(demand);
                break;
            }
        }
        for (raw, &key) in page.raw_rows().zip(&self.probe_keys) {
            match &mut self.partitions[partition_of(key, 0, parts)] {
                Partition::Resident { table, granted } => {
                    table.insert_row(key, raw);
                    *granted += w;
                }
                Partition::Spilled(sp) => sp.push_build_row(raw)?,
            }
        }
        Ok(())
    }

    /// Spills the resident partition holding the most granted memory.
    /// Returns `false` when no resident partition remains.
    fn spill_victim(&mut self) -> Result<bool, ExecError> {
        let victim = self
            .partitions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Partition::Resident { granted, .. } => Some((i, *granted)),
                Partition::Spilled(_) => None,
            })
            .max_by_key(|&(_, g)| g)
            .map(|(i, _)| i);
        let Some(v) = victim else {
            return Ok(false);
        };
        let replacement = Box::new(SpilledPart::create(&self.spill, self.build_schema.clone())?);
        let Partition::Resident { table, granted } =
            std::mem::replace(&mut self.partitions[v], Partition::Spilled(replacement))
        else {
            // lint: allow(pick_victim only returns resident partitions)
            unreachable!("victim chosen among residents");
        };
        let Partition::Spilled(sp) = &mut self.partitions[v] else {
            unreachable!("just replaced"); // lint: allow(std::mem::replace above installed the Spilled variant)
        };
        sp.writer
            .as_mut()
            .expect("fresh writer") // lint: allow(SpilledPart::create returns with its writer open)
            .write_raw_rows(table.arena(), table.rows())
            .map_err(|e| ExecError::spill("hash join", e))?;
        self.spill.broker.release(granted);
        Ok(true)
    }

    /// End of build input: seal every spilled partition's build stream.
    fn finish_build(&mut self) -> Result<(), ExecError> {
        for i in 0..self.partitions.len() {
            if let Partition::Spilled(sp) = &mut self.partitions[i] {
                sp.finish_build(&self.spill)?;
            }
        }
        Ok(())
    }

    /// Probes one page: resident partitions join immediately, spilled
    /// partitions buffer the probe row to disk.
    fn probe_page(&mut self, page: &Page) -> Result<(), ExecError> {
        page.gather_i64(self.probe_key, &mut self.probe_keys);
        let parts = self.partitions.len();
        for (probe_raw, &key) in page.raw_rows().zip(&self.probe_keys) {
            match &mut self.partitions[partition_of(key, 0, parts)] {
                Partition::Resident { table, .. } => probe_row(
                    self.kind,
                    table,
                    key,
                    probe_raw,
                    &mut self.builder,
                    &mut self.outbox,
                    &self.build_defaults,
                ),
                Partition::Spilled(sp) => {
                    sp.push_probe_row(probe_raw, &self.probe_schema, &self.spill)?
                }
            }
        }
        Ok(())
    }

    /// End of probe input: release resident partitions, queue spilled
    /// pairs for the out-of-core join phase.
    fn finish_probe(&mut self) -> Result<(), ExecError> {
        for part in std::mem::take(&mut self.partitions) {
            match part {
                Partition::Resident { granted, .. } => self.spill.broker.release(granted),
                Partition::Spilled(sp) => {
                    if let Some(pair) = sp.into_pair(&self.spill)? {
                        self.pending.push_back(pair);
                    }
                }
            }
        }
        Ok(())
    }

    /// One step of the spilled-pair join: probe one page of the active
    /// pair, or start the next pair. Returns the virtual cost and
    /// whether every pair is done.
    fn spill_join_step(&mut self) -> Result<(VTime, bool), ExecError> {
        if let Some(active) = &mut self.active {
            match active
                .reader
                .next_page()
                .map_err(|e| ExecError::spill("hash join", e))?
            {
                Some(page) => {
                    self.spill.broker.release(active.page_granted);
                    active.page_granted = page.byte_len();
                    self.spill.broker.grant(active.page_granted);
                    page.gather_i64(self.probe_key, &mut self.probe_keys);
                    for (probe_raw, &key) in page.raw_rows().zip(&self.probe_keys) {
                        probe_row(
                            self.kind,
                            &active.table,
                            key,
                            probe_raw,
                            &mut self.builder,
                            &mut self.outbox,
                            &self.build_defaults,
                        );
                    }
                    Ok((self.probe_cost.input_cost(page.rows()).max(1), false))
                }
                None => {
                    self.spill
                        .broker
                        .release(active.page_granted + active.granted);
                    self.active = None;
                    Ok((1, false))
                }
            }
        } else if let Some(pair) = self.pending.pop_front() {
            self.start_pair(pair)?;
            Ok((1, false))
        } else {
            Ok((1, true))
        }
    }

    /// Activates a spilled pair: reload its build side if it fits the
    /// budget, otherwise repartition (or fail at the recursion cap).
    fn start_pair(&mut self, pair: SpillPair) -> Result<(), ExecError> {
        let build_bytes = pair.build.as_ref().map_or(0, |f| f.bytes() as usize);
        if build_bytes == 0 || self.spill.broker.try_grant(build_bytes) {
            let mut table = BuildTable::new(self.build_schema.row_width());
            if let Some(file) = pair.build {
                let mut reader = file
                    .into_reader()
                    .map_err(|e| ExecError::spill("hash join", e))?;
                while let Some(page) = reader
                    .next_page()
                    .map_err(|e| ExecError::spill("hash join", e))?
                {
                    table.insert_page(&page, self.build_key);
                }
            }
            let reader = pair
                .probe
                .into_reader()
                .map_err(|e| ExecError::spill("hash join", e))?;
            self.active = Some(ActivePair {
                table,
                granted: build_bytes,
                reader,
                page_granted: 0,
            });
            Ok(())
        } else if pair.level >= self.spill.max_recursion {
            Err(ExecError::BudgetExhausted {
                op: "hash join",
                detail: format!(
                    "build partition of {build_bytes} B still exceeds the budget after {} \
                     repartitioning levels (skewed key?)",
                    pair.level
                ),
            })
        } else {
            self.repartition(pair)
        }
    }

    /// Splits an oversized pair into sub-pairs with a deeper-level
    /// hash, sized so each sub-build targets half the budget.
    fn repartition(&mut self, pair: SpillPair) -> Result<(), ExecError> {
        let budget = self.spill.broker.budget().unwrap_or(usize::MAX);
        let build_bytes = pair.build.as_ref().map_or(0, |f| f.bytes() as usize);
        let fan = build_bytes
            .div_ceil((budget / 2).max(PAGE_SIZE))
            .clamp(2, self.spill.max_partitions);
        // Transient buffer pages for both splits' writers.
        let overhead = 2 * fan * PAGE_SIZE;
        self.spill.broker.grant(overhead);
        let result = self.repartition_inner(pair, fan);
        self.spill.broker.release(overhead);
        result
    }

    fn repartition_inner(&mut self, pair: SpillPair, fan: usize) -> Result<(), ExecError> {
        let level = pair.level;
        let builds = match pair.build {
            Some(file) => self.split_file(file, self.build_key, fan, level)?,
            None => (0..fan).map(|_| None).collect(),
        };
        let probes = self.split_file(pair.probe, self.probe_key, fan, level)?;
        for (build, probe) in builds.into_iter().zip(probes) {
            // Probe-less sub-pairs produce no output for any join kind.
            if let Some(probe) = probe {
                self.pending.push_back(SpillPair {
                    build,
                    probe,
                    level: level + 1,
                });
            }
        }
        Ok(())
    }

    /// Hash-splits one spill file into `fan` new files by `key_col`,
    /// seeded with `level`. Empty outputs come back as `None`.
    fn split_file(
        &mut self,
        file: SpillFile,
        key_col: usize,
        fan: usize,
        level: u32,
    ) -> Result<Vec<Option<SpillFile>>, ExecError> {
        let schema = file.schema().clone();
        let mut outs: Vec<(SpillWriter, PageBuilder)> = Vec::with_capacity(fan);
        for _ in 0..fan {
            let writer = SpillWriter::create(&self.spill.dir, schema.clone())
                .map_err(|e| ExecError::spill("hash join", e))?;
            outs.push((writer, PageBuilder::new(schema.clone())));
        }
        let mut reader = file
            .into_reader()
            .map_err(|e| ExecError::spill("hash join", e))?;
        while let Some(page) = reader
            .next_page()
            .map_err(|e| ExecError::spill("hash join", e))?
        {
            page.gather_i64(key_col, &mut self.probe_keys);
            for (raw, &key) in page.raw_rows().zip(&self.probe_keys) {
                let (writer, buf) = &mut outs[partition_of(key, level, fan)];
                if buf.is_full() {
                    writer
                        .write_page(&buf.finish_and_reset())
                        .map_err(|e| ExecError::spill("hash join", e))?;
                }
                assert!(buf.push_raw(raw));
            }
        }
        let mut files = Vec::with_capacity(fan);
        for (mut writer, mut buf) in outs {
            if !buf.is_empty() {
                writer
                    .write_page(&buf.finish_and_reset())
                    .map_err(|e| ExecError::spill("hash join", e))?;
            }
            let file = writer
                .finish()
                .map_err(|e| ExecError::spill("hash join", e))?;
            files.push(if file.rows() == 0 { None } else { Some(file) });
        }
        Ok(files)
    }

    /// Aborts the query: records the fault, cancels both inputs, frees
    /// spill state and closes the output without the drain check.
    fn fail(&mut self, ctx: &mut TaskCtx<'_>, err: ExecError) -> Step {
        self.spill.fault.set(err);
        self.rx_build.close(ctx);
        self.rx_probe.close(ctx);
        self.partitions.clear();
        self.pending.clear();
        self.active = None;
        self.outbox.abandon();
        self.outbox.close(ctx);
        self.state = PhaseState::Done;
        Step::done(1)
    }
}

/// Joins one probe row against a build table, emitting per `kind` into
/// the builder/outbox.
fn probe_row(
    kind: JoinKind,
    table: &BuildTable,
    key: i64,
    probe_raw: &[u8],
    builder: &mut PageBuilder,
    outbox: &mut Outbox,
    build_defaults: &[u8],
) {
    match kind {
        JoinKind::Inner => {
            for build_raw in table.matches(key) {
                emit_row(builder, outbox, probe_raw, build_raw);
            }
        }
        JoinKind::Semi => {
            if table.contains(key) {
                emit_row(builder, outbox, probe_raw, &[]);
            }
        }
        JoinKind::Anti => {
            if !table.contains(key) {
                emit_row(builder, outbox, probe_raw, &[]);
            }
        }
        JoinKind::LeftOuter => {
            let mut m = table.matches(key).peekable();
            if m.peek().is_none() {
                emit_row(builder, outbox, probe_raw, build_defaults);
            } else {
                for build_raw in m {
                    emit_row(builder, outbox, probe_raw, build_raw);
                }
            }
        }
    }
}

/// Appends `probe_raw ++ build_raw` to the builder, spilling full pages
/// to the outbox. The two fragments are written directly — no
/// intermediate row scratch buffer.
fn emit_row(builder: &mut PageBuilder, outbox: &mut Outbox, probe_raw: &[u8], build_raw: &[u8]) {
    if builder.is_full() {
        outbox.push(builder.finish_and_reset());
    }
    assert!(builder.push_raw_parts(probe_raw, build_raw));
}

impl Task for HashJoinTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        match self.state {
            PhaseState::Building => match self.rx_build.try_recv(ctx) {
                Recv::Value(page) => {
                    if **page.schema() != *self.build_schema {
                        return self.fail(
                            ctx,
                            input_mismatch(&self.build_schema, &page, "build input"),
                        );
                    }
                    let n = page.rows();
                    cost += self.build_cost.input_cost(n);
                    ctx.add_progress(n as f64);
                    if let Err(err) = self.build_page(&page) {
                        return self.fail(ctx, err);
                    }
                    Step::yielded(cost)
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    if let Err(err) = self.finish_build() {
                        return self.fail(ctx, err);
                    }
                    self.state = PhaseState::Probing;
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::Probing => match self.rx_probe.try_recv(ctx) {
                Recv::Value(page) => {
                    if **page.schema() != *self.probe_schema {
                        return self.fail(
                            ctx,
                            input_mismatch(&self.probe_schema, &page, "probe input"),
                        );
                    }
                    let n = page.rows();
                    cost += self.probe_cost.input_cost(n);
                    ctx.add_progress(n as f64);
                    if let Err(err) = self.probe_page(&page) {
                        return self.fail(ctx, err);
                    }
                    let (c, drained) = self.outbox.flush(ctx);
                    cost += c;
                    if drained {
                        Step::yielded(cost)
                    } else {
                        Step::blocked(cost)
                    }
                }
                Recv::Empty => Step::blocked(cost),
                Recv::Closed => {
                    if let Err(err) = self.finish_probe() {
                        return self.fail(ctx, err);
                    }
                    self.state = if self.pending.is_empty() {
                        PhaseState::Flushing
                    } else {
                        PhaseState::SpillJoin
                    };
                    Step::yielded(cost.max(1))
                }
            },
            PhaseState::SpillJoin => match self.spill_join_step() {
                Ok((c, finished)) => {
                    cost += c;
                    if finished {
                        self.state = PhaseState::Flushing;
                    }
                    let (c, drained) = self.outbox.flush(ctx);
                    cost += c;
                    if drained {
                        Step::yielded(cost)
                    } else {
                        Step::blocked(cost)
                    }
                }
                Err(err) => self.fail(ctx, err),
            },
            PhaseState::Flushing => {
                if !self.builder.is_empty() {
                    let tail = self.builder.finish_and_reset();
                    self.outbox.push(tail);
                }
                self.state = PhaseState::Done;
                let (c, drained) = self.outbox.flush(ctx);
                cost += c + 1;
                if drained {
                    Step::yielded(cost)
                } else {
                    Step::blocked(cost)
                }
            }
            PhaseState::Done => {
                self.outbox.close(ctx);
                Step::done(cost)
            }
        }
    }
}

/// Builds the typed fault for a page whose schema differs from what
/// the operator was wired for.
fn input_mismatch(expected: &Arc<Schema>, page: &Page, which: &str) -> ExecError {
    ExecError::InputPageMismatch {
        op: "hash join",
        detail: format!(
            "{which}: expected {} columns / {} B rows, got {} columns / {} B rows",
            expected.len(),
            expected.row_width(),
            page.schema().len(),
            page.schema().row_width()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBroker;
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use crate::plan::concat_schemas;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn build_side() -> (Arc<Schema>, Vec<Vec<Value>>) {
        let schema = Schema::new(vec![
            Field::new("bk", DataType::Int),
            Field::new("bv", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(2), Value::Int(21)],
            vec![Value::Int(4), Value::Int(40)],
        ];
        (schema, rows)
    }

    fn probe_side() -> (Arc<Schema>, Vec<Vec<Value>>) {
        let schema = Schema::new(vec![
            Field::new("pk", DataType::Int),
            Field::new("pv", DataType::Int),
        ]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(100)],
            vec![Value::Int(2), Value::Int(200)],
            vec![Value::Int(3), Value::Int(300)],
        ];
        (schema, rows)
    }

    #[test]
    fn build_table_chains_preserve_insertion_order() {
        let (schema, rows) = build_side();
        let mut tb = TableBuilder::new("b", schema.clone());
        for r in &rows {
            tb.push_row(r);
        }
        let table = tb.finish();
        let mut bt = BuildTable::new(schema.row_width());
        for page in table.pages() {
            bt.insert_page(page, 0);
        }
        assert_eq!(bt.rows(), 4);
        assert_eq!(bt.arena_bytes(), 4 * schema.row_width());
        assert!(bt.contains(1) && bt.contains(2) && bt.contains(4));
        assert!(!bt.contains(3));
        // Key 2's two rows come back in build order (20 then 21).
        let values: Vec<i64> = bt
            .matches(2)
            .map(|raw| i64::from_le_bytes(raw[8..16].try_into().unwrap()))
            .collect();
        assert_eq!(values, vec![20, 21]);
        assert_eq!(bt.matches(99).count(), 0);
    }

    #[test]
    fn insert_row_matches_insert_page() {
        let (schema, rows) = build_side();
        let mut tb = TableBuilder::new("b", schema.clone());
        for r in &rows {
            tb.push_row(r);
        }
        let table = tb.finish();
        let mut bulk = BuildTable::new(schema.row_width());
        let mut single = BuildTable::new(schema.row_width());
        for page in table.pages() {
            bulk.insert_page(page, 0);
            let mut keys = Vec::new();
            page.gather_i64(0, &mut keys);
            for (raw, &key) in page.raw_rows().zip(&keys) {
                single.insert_row(key, raw);
            }
        }
        assert_eq!(bulk.arena(), single.arena());
        for key in [1, 2, 3, 4] {
            assert_eq!(
                bulk.matches(key).collect::<Vec<_>>(),
                single.matches(key).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn partition_hash_depends_on_level() {
        let spread =
            |level: u32| -> Vec<usize> { (0..64).map(|k| partition_of(k, level, 4)).collect() };
        assert_ne!(spread(0), spread(1), "levels must redistribute keys");
        assert!(spread(0).iter().all(|&p| p < 4));
        assert_eq!(partition_of(123, 0, 1), 0);
    }

    #[test]
    fn initial_partition_count_is_growth_aware() {
        assert_eq!(initial_partitions(None, 64), 1);
        // 16 pages -> √16 = 4 partitions.
        assert_eq!(initial_partitions(Some(16 * PAGE_SIZE), 64), 4);
        // Tiny budgets still get the minimum split.
        assert_eq!(initial_partitions(Some(1), 64), 2);
        // The cap wins for huge budgets.
        assert_eq!(initial_partitions(Some(1 << 30), 8), 8);
    }

    fn run_join_with(kind: JoinKind, spill: SpillContext) -> Vec<Vec<Value>> {
        let (bs, brows) = build_side();
        let (ps, prows) = probe_side();
        run_join_rows(kind, spill, (bs, brows), (ps, prows))
    }

    fn run_join_rows(
        kind: JoinKind,
        spill: SpillContext,
        (bs, brows): (Arc<Schema>, Vec<Vec<Value>>),
        (ps, prows): (Arc<Schema>, Vec<Vec<Value>>),
    ) -> Vec<Vec<Value>> {
        let mut tb = TableBuilder::new("b", bs.clone());
        for r in &brows {
            tb.push_row(r);
        }
        let btable = tb.finish();
        let mut tp = TableBuilder::new("p", ps.clone());
        for r in &prows {
            tp.push_row(r);
        }
        let ptable = tp.finish();

        let out_schema = match kind {
            JoinKind::Semi | JoinKind::Anti => ps.clone(),
            _ => concat_schemas(&ps, &bs),
        };
        let mut sim = Simulator::new(2);
        let (txb, rxb) = channel::bounded(4);
        let (txp, rxp) = channel::bounded(4);
        let (txo, rxo) = channel::bounded(4);
        sim.spawn(
            "scan_b",
            Box::new(ScanTask::new(
                btable.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txb], 0.0),
            )),
        );
        sim.spawn(
            "scan_p",
            Box::new(ScanTask::new(
                ptable.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txp], 0.0),
            )),
        );
        let fault = spill.fault.clone();
        sim.spawn(
            "join",
            Box::new(
                HashJoinTask::new(
                    rxb,
                    rxp,
                    0,
                    0,
                    kind,
                    bs,
                    &ps,
                    out_schema,
                    OpCost::default(),
                    OpCost::default(),
                    Fanout::new(vec![txo], 0.0),
                    spill,
                )
                .expect("valid keys"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rxo,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        assert_eq!(fault.get(), None, "join must not fault");
        let out = out.borrow().clone();
        out
    }

    fn run_join(kind: JoinKind) -> Vec<Vec<Value>> {
        run_join_with(kind, SpillContext::unbounded())
    }

    #[test]
    fn inner_join_expands_matches() {
        let got = run_join(JoinKind::Inner);
        assert_eq!(
            got,
            vec![
                vec![
                    Value::Int(1),
                    Value::Int(100),
                    Value::Int(1),
                    Value::Int(10)
                ],
                vec![
                    Value::Int(2),
                    Value::Int(200),
                    Value::Int(2),
                    Value::Int(20)
                ],
                vec![
                    Value::Int(2),
                    Value::Int(200),
                    Value::Int(2),
                    Value::Int(21)
                ],
            ]
        );
    }

    #[test]
    fn semi_join_emits_probe_rows_once() {
        let got = run_join(JoinKind::Semi);
        assert_eq!(
            got,
            vec![
                vec![Value::Int(1), Value::Int(100)],
                vec![Value::Int(2), Value::Int(200)],
            ]
        );
    }

    #[test]
    fn anti_join_emits_unmatched() {
        let got = run_join(JoinKind::Anti);
        assert_eq!(got, vec![vec![Value::Int(3), Value::Int(300)]]);
    }

    #[test]
    fn left_outer_fills_defaults() {
        let got = run_join(JoinKind::LeftOuter);
        assert_eq!(got.len(), 4);
        // Probe key 3 has no build match: build columns defaulted to 0.
        assert_eq!(
            got[3],
            vec![Value::Int(3), Value::Int(300), Value::Int(0), Value::Int(0)]
        );
    }

    #[test]
    fn empty_build_side() {
        // Inner/semi produce nothing; anti/left-outer pass all probe rows.
        let (bs, _) = build_side();
        let (ps, prows) = probe_side();
        for (kind, expect) in [
            (JoinKind::Inner, 0usize),
            (JoinKind::Semi, 0),
            (JoinKind::Anti, 3),
            (JoinKind::LeftOuter, 3),
        ] {
            let got = run_join_rows(
                kind,
                SpillContext::unbounded(),
                (bs.clone(), vec![]),
                (ps.clone(), prows.clone()),
            );
            assert_eq!(got.len(), expect, "{kind:?}");
        }
    }

    /// One join input: its schema and rows.
    type SideFixture = (Arc<Schema>, Vec<Vec<Value>>);

    /// Big skew-free inputs for the spill tests: build is ~4× a small
    /// budget, probe hits every key zero or more times.
    fn spill_fixture() -> (SideFixture, SideFixture) {
        let bs = Schema::new(vec![
            Field::new("bk", DataType::Int),
            Field::new("bv", DataType::Int),
        ]);
        let ps = Schema::new(vec![
            Field::new("pk", DataType::Int),
            Field::new("pv", DataType::Int),
        ]);
        let brows: Vec<Vec<Value>> = (0..8000)
            .map(|i| vec![Value::Int(i % 1500), Value::Int(i)])
            .collect();
        let prows: Vec<Vec<Value>> = (0..3000)
            .map(|i| vec![Value::Int((i * 7) % 2000), Value::Int(i + 1_000_000)])
            .collect();
        ((bs, brows), (ps, prows))
    }

    fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    #[test]
    fn tiny_budget_join_matches_in_memory_for_all_kinds() {
        let (build, probe) = spill_fixture();
        for kind in [
            JoinKind::Inner,
            JoinKind::Semi,
            JoinKind::Anti,
            JoinKind::LeftOuter,
        ] {
            let want = run_join_rows(
                kind,
                SpillContext::unbounded(),
                (build.0.clone(), build.1.clone()),
                (probe.0.clone(), probe.1.clone()),
            );
            let spill = SpillContext::with_budget(8 * PAGE_SIZE);
            let broker = spill.broker.clone();
            let got = run_join_rows(
                kind,
                spill,
                (build.0.clone(), build.1.clone()),
                (probe.0.clone(), probe.1.clone()),
            );
            assert!(broker.peak() > 0);
            assert_eq!(broker.used(), 0, "{kind:?}: all grants released");
            assert_eq!(sorted(got), sorted(want), "{kind:?}");
        }
    }

    #[test]
    fn multi_level_recursion_still_joins_correctly() {
        // max_partitions = 2 with a build ≫ budget forces sub-pairs to
        // repartition recursively before they fit.
        let (build, probe) = spill_fixture();
        let want = run_join_rows(
            JoinKind::Inner,
            SpillContext::unbounded(),
            (build.0.clone(), build.1.clone()),
            (probe.0.clone(), probe.1.clone()),
        );
        let mut spill = SpillContext::with_budget(4 * PAGE_SIZE);
        spill.max_partitions = 2;
        spill.max_recursion = 8;
        let got = run_join_rows(JoinKind::Inner, spill, build, probe);
        assert_eq!(sorted(got), sorted(want));
    }

    #[test]
    fn skewed_key_exhausts_budget_with_typed_error() {
        // Every build row has the same key: no amount of repartitioning
        // shrinks the partition, so the recursion cap must trip.
        let bs = Schema::new(vec![
            Field::new("bk", DataType::Int),
            Field::new("bv", DataType::Int),
        ]);
        let ps = Schema::new(vec![
            Field::new("pk", DataType::Int),
            Field::new("pv", DataType::Int),
        ]);
        let brows: Vec<Vec<Value>> = (0..8000)
            .map(|i| vec![Value::Int(42), Value::Int(i)])
            .collect();
        let prows = vec![vec![Value::Int(42), Value::Int(0)]];

        let mut tb = TableBuilder::new("b", bs.clone());
        for r in &brows {
            tb.push_row(r);
        }
        let btable = tb.finish();
        let mut tp = TableBuilder::new("p", ps.clone());
        for r in &prows {
            tp.push_row(r);
        }
        let ptable = tp.finish();

        let mut sim = Simulator::new(2);
        let (txb, rxb) = channel::bounded(4);
        let (txp, rxp) = channel::bounded(4);
        let (txo, rxo) = channel::bounded(4);
        sim.spawn(
            "scan_b",
            Box::new(ScanTask::new(
                btable.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txb], 0.0),
            )),
        );
        sim.spawn(
            "scan_p",
            Box::new(ScanTask::new(
                ptable.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txp], 0.0),
            )),
        );
        let mut spill = SpillContext::with_budget(4 * PAGE_SIZE);
        spill.max_recursion = 2;
        let fault = spill.fault.clone();
        sim.spawn(
            "join",
            Box::new(
                HashJoinTask::new(
                    rxb,
                    rxp,
                    0,
                    0,
                    JoinKind::Inner,
                    bs.clone(),
                    &ps,
                    concat_schemas(&ps, &bs),
                    OpCost::default(),
                    OpCost::default(),
                    Fanout::new(vec![txo], 0.0),
                    spill,
                )
                .expect("valid keys"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rxo,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        assert!(
            matches!(
                fault.get(),
                Some(ExecError::BudgetExhausted {
                    op: "hash join",
                    ..
                })
            ),
            "got {:?}",
            fault.get()
        );
    }

    #[test]
    fn mismatched_probe_page_faults_instead_of_panicking() {
        let (bs, brows) = build_side();
        let (ps, _) = probe_side();
        // Probe pages arrive with the *build* schema widths but a
        // different column count — a malformed upstream.
        let wrong = Schema::new(vec![Field::new("solo", DataType::Int)]);
        let mut tb = TableBuilder::new("b", bs.clone());
        for r in &brows {
            tb.push_row(r);
        }
        let btable = tb.finish();
        let mut tw = TableBuilder::new("w", wrong.clone());
        tw.push_row(&[Value::Int(1)]);
        let wtable = tw.finish();

        let mut sim = Simulator::new(2);
        let (txb, rxb) = channel::bounded(4);
        let (txp, rxp) = channel::bounded(4);
        let (txo, rxo) = channel::bounded(4);
        sim.spawn(
            "scan_b",
            Box::new(ScanTask::new(
                btable.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txb], 0.0),
            )),
        );
        sim.spawn(
            "scan_w",
            Box::new(ScanTask::new(
                wtable.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![txp], 0.0),
            )),
        );
        let spill = SpillContext::unbounded();
        let fault = spill.fault.clone();
        sim.spawn(
            "join",
            Box::new(
                HashJoinTask::new(
                    rxb,
                    rxp,
                    0,
                    0,
                    JoinKind::Inner,
                    bs.clone(),
                    &ps,
                    concat_schemas(&ps, &bs),
                    OpCost::default(),
                    OpCost::default(),
                    Fanout::new(vec![txo], 0.0),
                    spill,
                )
                .expect("valid keys"),
            ),
        );
        let out = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rxo,
                rows: out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        assert!(
            matches!(
                fault.get(),
                Some(ExecError::InputPageMismatch {
                    op: "hash join",
                    ..
                })
            ),
            "got {:?}",
            fault.get()
        );
        assert!(out.borrow().is_empty());
    }

    #[test]
    fn spilled_join_peak_stays_near_budget() {
        let (build, probe) = spill_fixture();
        // Build side ~125 KiB vs a 32 KiB budget (≈4× over).
        let budget = 8 * PAGE_SIZE;
        let spill = SpillContext {
            broker: MemoryBroker::with_budget(budget),
            ..SpillContext::unbounded()
        };
        let broker = spill.broker.clone();
        let got = run_join_rows(JoinKind::Inner, spill, build, probe);
        assert!(!got.is_empty());
        assert!(
            broker.peak() <= budget + budget / 4,
            "peak {} exceeds 1.25 × budget {}",
            broker.peak(),
            budget
        );
    }
}
