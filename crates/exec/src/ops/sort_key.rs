//! Order-preserving packed sort keys: the sort/merge analogue of the
//! aggregate's packed group keys.
//!
//! Any key-column combination totalling ≤ 8 bytes (a single `Int`,
//! `Float` or `Date`, short strings, `Date`+flag composites) packs into
//! one `u64` per row whose **unsigned integer order equals the
//! tuple-key order** the tree-walking [`key_of`](super::key_of) path
//! produces. Key extraction then runs page-at-a-time — one typed
//! [`Page`] gather per key column folded into the packed buffer —
//! instead of materializing a `Vec<KeyVal>` (one heap allocation plus
//! per-field dispatch) for every row, and the sort itself compares
//! single machine words instead of walking enum vectors.
//!
//! Per-column encodings (each placed big-endian-style, major key in the
//! most significant bytes, zero-padded at the bottom):
//!
//! * `Int`: `x ^ i64::MIN` reinterpreted as `u64` (sign-bit flip maps
//!   signed order onto unsigned order);
//! * `Date`: the same bias on the `i32` day number (4 bytes);
//! * `Float`: the IEEE total-order trick — negative values bit-flip,
//!   positive values set the sign bit — matching
//!   [`TotalF64`](super::TotalF64)'s `total_cmp` order exactly;
//! * `Str(n)`: the trailing-space-trimmed bytes padded with `0x00`,
//!   matching the trimmed-string comparison of `KeyVal::Str` for all
//!   ASCII contents (pages store only ASCII).

use super::{key_of, KeyVal};
use cordoba_storage::{DataType, Page, Schema};
use std::sync::Arc;

/// One key column in a packed layout: where it lives in the row and
/// how far its encoding shifts left within the packed `u64`.
#[derive(Debug, Clone, Copy)]
struct PackedField {
    col: usize,
    offset: usize,
    width: usize,
    shift: u32,
    dtype: DataType,
}

/// Reusable typed gather buffers for packed key extraction.
#[derive(Debug, Default)]
pub struct KeyScratch {
    i: Vec<i64>,
    f: Vec<f64>,
    d: Vec<i32>,
}

/// A packed sort-key layout for key columns totalling ≤ 8 bytes.
#[derive(Debug, Clone)]
pub struct PackedKeySpec {
    fields: Vec<PackedField>,
}

impl PackedKeySpec {
    /// Builds the packed layout for `keys` (major first) over `schema`,
    /// or `None` when the combined key width exceeds 8 bytes (callers
    /// fall back to the general `Vec<KeyVal>` path). Column indices
    /// must be in range (validated by the operator constructors).
    pub fn try_new(schema: &Arc<Schema>, keys: &[usize]) -> Option<Self> {
        let total: usize = keys.iter().map(|&c| schema.fields()[c].dtype.width()).sum();
        if total > 8 {
            return None;
        }
        let mut fields = Vec::with_capacity(keys.len());
        let mut at = 0usize;
        for &col in keys {
            let dtype = schema.fields()[col].dtype;
            let width = dtype.width();
            fields.push(PackedField {
                col,
                offset: schema.offset(col),
                width,
                shift: (8 * (8 - at - width)) as u32,
                dtype,
            });
            at += width;
        }
        Some(Self { fields })
    }

    /// Appends one packed key per row of `page` to `out` — one typed
    /// column gather per numeric key field, one raw-row pass per string
    /// field, no per-row allocation.
    pub fn extend_keys(&self, page: &Page, scratch: &mut KeyScratch, out: &mut Vec<u64>) {
        let start = out.len();
        out.resize(start + page.rows(), 0);
        let dst = &mut out[start..];
        for field in &self.fields {
            let shift = field.shift;
            match field.dtype {
                DataType::Int => {
                    page.gather_i64(field.col, &mut scratch.i);
                    for (k, &v) in dst.iter_mut().zip(&scratch.i) {
                        *k |= enc_i64(v) << shift;
                    }
                }
                DataType::Float => {
                    page.gather_f64(field.col, &mut scratch.f);
                    for (k, &v) in dst.iter_mut().zip(&scratch.f) {
                        *k |= enc_f64(v) << shift;
                    }
                }
                DataType::Date => {
                    page.gather_date(field.col, &mut scratch.d);
                    for (k, &v) in dst.iter_mut().zip(&scratch.d) {
                        *k |= enc_date(v) << shift;
                    }
                }
                DataType::Str(_) => {
                    let (off, w) = (field.offset, field.width);
                    for (k, raw) in dst.iter_mut().zip(page.raw_rows()) {
                        *k |= enc_str(&raw[off..off + w], w) << shift;
                    }
                }
            }
        }
    }
}

/// Signed 64-bit order → unsigned order.
#[inline]
fn enc_i64(x: i64) -> u64 {
    (x ^ i64::MIN) as u64
}

/// Signed 32-bit order → unsigned order (4-byte encoding).
#[inline]
fn enc_date(d: i32) -> u64 {
    ((d as u32) ^ 0x8000_0000) as u64
}

/// IEEE-754 total order → unsigned order (the standard sign-magnitude
/// to two's-complement fold); agrees with `f64::total_cmp`.
#[inline]
fn enc_f64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Trimmed bytes, big-endian-packed into `width` bytes with `0x00`
/// padding: unsigned order equals trimmed lexicographic string order.
#[inline]
fn enc_str(raw: &[u8], width: usize) -> u64 {
    let trimmed = raw.len() - raw.iter().rev().take_while(|&&b| b == b' ').count();
    let mut enc = 0u64;
    for (i, &b) in raw[..trimmed].iter().enumerate() {
        enc |= (b as u64) << (8 * (width - 1 - i));
    }
    enc
}

/// Reference (tuple-at-a-time) packed-key computation — the oracle the
/// unit tests pin `extend_keys` against, and a readable spec of the
/// encoding.
#[cfg(test)]
fn pack_one(key: &[KeyVal], spec: &PackedKeySpec) -> u64 {
    let mut packed = 0u64;
    for (k, f) in key.iter().zip(&spec.fields) {
        let enc = match k {
            KeyVal::Int(v) => enc_i64(*v),
            KeyVal::Float(v) => enc_f64(v.0),
            KeyVal::Date(v) => enc_date(*v),
            KeyVal::Str(s) => {
                let mut padded = vec![b' '; f.width];
                padded[..s.len()].copy_from_slice(s.as_bytes());
                enc_str(&padded, f.width)
            }
        };
        packed |= enc << f.shift;
    }
    packed
}

/// The general path's per-row key: [`key_of`] over the same columns.
/// Kept here so sort and merge share one definition with the tests.
pub fn general_key(page: &Page, row: usize, keys: &[usize]) -> Vec<KeyVal> {
    key_of(&page.tuple(row), keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_storage::{Date, Field, PageBuilder, Value};

    fn page() -> Arc<Page> {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("d", DataType::Date),
            Field::new("s", DataType::Str(3)),
        ]);
        let mut b = PageBuilder::new(schema);
        let strs = ["", "a", "ab", "abc", "b", "z", "AB", "a c"];
        for i in -20i64..20 {
            b.push_row(&[
                Value::Int(i * 1_000_003),
                Value::Float(i as f64 * 0.75),
                Value::Date(Date(i as i32 * 37)),
                Value::Str(strs[i.unsigned_abs() as usize % strs.len()].into()),
            ]);
        }
        b.push_row(&[
            Value::Int(i64::MIN),
            Value::Float(f64::NEG_INFINITY),
            Value::Date(Date(i32::MIN)),
            Value::Str("".into()),
        ]);
        b.push_row(&[
            Value::Int(i64::MAX),
            Value::Float(f64::NAN),
            Value::Date(Date(i32::MAX)),
            Value::Str("zzz".into()),
        ]);
        b.push_row(&[
            Value::Int(0),
            Value::Float(-0.0),
            Value::Date(Date(0)),
            Value::Str("a".into()),
        ]);
        b.finish()
    }

    /// Every packed layout must order exactly like the decoded keys.
    #[test]
    fn packed_order_matches_keyval_order() {
        let p = page();
        let mut scratch = KeyScratch::default();
        for keys in [
            vec![0usize],
            vec![1],
            vec![2],
            vec![3],
            vec![2, 3],
            vec![3, 2],
            vec![2, 2],
        ] {
            let spec = PackedKeySpec::try_new(p.schema(), &keys).expect("≤ 8 bytes");
            let mut packed = Vec::new();
            spec.extend_keys(&p, &mut scratch, &mut packed);
            assert_eq!(packed.len(), p.rows());
            for a in 0..p.rows() {
                for b in 0..p.rows() {
                    let ka = general_key(&p, a, &keys);
                    let kb = general_key(&p, b, &keys);
                    assert_eq!(
                        packed[a].cmp(&packed[b]),
                        ka.cmp(&kb),
                        "keys {keys:?}: rows {a} vs {b} ({ka:?} vs {kb:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn extend_keys_matches_reference_packing() {
        let p = page();
        let keys = vec![2usize, 3];
        let spec = PackedKeySpec::try_new(p.schema(), &keys).expect("7 bytes");
        let mut scratch = KeyScratch::default();
        let mut packed = Vec::new();
        spec.extend_keys(&p, &mut scratch, &mut packed);
        for (r, &got) in packed.iter().enumerate() {
            assert_eq!(got, pack_one(&general_key(&p, r, &keys), &spec));
        }
    }

    #[test]
    fn wide_keys_fall_back() {
        let p = page();
        assert!(PackedKeySpec::try_new(p.schema(), &[0, 1]).is_none());
        assert!(PackedKeySpec::try_new(p.schema(), &[0, 2]).is_none());
        assert!(PackedKeySpec::try_new(p.schema(), &[]).is_some());
    }

    #[test]
    fn extend_appends_across_pages() {
        let p = page();
        let spec = PackedKeySpec::try_new(p.schema(), &[0]).expect("8 bytes");
        let mut scratch = KeyScratch::default();
        let mut packed = Vec::new();
        spec.extend_keys(&p, &mut scratch, &mut packed);
        spec.extend_keys(&p, &mut scratch, &mut packed);
        assert_eq!(packed.len(), 2 * p.rows());
        assert_eq!(packed[..p.rows()], packed[p.rows()..]);
    }
}
