//! Streaming projection, vectorized: expressions compile once into
//! [`CompiledExpr`] programs, each page is evaluated column-at-a-time
//! into a row-major scratch buffer, and finished rows move into output
//! pages as raw bytes — no per-tuple expression dispatch and no
//! [`cordoba_storage::Value`] materialization on the hot path.

use crate::cost::OpCost;
use crate::error::ExecError;
use crate::expr::ScalarExpr;
use crate::ops::{Fanout, Outbox};
use crate::vexpr::{CompiledExpr, ExprScratch};
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, PageBuilder, Schema};
use std::sync::Arc;

/// Projection task.
pub struct ProjectTask {
    rx: Receiver<Arc<Page>>,
    compiled: Vec<CompiledExpr>,
    out_schema: Arc<Schema>,
    cost: OpCost,
    builder: PageBuilder,
    outbox: Outbox,
    input_closed: bool,
    flushed_tail: bool,
    scratch: ExprScratch,
    row_bytes: Vec<u8>,
}

impl ProjectTask {
    /// Creates a projection producing `out_schema` rows via `exprs`,
    /// compiled here against the input `in_schema`; expressions that do
    /// not type-check err before any task is spawned.
    pub fn new(
        rx: Receiver<Arc<Page>>,
        in_schema: Arc<Schema>,
        out_schema: Arc<Schema>,
        exprs: Vec<ScalarExpr>,
        cost: OpCost,
        fanout: Fanout,
    ) -> Result<Self, ExecError> {
        if exprs.len() != out_schema.len() {
            return Err(ExecError::plan(format!(
                "projection has {} expressions for {} output fields",
                exprs.len(),
                out_schema.len()
            )));
        }
        Ok(Self {
            rx,
            compiled: exprs
                .iter()
                .map(|e| CompiledExpr::compile(e, &in_schema))
                .collect::<Result<_, _>>()?,
            out_schema: out_schema.clone(),
            cost,
            builder: PageBuilder::new(out_schema),
            outbox: Outbox::new(fanout),
            input_closed: false,
            flushed_tail: false,
            scratch: ExprScratch::default(),
            row_bytes: Vec::new(),
        })
    }

    /// Overrides the output page size (tests and ablations).
    pub fn with_output_page_size(mut self, page_size: usize) -> Self {
        self.builder = PageBuilder::with_page_size(self.out_schema.clone(), page_size);
        self
    }
}

impl Task for ProjectTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, drained) = self.outbox.flush(ctx);
        if !drained {
            return Step::blocked(cost);
        }
        if self.input_closed {
            if !self.flushed_tail {
                self.flushed_tail = true;
                if !self.builder.is_empty() {
                    let page = self.builder.finish_and_reset();
                    self.outbox.push(page);
                    let (c, drained) = self.outbox.flush(ctx);
                    cost += c;
                    if !drained {
                        return Step::blocked(cost);
                    }
                }
            }
            self.outbox.close(ctx);
            return Step::done(cost);
        }
        match self.rx.try_recv(ctx) {
            Recv::Value(page) => {
                let n = page.rows();
                cost += self.cost.input_cost(n);
                ctx.add_progress(n as f64);
                let w = self.out_schema.row_width();
                // The output fields tile the whole row width, so
                // `encode_column` overwrites every byte — only the
                // length needs adjusting, not the contents.
                if self.row_bytes.len() != n * w {
                    self.row_bytes.resize(n * w, 0);
                }
                for (i, ce) in self.compiled.iter().enumerate() {
                    ce.encode_column(
                        &page,
                        &mut self.scratch,
                        self.out_schema.fields()[i].dtype,
                        &mut self.row_bytes,
                        self.out_schema.offset(i),
                        w,
                    );
                }
                for row in self.row_bytes.chunks_exact(w) {
                    if self.builder.is_full() {
                        let full = self.builder.finish_and_reset();
                        self.outbox.push(full);
                    }
                    assert!(self.builder.push_raw(row), "builder cannot be full here");
                }
                if self.builder.is_full() {
                    let full = self.builder.finish_and_reset();
                    self.outbox.push(full);
                }
                let (c, drained) = self.outbox.flush(ctx);
                cost += c;
                if drained {
                    Step::yielded(cost)
                } else {
                    Step::blocked(cost)
                }
            }
            Recv::Empty => Step::blocked(cost),
            Recv::Closed => {
                self.input_closed = true;
                Step::yielded(cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::CollectingSink;
    use crate::ops::ScanTask;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn project_computes_expressions() {
        let schema = Schema::new(vec![
            Field::new("q", DataType::Float),
            Field::new("p", DataType::Float),
        ]);
        let mut tb = TableBuilder::new("t", schema.clone());
        tb.push_row(&[Value::Float(2.0), Value::Float(10.0)]);
        tb.push_row(&[Value::Float(3.0), Value::Float(5.0)]);
        let table = tb.finish();

        let out_schema = Schema::new(vec![Field::new("rev", DataType::Float)]);
        let exprs = vec![ScalarExpr::Mul(
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::col(1)),
        )];

        let mut sim = Simulator::new(2);
        let (tx1, rx1) = channel::bounded(4);
        let (tx2, rx2) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![tx1], 0.0),
            )),
        );
        sim.spawn(
            "project",
            Box::new(
                ProjectTask::new(
                    rx1,
                    schema,
                    out_schema,
                    exprs,
                    OpCost::default(),
                    Fanout::new(vec![tx2], 0.0),
                )
                .expect("expressions compile"),
            ),
        );
        let rows = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rx2,
                rows: rows.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        let rows = rows.borrow();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::Float(20.0)]);
        assert_eq!(rows[1], vec![Value::Float(15.0)]);
    }

    #[test]
    fn widening_projection_preserves_all_rows_in_order() {
        // Input rows 8 bytes; output rows 24 bytes on tiny 64-byte pages
        // (2 rows per output page): one input page yields several output
        // pages through the outbox, order preserved even with a slow,
        // small-capacity consumer.
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut tb = TableBuilder::with_page_size("t", schema.clone(), 64);
        for i in 0..64 {
            tb.push_row(&[Value::Int(i)]);
        }
        let table = tb.finish();
        let out_schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("c", DataType::Int),
        ]);
        let exprs = vec![ScalarExpr::col(0), ScalarExpr::col(0), ScalarExpr::col(0)];
        let mut sim = Simulator::new(2);
        let (tx1, rx1) = channel::bounded(2);
        let (tx2, rx2) = channel::bounded(1);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![tx1], 0.0),
            )),
        );
        let task = ProjectTask::new(
            rx1,
            schema,
            out_schema,
            exprs,
            OpCost::default(),
            Fanout::new(vec![tx2], 0.0),
        )
        .expect("expressions compile")
        .with_output_page_size(64);
        sim.spawn("project", Box::new(task));
        let rows = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            "sink",
            Box::new(CollectingSink {
                rx: rx2,
                rows: rows.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        let rows = rows.borrow();
        assert_eq!(rows.len(), 64);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row, &vec![Value::Int(i as i64); 3]);
        }
    }
}
