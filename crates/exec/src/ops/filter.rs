//! Streaming filter, vectorized: the predicate is compiled once into a
//! [`CompiledPredicate`] and evaluated page-at-a-time into a selection
//! vector; survivors are repacked densely into fresh pages with bulk
//! row copies ([`Page::copy_rows_into`] coalesces consecutive runs).

use crate::cost::OpCost;
use crate::error::ExecError;
use crate::expr::Predicate;
use crate::ops::Fanout;
use crate::vexpr::{CompiledPredicate, ExprScratch};
use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, PageBuilder, Schema};
use std::sync::Arc;

/// Filter task.
pub struct FilterTask {
    rx: Receiver<Arc<Page>>,
    predicate: CompiledPredicate,
    cost: OpCost,
    builder: PageBuilder,
    fanout: Fanout,
    input_closed: bool,
    flushed: bool,
    scratch: ExprScratch,
    sel: Vec<u32>,
}

impl FilterTask {
    /// Creates a filter reading pages of `schema` from `rx`. The
    /// predicate is compiled against `schema` here, once; a predicate
    /// that does not type-check errs before any task is spawned.
    pub fn new(
        rx: Receiver<Arc<Page>>,
        schema: Arc<Schema>,
        predicate: Predicate,
        cost: OpCost,
        fanout: Fanout,
    ) -> Result<Self, ExecError> {
        Ok(Self {
            rx,
            predicate: CompiledPredicate::compile(&predicate, &schema)?,
            cost,
            builder: PageBuilder::new(schema),
            fanout,
            input_closed: false,
            flushed: false,
            scratch: ExprScratch::default(),
            sel: Vec::new(),
        })
    }
}

impl Task for FilterTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let (mut cost, done) = self.fanout.pump(ctx);
        if !done {
            return Step::blocked(cost);
        }
        if self.input_closed {
            if !self.flushed && !self.builder.is_empty() {
                self.flushed = true;
                let page = self.builder.finish_and_reset();
                self.fanout.begin(page);
                let (c, done) = self.fanout.pump(ctx);
                cost += c;
                if !done {
                    return Step::blocked(cost);
                }
            }
            self.fanout.close(ctx);
            return Step::done(cost);
        }
        match self.rx.try_recv(ctx) {
            Recv::Value(page) => {
                let n = page.rows();
                cost += self.cost.input_cost(n);
                ctx.add_progress(n as f64);
                let mut out_page = None;
                self.predicate
                    .select(&page, &mut self.scratch, &mut self.sel);
                let mut taken = 0;
                while taken < self.sel.len() {
                    if self.builder.is_full() {
                        debug_assert!(out_page.is_none(), "≤1 output page per input page");
                        out_page = Some(self.builder.finish_and_reset());
                    }
                    taken += page.copy_rows_into(&self.sel[taken..], &mut self.builder);
                }
                if self.builder.is_full() && out_page.is_none() {
                    out_page = Some(self.builder.finish_and_reset());
                }
                if let Some(p) = out_page {
                    self.fanout.begin(p);
                    let (c, done) = self.fanout.pump(ctx);
                    cost += c;
                    if !done {
                        return Step::blocked(cost);
                    }
                }
                Step::yielded(cost)
            }
            Recv::Empty => Step::blocked(cost),
            Recv::Closed => {
                self.input_closed = true;
                Step::yielded(cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::ops::testutil::CountingSink;
    use crate::ops::ScanTask;
    use cordoba_sim::channel;
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, TableBuilder, Value};
    use std::cell::Cell;
    use std::rc::Rc;

    fn run_filter(rows: i64, predicate: Predicate) -> usize {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut tb = TableBuilder::with_page_size("t", schema.clone(), 64);
        for i in 0..rows {
            tb.push_row(&[Value::Int(i)]);
        }
        let table = tb.finish();
        let mut sim = Simulator::new(2);
        let (tx1, rx1) = channel::bounded(4);
        let (tx2, rx2) = channel::bounded(4);
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table.pages().to_vec(),
                OpCost::default(),
                Fanout::new(vec![tx1], 0.0),
            )),
        );
        sim.spawn(
            "filter",
            Box::new(
                FilterTask::new(
                    rx1,
                    schema,
                    predicate,
                    OpCost::per_tuple(1.0),
                    Fanout::new(vec![tx2], 0.0),
                )
                .expect("predicate compiles"),
            ),
        );
        let rows_out = Rc::new(Cell::new(0));
        sim.spawn(
            "sink",
            Box::new(CountingSink {
                rx: rx2,
                rows: rows_out.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        rows_out.get()
    }

    #[test]
    fn filter_selectivity() {
        assert_eq!(run_filter(100, Predicate::col_cmp(0, CmpOp::Lt, 30i64)), 30);
        assert_eq!(run_filter(100, Predicate::True), 100);
        assert_eq!(
            run_filter(100, Predicate::Not(Box::new(Predicate::True))),
            0
        );
    }

    #[test]
    fn filter_repacks_across_input_pages() {
        // Pages hold 8 rows; a 30/64 selection means output pages are
        // assembled across several input pages and the final partial
        // page is flushed when the input closes.
        let kept = run_filter(
            64,
            Predicate::And(vec![
                Predicate::col_cmp(0, CmpOp::Ge, 10i64),
                Predicate::col_cmp(0, CmpOp::Lt, 40i64),
            ]),
        );
        assert_eq!(kept, 30);
    }

    #[test]
    fn empty_input_produces_no_pages() {
        assert_eq!(run_filter(0, Predicate::True), 0);
    }
}
