//! Shared helpers for operator unit tests.

use cordoba_sim::channel::{Receiver, Recv};
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::{Page, Value};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

/// Drains a page stream, counting rows.
pub(crate) struct CountingSink {
    pub rx: Receiver<Arc<Page>>,
    pub rows: Rc<Cell<usize>>,
}

impl Task for CountingSink {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        match self.rx.try_recv(ctx) {
            Recv::Value(p) => {
                self.rows.set(self.rows.get() + p.rows());
                Step::yielded(1)
            }
            Recv::Empty => Step::blocked(0),
            Recv::Closed => Step::done(0),
        }
    }
}

/// Drains a page stream, materializing every row.
pub(crate) struct CollectingSink {
    pub rx: Receiver<Arc<Page>>,
    pub rows: Rc<RefCell<Vec<Vec<Value>>>>,
}

impl Task for CollectingSink {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        match self.rx.try_recv(ctx) {
            Recv::Value(p) => {
                let mut rows = self.rows.borrow_mut();
                for t in p.tuples() {
                    rows.push(t.to_values());
                }
                Step::yielded(1)
            }
            Recv::Empty => Step::blocked(0),
            Recv::Closed => Step::done(0),
        }
    }
}
