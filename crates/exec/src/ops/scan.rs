//! Table scan: streams a table's pages to its consumers.
//!
//! The scan is the natural pivot for scan-heavy sharing (TPC-H Q1/Q6):
//! shared, it reads each page once and delivers it to every consumer —
//! paying the per-consumer output cost `s` that the paper identifies as
//! the serialization bottleneck.

use crate::cost::OpCost;
use crate::ops::Fanout;
use cordoba_sim::{Step, Task, TaskCtx};
use cordoba_storage::Page;
use std::sync::Arc;

/// Scan task over a snapshot of table pages.
pub struct ScanTask {
    pages: Vec<Arc<Page>>,
    pos: usize,
    cost: OpCost,
    fanout: Fanout,
}

impl ScanTask {
    /// Creates a scan over `pages` delivering to `fanout`.
    pub fn new(pages: Vec<Arc<Page>>, cost: OpCost, fanout: Fanout) -> Self {
        Self {
            pages,
            pos: 0,
            cost,
            fanout,
        }
    }
}

impl Task for ScanTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        // Finish any partially delivered page first.
        let (mut cost, done) = self.fanout.pump(ctx);
        if !done {
            return Step::blocked(cost);
        }
        if self.pos >= self.pages.len() {
            self.fanout.close(ctx);
            return Step::done(cost);
        }
        let page = self.pages[self.pos].clone();
        self.pos += 1;
        let tuples = page.rows();
        cost += self.cost.input_cost(tuples);
        ctx.add_progress(tuples as f64);
        self.fanout.begin(page);
        let (c2, done) = self.fanout.pump(ctx);
        cost += c2;
        if done {
            Step::yielded(cost)
        } else {
            Step::blocked(cost)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_sim::channel::{self, Recv};
    use cordoba_sim::Simulator;
    use cordoba_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn table_pages(rows: usize) -> Vec<Arc<Page>> {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut b = TableBuilder::with_page_size("t", schema, 64);
        for i in 0..rows {
            b.push_row(&[Value::Int(i as i64)]);
        }
        b.finish().pages().to_vec()
    }

    use crate::ops::testutil::CountingSink;

    #[test]
    fn scan_streams_all_rows() {
        let mut sim = Simulator::new(2);
        let (tx, rx) = channel::bounded(4);
        let rows = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table_pages(37),
                OpCost::per_tuple(2.0),
                Fanout::new(vec![tx], 0.5),
            )),
        );
        sim.spawn(
            "sink",
            Box::new(CountingSink {
                rx,
                rows: rows.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        assert_eq!(rows.get(), 37);
    }

    #[test]
    fn scan_cost_matches_w_plus_s() {
        // 37 rows: input cost 2/tuple + output 0.5/tuple to one consumer.
        let mut sim = Simulator::new(2);
        let (tx, rx) = channel::bounded(100);
        let rows = std::rc::Rc::new(std::cell::Cell::new(0));
        let scan = sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table_pages(37),
                OpCost::new(2.0, 0.5),
                Fanout::new(vec![tx], 0.5),
            )),
        );
        sim.spawn("sink", Box::new(CountingSink { rx, rows }));
        sim.run_to_idle();
        // 5 pages of 8 rows + 1 page of 5 rows on a 64-byte page of
        // 8-byte rows; per page: 2*n + round(0.5*n).
        let expected: u64 = [8, 8, 8, 8, 5]
            .iter()
            .map(|&n: &u64| 2 * n + (n as f64 * 0.5).round() as u64)
            .sum();
        assert_eq!(sim.task_stats(scan).active, expected);
        assert_eq!(sim.task_stats(scan).progress, 37.0);
    }

    #[test]
    fn shared_scan_pays_per_consumer_output() {
        // Fan out to 3 consumers: output cost triples, input cost doesn't.
        let mut sim = Simulator::new(4);
        let mut rxs = Vec::new();
        let mut txs = Vec::new();
        for _ in 0..3 {
            let (tx, rx) = channel::bounded(100);
            txs.push(tx);
            rxs.push(rx);
        }
        let scan = sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table_pages(32),
                OpCost::new(2.0, 1.0),
                Fanout::new(txs, 1.0),
            )),
        );
        let counts: Vec<_> = rxs
            .into_iter()
            .map(|rx| {
                let rows = std::rc::Rc::new(std::cell::Cell::new(0));
                sim.spawn(
                    "sink",
                    Box::new(CountingSink {
                        rx,
                        rows: rows.clone(),
                    }),
                );
                rows
            })
            .collect();
        assert!(sim.run_to_idle().completed_all());
        for c in &counts {
            assert_eq!(c.get(), 32);
        }
        // active = 32*2 (w) + 3*32*1 (s to each of 3 consumers).
        assert_eq!(sim.task_stats(scan).active, 64 + 96);
    }

    #[test]
    fn empty_table_closes_immediately() {
        let mut sim = Simulator::new(1);
        let (tx, rx) = channel::bounded(4);
        let rows = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                vec![],
                OpCost::default(),
                Fanout::new(vec![tx], 0.0),
            )),
        );
        sim.spawn(
            "sink",
            Box::new(CountingSink {
                rx,
                rows: rows.clone(),
            }),
        );
        assert!(sim.run_to_idle().completed_all());
        assert_eq!(rows.get(), 0);
    }

    #[test]
    fn bounded_consumer_throttles_scan() {
        // Slow sink (cost 100/step), capacity-1 channel: scan cannot run
        // ahead by more than the buffer.
        struct SlowSink {
            rx: channel::Receiver<Arc<Page>>,
        }
        impl Task for SlowSink {
            fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
                match self.rx.try_recv(ctx) {
                    Recv::Value(_) => Step::yielded(1000),
                    Recv::Empty => Step::blocked(0),
                    Recv::Closed => Step::done(0),
                }
            }
        }
        let mut sim = Simulator::new(2);
        let (tx, rx) = channel::bounded(1);
        let scan = sim.spawn(
            "scan",
            Box::new(ScanTask::new(
                table_pages(32),
                OpCost::per_tuple(1.0),
                Fanout::new(vec![tx], 0.0),
            )),
        );
        sim.spawn("sink", Box::new(SlowSink { rx }));
        assert!(sim.run_to_idle().completed_all());
        // 4 pages * 1000 dominates; scan finishes around the 3rd sink
        // step, far later than its unthrottled ~32 units of work.
        assert!(sim.task_stats(scan).completed_at.unwrap() > 2000);
    }
}
