//! Compiled, vectorized expression programs.
//!
//! [`ScalarExpr`]/[`Predicate`] trees are walked per tuple by
//! `eval`, paying recursive dispatch through boxed children for every
//! row. The vectorized operators instead compile each tree **once** at
//! task construction into a flat postfix program ([`CompiledExpr`],
//! [`CompiledPredicate`]) and evaluate it a whole page at a time into
//! reusable scratch buffers ([`ExprScratch`]): one typed column gather
//! per leaf, one tight loop per operator, no per-row allocation or
//! dispatch. Predicates produce a **selection vector** (the indices of
//! passing rows) rather than per-tuple booleans, which downstream
//! operators consume with bulk row copies.
//!
//! Semantics match the tree-walking evaluators exactly on well-typed,
//! non-NaN inputs (the property suite in `tests/vectorized_equivalence`
//! enforces this), with two deliberate differences:
//!
//! * type errors (arithmetic on strings, comparing a date to a float)
//!   surface as typed [`ExecError`]s at **compile** time instead of
//!   panicking on the first evaluated row — a malformed plan fails the
//!   query, not the process;
//! * comparisons involving NaN follow IEEE semantics (`Ne` is `true`,
//!   every other operator `false`) instead of panicking — the
//!   tree-walk treats NaN as a programming error and never returns on
//!   such inputs.
//!
//! Scalar literals in float arithmetic fuse into the adjacent
//! instruction ([`Instr::AddFLit`] / [`Instr::SubFLit`] /
//! [`Instr::SubLitF`] / [`Instr::MulFLit`], mirroring the
//! `CmpColLit*` predicate fast paths), so `extendedprice *
//! (1 - discount)` runs two in-place passes over one gathered column
//! instead of broadcasting page-length literal buffers.

use crate::error::ExecError;
use crate::expr::{like_match, CmpOp, Predicate, ScalarExpr};
use crate::plan::expr_type_checked;
use cordoba_storage::{DataType, Page, Schema};
use std::sync::Arc;

/// Result type of a numeric program slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NumType {
    Int,
    Float,
    Date,
}

/// One postfix instruction of a numeric program. Type resolution
/// happens at compile time: every arithmetic instruction knows the
/// exact variant of its operands, so evaluation is a direct match with
/// no per-row type dispatch.
#[derive(Debug, Clone)]
enum Instr {
    /// Gather an `Int` column.
    ColI(usize),
    /// Gather a `Float` column.
    ColF(usize),
    /// Gather a `Date` column.
    ColD(usize),
    /// Broadcast an integer literal.
    LitI(i64),
    /// Broadcast a float literal.
    LitF(f64),
    /// Broadcast a date literal.
    LitD(i32),
    /// Promote the top integer buffer to float.
    CastIF,
    /// Int ⊕ Int → Int. Matches the tree-walk exactly: computed through
    /// `f64` and truncated back (`(a as f64 ⊕ b as f64) as i64`).
    AddI,
    /// See [`Instr::AddI`].
    SubI,
    /// See [`Instr::AddI`].
    MulI,
    /// Float ⊕ Float → Float (mixed int/float operands are promoted by
    /// [`Instr::CastIF`] at compile time).
    AddF,
    /// See [`Instr::AddF`].
    SubF,
    /// See [`Instr::AddF`].
    MulF,
    /// Fused `top + lit` (no literal broadcast, in-place on the top
    /// buffer). Addition commutes bitwise under IEEE 754, so this also
    /// covers `lit + top`.
    AddFLit(f64),
    /// Fused `top - lit`.
    SubFLit(f64),
    /// Fused `lit - top` (subtraction does not commute — `1 - discount`
    /// compiles to `[ColF(discount), SubLitF(1.0)]`).
    SubLitF(f64),
    /// Fused `top * lit`; covers `lit * top` as [`Instr::AddFLit`] does.
    MulFLit(f64),
}

/// A typed column buffer on the evaluation stack.
#[derive(Debug)]
enum Buf {
    I(Vec<i64>),
    F(Vec<f64>),
    D(Vec<i32>),
}

/// Reusable evaluation state: the value stack, per-type buffer pools,
/// and the mask stack. One scratch per task; buffers are recycled so a
/// steady-state page evaluation allocates nothing.
#[derive(Debug, Default)]
pub struct ExprScratch {
    stack: Vec<Buf>,
    free_i: Vec<Vec<i64>>,
    free_f: Vec<Vec<f64>>,
    free_d: Vec<Vec<i32>>,
    masks: Vec<Vec<bool>>,
    free_m: Vec<Vec<bool>>,
}

impl ExprScratch {
    fn take_i(&mut self) -> Vec<i64> {
        self.free_i.pop().unwrap_or_default()
    }
    fn take_f(&mut self) -> Vec<f64> {
        self.free_f.pop().unwrap_or_default()
    }
    fn take_d(&mut self) -> Vec<i32> {
        self.free_d.pop().unwrap_or_default()
    }
    fn take_m(&mut self) -> Vec<bool> {
        let mut m = self.free_m.pop().unwrap_or_default();
        m.clear();
        m
    }

    fn recycle(&mut self, buf: Buf) {
        match buf {
            Buf::I(v) => self.free_i.push(v),
            Buf::F(v) => self.free_f.push(v),
            Buf::D(v) => self.free_d.push(v),
        }
    }

    fn recycle_mask(&mut self, m: Vec<bool>) {
        self.free_m.push(m);
    }

    fn pop(&mut self) -> Buf {
        // lint: allow(compiled programs are stack-balanced by construction)
        self.stack.pop().expect("non-empty eval stack")
    }
}

/// A compiled numeric (Int/Float/Date) postfix program.
#[derive(Debug, Clone)]
struct NumProgram {
    instrs: Vec<Instr>,
    out: NumType,
}

impl NumProgram {
    /// Compiles `expr` against `schema`, erring if the expression is
    /// not numeric (string columns or literals in arithmetic, dates as
    /// arithmetic operands). `fuse` enables the scalar-literal fused
    /// instructions (off only for the baseline benchmark kernels).
    fn compile(expr: &ScalarExpr, schema: &Arc<Schema>, fuse: bool) -> Result<Self, ExecError> {
        let mut instrs = Vec::new();
        let out = compile_num(expr, schema, &mut instrs, fuse)?;
        Ok(Self { instrs, out })
    }

    /// As [`NumProgram::compile`], but promotes an `Int` result to
    /// `Float` (the coercion every aggregate input goes through).
    fn compile_f64(expr: &ScalarExpr, schema: &Arc<Schema>, fuse: bool) -> Result<Self, ExecError> {
        let mut p = Self::compile(expr, schema, fuse)?;
        match p.out {
            NumType::Float => {}
            NumType::Int => {
                p.instrs.push(Instr::CastIF);
                p.out = NumType::Float;
            }
            NumType::Date => {
                return Err(ExecError::plan(
                    "expression over a date column is not numeric",
                ))
            }
        }
        Ok(p)
    }

    /// Evaluates over all rows of `page`, returning the result buffer
    /// (callers must `scratch.recycle` it when done).
    fn eval_take(&self, page: &Page, scratch: &mut ExprScratch) -> Buf {
        let n = page.rows();
        debug_assert!(scratch.stack.is_empty());
        for instr in &self.instrs {
            match instr {
                Instr::ColI(c) => {
                    let mut v = scratch.take_i();
                    page.gather_i64(*c, &mut v);
                    scratch.stack.push(Buf::I(v));
                }
                Instr::ColF(c) => {
                    let mut v = scratch.take_f();
                    page.gather_f64(*c, &mut v);
                    scratch.stack.push(Buf::F(v));
                }
                Instr::ColD(c) => {
                    let mut v = scratch.take_d();
                    page.gather_date(*c, &mut v);
                    scratch.stack.push(Buf::D(v));
                }
                Instr::LitI(x) => {
                    let mut v = scratch.take_i();
                    v.clear();
                    v.resize(n, *x);
                    scratch.stack.push(Buf::I(v));
                }
                Instr::LitF(x) => {
                    let mut v = scratch.take_f();
                    v.clear();
                    v.resize(n, *x);
                    scratch.stack.push(Buf::F(v));
                }
                Instr::LitD(x) => {
                    let mut v = scratch.take_d();
                    v.clear();
                    v.resize(n, *x);
                    scratch.stack.push(Buf::D(v));
                }
                Instr::CastIF => {
                    let Buf::I(ints) = scratch.pop() else {
                        // lint: allow(the vector compiler emits type-correct stack programs; a mismatch is a compiler bug)
                        unreachable!("CastIF over a non-int buffer");
                    };
                    let mut v = scratch.take_f();
                    v.clear();
                    v.extend(ints.iter().map(|&x| x as f64));
                    scratch.free_i.push(ints);
                    scratch.stack.push(Buf::F(v));
                }
                Instr::AddI => int_binop(scratch, |x, y| ((x as f64) + (y as f64)) as i64),
                Instr::SubI => int_binop(scratch, |x, y| ((x as f64) - (y as f64)) as i64),
                Instr::MulI => int_binop(scratch, |x, y| ((x as f64) * (y as f64)) as i64),
                Instr::AddF => float_binop(scratch, |x, y| x + y),
                Instr::SubF => float_binop(scratch, |x, y| x - y),
                Instr::MulF => float_binop(scratch, |x, y| x * y),
                Instr::AddFLit(lit) => float_mapop(scratch, |x| x + *lit),
                Instr::SubFLit(lit) => float_mapop(scratch, |x| x - *lit),
                Instr::SubLitF(lit) => float_mapop(scratch, |x| *lit - x),
                Instr::MulFLit(lit) => float_mapop(scratch, |x| x * *lit),
            }
        }
        let result = scratch.pop();
        debug_assert!(scratch.stack.is_empty());
        result
    }
}

fn int_binop(scratch: &mut ExprScratch, f: impl Fn(i64, i64) -> i64) {
    let Buf::I(rhs) = scratch.pop() else {
        // lint: allow(the vector compiler emits type-correct stack programs; a mismatch is a compiler bug)
        unreachable!("int binop over non-int rhs");
    };
    let Some(Buf::I(lhs)) = scratch.stack.last_mut() else {
        // lint: allow(the vector compiler emits type-correct stack programs; a mismatch is a compiler bug)
        unreachable!("int binop over non-int lhs");
    };
    for (x, y) in lhs.iter_mut().zip(&rhs) {
        *x = f(*x, *y);
    }
    scratch.free_i.push(rhs);
}

fn float_binop(scratch: &mut ExprScratch, f: impl Fn(f64, f64) -> f64) {
    let Buf::F(rhs) = scratch.pop() else {
        // lint: allow(the vector compiler emits type-correct stack programs; a mismatch is a compiler bug)
        unreachable!("float binop over non-float rhs");
    };
    let Some(Buf::F(lhs)) = scratch.stack.last_mut() else {
        // lint: allow(the vector compiler emits type-correct stack programs; a mismatch is a compiler bug)
        unreachable!("float binop over non-float lhs");
    };
    for (x, y) in lhs.iter_mut().zip(&rhs) {
        *x = f(*x, *y);
    }
    scratch.free_f.push(rhs);
}

/// In-place map over the top float buffer — the fused scalar-literal
/// instructions' single pass (no literal buffer, no pop/push).
fn float_mapop(scratch: &mut ExprScratch, f: impl Fn(f64) -> f64) {
    let Some(Buf::F(top)) = scratch.stack.last_mut() else {
        // lint: allow(the vector compiler emits type-correct stack programs; a mismatch is a compiler bug)
        unreachable!("fused float op over non-float top");
    };
    for x in top.iter_mut() {
        *x = f(*x);
    }
}

/// The instruction set of one arithmetic operator: the int and float
/// stack forms plus the fused literal forms (`fused` for `top ⊕ lit`,
/// `fused_rev` for `lit ⊕ top` — identical for the commutative ops).
struct ArithOps {
    int_op: Instr,
    float_op: Instr,
    fused: fn(f64) -> Instr,
    fused_rev: fn(f64) -> Instr,
}

const ADD_OPS: ArithOps = ArithOps {
    int_op: Instr::AddI,
    float_op: Instr::AddF,
    fused: Instr::AddFLit,
    fused_rev: Instr::AddFLit,
};
const SUB_OPS: ArithOps = ArithOps {
    int_op: Instr::SubI,
    float_op: Instr::SubF,
    fused: Instr::SubFLit,
    fused_rev: Instr::SubLitF,
};
const MUL_OPS: ArithOps = ArithOps {
    int_op: Instr::MulI,
    float_op: Instr::MulF,
    fused: Instr::MulFLit,
    fused_rev: Instr::MulFLit,
};

/// Emits postfix instructions for `expr`; returns its type.
fn compile_num(
    expr: &ScalarExpr,
    schema: &Arc<Schema>,
    instrs: &mut Vec<Instr>,
    fuse: bool,
) -> Result<NumType, ExecError> {
    match expr {
        ScalarExpr::Col(i) => {
            let field = schema
                .fields()
                .get(*i)
                .ok_or_else(|| crate::plan::column_range_error("expression", *i, schema))?;
            match field.dtype {
                DataType::Int => {
                    instrs.push(Instr::ColI(*i));
                    Ok(NumType::Int)
                }
                DataType::Float => {
                    instrs.push(Instr::ColF(*i));
                    Ok(NumType::Float)
                }
                DataType::Date => {
                    instrs.push(Instr::ColD(*i));
                    Ok(NumType::Date)
                }
                DataType::Str(_) => Err(ExecError::plan(format!(
                    "string column {i} in a numeric expression"
                ))),
            }
        }
        ScalarExpr::IntLit(v) => {
            instrs.push(Instr::LitI(*v));
            Ok(NumType::Int)
        }
        ScalarExpr::FloatLit(v) => {
            instrs.push(Instr::LitF(*v));
            Ok(NumType::Float)
        }
        ScalarExpr::DateLit(v) => {
            instrs.push(Instr::LitD(v.0));
            Ok(NumType::Date)
        }
        ScalarExpr::StrLit(s) => Err(ExecError::plan(format!(
            "string literal {s:?} in a numeric expression"
        ))),
        ScalarExpr::Add(a, b) => compile_arith(a, b, schema, instrs, &ADD_OPS, fuse),
        ScalarExpr::Sub(a, b) => compile_arith(a, b, schema, instrs, &SUB_OPS, fuse),
        ScalarExpr::Mul(a, b) => compile_arith(a, b, schema, instrs, &MUL_OPS, fuse),
    }
}

/// A numeric literal operand's value coerced to `f64` — exactly the
/// coercion the tree-walk applies to mixed int/float operands.
fn num_literal(expr: &ScalarExpr) -> Option<f64> {
    match expr {
        ScalarExpr::IntLit(v) => Some(*v as f64),
        ScalarExpr::FloatLit(v) => Some(*v),
        _ => None,
    }
}

fn compile_arith(
    a: &ScalarExpr,
    b: &ScalarExpr,
    schema: &Arc<Schema>,
    instrs: &mut Vec<Instr>,
    ops: &ArithOps,
    fuse: bool,
) -> Result<NumType, ExecError> {
    let (ta, tb) = (expr_type_checked(a, schema)?, expr_type_checked(b, schema)?);
    let float_result = !(ta == DataType::Int && tb == DataType::Int);
    // Fused scalar-literal fast paths: a float-typed `expr ⊕ lit` (or
    // `lit ⊕ expr`) compiles to the other side's program plus one
    // in-place instruction — no broadcast literal buffer, no extra
    // stream pass. Results are bit-identical to the stack form: the
    // same f64 operation on the same operand values.
    if fuse && float_result {
        if let Some(lit) = num_literal(b) {
            let t = compile_num(a, schema, instrs, fuse)?;
            ensure_numeric(t)?;
            if t == NumType::Int {
                instrs.push(Instr::CastIF);
            }
            instrs.push((ops.fused)(lit));
            return Ok(NumType::Float);
        }
        if let Some(lit) = num_literal(a) {
            let t = compile_num(b, schema, instrs, fuse)?;
            ensure_numeric(t)?;
            if t == NumType::Int {
                instrs.push(Instr::CastIF);
            }
            instrs.push((ops.fused_rev)(lit));
            return Ok(NumType::Float);
        }
    }
    let ta = compile_num(a, schema, instrs, fuse)?;
    ensure_numeric(ta)?;
    if ta == NumType::Int && float_result {
        // The other side is non-int; promote before it lands on the
        // stack so the binop sees two floats.
        instrs.push(Instr::CastIF);
    }
    let tb = compile_num(b, schema, instrs, fuse)?;
    ensure_numeric(tb)?;
    if !float_result {
        instrs.push(ops.int_op.clone());
        Ok(NumType::Int)
    } else {
        if tb == NumType::Int {
            instrs.push(Instr::CastIF);
        }
        instrs.push(ops.float_op.clone());
        Ok(NumType::Float)
    }
}

fn ensure_numeric(t: NumType) -> Result<(), ExecError> {
    if t == NumType::Date {
        return Err(ExecError::plan("non-numeric (date) operand in arithmetic"));
    }
    Ok(())
}

/// A scalar expression compiled for page-at-a-time evaluation.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    kind: ExprKind,
}

#[derive(Debug, Clone)]
enum ExprKind {
    /// Pass a string column through untouched (projection only; the
    /// page bytes are already space-padded to the field width).
    StrCol(usize),
    /// Broadcast a string literal.
    StrLit(String),
    /// A numeric postfix program.
    Num(NumProgram),
}

impl CompiledExpr {
    /// Compiles `expr` against the input `schema`, erring on type
    /// errors (e.g. arithmetic over strings) — the plans the
    /// tree-walking `eval` would panic on at runtime.
    pub fn compile(expr: &ScalarExpr, schema: &Arc<Schema>) -> Result<Self, ExecError> {
        Self::compile_inner(expr, schema, true)
    }

    /// As [`CompiledExpr::compile`] but with the fused scalar-literal
    /// instructions disabled: literals broadcast page-length buffers.
    /// Exists solely so the benchmark suite can measure the fusion win;
    /// operators always compile fused.
    pub fn compile_unfused(expr: &ScalarExpr, schema: &Arc<Schema>) -> Result<Self, ExecError> {
        Self::compile_inner(expr, schema, false)
    }

    /// Compiles a **numeric** `expr` with the result promoted to `f64`
    /// — the coercion every aggregate input goes through. String or
    /// date expressions err here, at plan time, so
    /// [`CompiledExpr::eval_f64_into`] cannot fail later.
    pub fn compile_f64(expr: &ScalarExpr, schema: &Arc<Schema>) -> Result<Self, ExecError> {
        Ok(Self {
            kind: ExprKind::Num(NumProgram::compile_f64(expr, schema, true)?),
        })
    }

    fn compile_inner(
        expr: &ScalarExpr,
        schema: &Arc<Schema>,
        fuse: bool,
    ) -> Result<Self, ExecError> {
        let kind = match expr {
            ScalarExpr::Col(i)
                if matches!(
                    schema.fields().get(*i).map(|f| f.dtype),
                    Some(DataType::Str(_))
                ) =>
            {
                ExprKind::StrCol(*i)
            }
            ScalarExpr::StrLit(s) => {
                if !s.is_ascii() {
                    return Err(ExecError::plan(format!(
                        "string literal {s:?} is not ASCII (pages store ASCII only)"
                    )));
                }
                ExprKind::StrLit(s.clone())
            }
            other => ExprKind::Num(NumProgram::compile(other, schema, fuse)?),
        };
        Ok(Self { kind })
    }

    /// Evaluates the expression coerced to `f64` over all rows of
    /// `page` into `out` (cleared first) — the shape every aggregate
    /// input takes.
    ///
    /// # Panics
    ///
    /// Panics if the expression is a string or date (not numeric).
    pub fn eval_f64_into(&self, page: &Page, scratch: &mut ExprScratch, out: &mut Vec<f64>) {
        let ExprKind::Num(prog) = &self.kind else {
            // lint: allow(documented '# Panics' contract of eval_f64_into)
            panic!("string expression is not numeric");
        };
        // Promotion is baked in at compile time for aggregate use via
        // `compile_f64`; handle plain programs here too.
        let buf = prog.eval_take(page, scratch);
        out.clear();
        match &buf {
            Buf::F(v) => out.extend_from_slice(v),
            Buf::I(v) => out.extend(v.iter().map(|&x| x as f64)),
            // lint: allow(documented '# Panics' contract of eval_f64_into)
            Buf::D(_) => panic!("date expression is not numeric"),
        }
        scratch.recycle(buf);
    }

    /// Evaluates over all rows of `page` and encodes the result column
    /// into a row-major byte buffer: row `r`'s field bytes land at
    /// `out[r * stride + offset ..]`. `dtype` is the output field type
    /// (drives the encoding width).
    ///
    /// # Panics
    ///
    /// Panics if the evaluated type does not match `dtype` or a string
    /// does not fit its field width — the same plan bugs the
    /// tree-walking path panics on.
    pub fn encode_column(
        &self,
        page: &Page,
        scratch: &mut ExprScratch,
        dtype: DataType,
        out: &mut [u8],
        offset: usize,
        stride: usize,
    ) {
        let n = page.rows();
        match &self.kind {
            ExprKind::StrCol(c) => {
                let DataType::Str(width) = dtype else {
                    // lint: allow(documented '# Panics' contract of encode_column)
                    panic!("type mismatch: string column for {dtype:?} field");
                };
                let in_schema = page.schema();
                let in_off = in_schema.offset(*c);
                let DataType::Str(in_width) = in_schema.fields()[*c].dtype else {
                    // lint: allow(documented '# Panics' contract of encode_column)
                    panic!("StrCol over non-string input column");
                };
                assert_eq!(in_width, width, "string field width mismatch");
                for (r, raw) in page.raw_rows().enumerate() {
                    let dst = r * stride + offset;
                    out[dst..dst + width].copy_from_slice(&raw[in_off..in_off + width]);
                }
            }
            ExprKind::StrLit(s) => {
                let DataType::Str(width) = dtype else {
                    // lint: allow(documented '# Panics' contract of encode_column)
                    panic!("type mismatch: string literal for {dtype:?} field");
                };
                assert!(
                    s.len() <= width && s.is_ascii(),
                    "string '{s}' does not fit ASCII field of width {width}"
                );
                let mut padded = vec![b' '; width];
                padded[..s.len()].copy_from_slice(s.as_bytes());
                for r in 0..n {
                    let dst = r * stride + offset;
                    out[dst..dst + width].copy_from_slice(&padded);
                }
            }
            ExprKind::Num(prog) => {
                let buf = prog.eval_take(page, scratch);
                match (&buf, dtype) {
                    (Buf::I(v), DataType::Int) => {
                        for (r, x) in v.iter().enumerate() {
                            let dst = r * stride + offset;
                            out[dst..dst + 8].copy_from_slice(&x.to_le_bytes());
                        }
                    }
                    (Buf::F(v), DataType::Float) => {
                        for (r, x) in v.iter().enumerate() {
                            let dst = r * stride + offset;
                            out[dst..dst + 8].copy_from_slice(&x.to_le_bytes());
                        }
                    }
                    (Buf::D(v), DataType::Date) => {
                        for (r, x) in v.iter().enumerate() {
                            let dst = r * stride + offset;
                            out[dst..dst + 4].copy_from_slice(&x.to_le_bytes());
                        }
                    }
                    // lint: allow(documented '# Panics' contract of encode_column)
                    (buf, dtype) => panic!("type mismatch: {buf:?} column for {dtype:?} field"),
                }
                scratch.recycle(buf);
            }
        }
    }
}

/// A string comparison operand (only columns and literals can be
/// string-typed).
#[derive(Debug, Clone)]
enum StrOperand {
    Col(usize),
    Lit(String),
}

/// One postfix instruction of a compiled predicate. Comparison leaves
/// push a boolean mask; `And`/`Or`/`Not` combine masks.
#[derive(Debug, Clone)]
enum PInstr {
    /// Push an all-true mask.
    True,
    /// Fast path: `Int column <op> literal` — gather + compare, no
    /// program machinery.
    CmpColLitI { col: usize, op: CmpOp, lit: i64 },
    /// Fast path: `Float column <op> literal`.
    CmpColLitF { col: usize, op: CmpOp, lit: f64 },
    /// Fast path: `Date column <op> literal`.
    CmpColLitD { col: usize, op: CmpOp, lit: i32 },
    /// General Int ⋈ Int comparison.
    CmpII {
        l: NumProgram,
        r: NumProgram,
        op: CmpOp,
    },
    /// General Date ⋈ Date comparison.
    CmpDD {
        l: NumProgram,
        r: NumProgram,
        op: CmpOp,
    },
    /// General numeric comparison through `f64` (mixed int/float).
    CmpFF {
        l: NumProgram,
        r: NumProgram,
        op: CmpOp,
    },
    /// String comparison (trailing spaces trimmed, as `get_str` does).
    CmpSS {
        l: StrOperand,
        r: StrOperand,
        op: CmpOp,
    },
    /// `%`-wildcard LIKE over a string column.
    Like { col: usize, pattern: String },
    /// Pop `n` masks, push their conjunction (`n == 0` pushes true).
    And(usize),
    /// Pop `n` masks, push their disjunction (`n == 0` pushes false).
    Or(usize),
    /// Negate the top mask in place.
    Not,
}

/// A predicate compiled for page-at-a-time evaluation into selection
/// vectors.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    instrs: Vec<PInstr>,
}

impl CompiledPredicate {
    /// Compiles `pred` against the input `schema`, erring on type
    /// errors (incomparable operand types, LIKE over a non-string
    /// column, out-of-range columns).
    pub fn compile(pred: &Predicate, schema: &Arc<Schema>) -> Result<Self, ExecError> {
        let mut instrs = Vec::new();
        compile_pred(pred, schema, &mut instrs)?;
        Ok(Self { instrs })
    }

    /// Evaluates over all rows of `page`, appending the indices of
    /// passing rows to `sel` (cleared first) in ascending order.
    pub fn select(&self, page: &Page, scratch: &mut ExprScratch, sel: &mut Vec<u32>) {
        let mask = self.eval_mask(page, scratch);
        sel.clear();
        sel.extend(
            mask.iter()
                .enumerate()
                .filter_map(|(r, &keep)| keep.then_some(r as u32)),
        );
        scratch.recycle_mask(mask);
    }

    /// Evaluates over all rows of `page`, returning the boolean mask
    /// (recycled internally on the next call through the same scratch).
    fn eval_mask(&self, page: &Page, scratch: &mut ExprScratch) -> Vec<bool> {
        let n = page.rows();
        debug_assert!(scratch.masks.is_empty());
        for instr in &self.instrs {
            match instr {
                PInstr::True => {
                    let mut m = scratch.take_m();
                    m.resize(n, true);
                    scratch.masks.push(m);
                }
                PInstr::CmpColLitI { col, op, lit } => {
                    let mut vals = scratch.take_i();
                    page.gather_i64(*col, &mut vals);
                    let mut m = scratch.take_m();
                    cmp_fill_lit(&vals, *lit, *op, &mut m);
                    scratch.free_i.push(vals);
                    scratch.masks.push(m);
                }
                PInstr::CmpColLitF { col, op, lit } => {
                    let mut vals = scratch.take_f();
                    page.gather_f64(*col, &mut vals);
                    let mut m = scratch.take_m();
                    cmp_fill_lit(&vals, *lit, *op, &mut m);
                    scratch.free_f.push(vals);
                    scratch.masks.push(m);
                }
                PInstr::CmpColLitD { col, op, lit } => {
                    let mut vals = scratch.take_d();
                    page.gather_date(*col, &mut vals);
                    let mut m = scratch.take_m();
                    cmp_fill_lit(&vals, *lit, *op, &mut m);
                    scratch.free_d.push(vals);
                    scratch.masks.push(m);
                }
                PInstr::CmpII { l, r, op } => {
                    let (Buf::I(a), Buf::I(b)) =
                        (l.eval_take(page, scratch), r.eval_take(page, scratch))
                    else {
                        // lint: allow(the vector compiler emits type-correct stack programs; a mismatch is a compiler bug)
                        unreachable!("CmpII over non-int buffers");
                    };
                    let mut m = scratch.take_m();
                    cmp_fill(&a, &b, *op, &mut m);
                    scratch.free_i.push(a);
                    scratch.free_i.push(b);
                    scratch.masks.push(m);
                }
                PInstr::CmpDD { l, r, op } => {
                    let (Buf::D(a), Buf::D(b)) =
                        (l.eval_take(page, scratch), r.eval_take(page, scratch))
                    else {
                        // lint: allow(the vector compiler emits type-correct stack programs; a mismatch is a compiler bug)
                        unreachable!("CmpDD over non-date buffers");
                    };
                    let mut m = scratch.take_m();
                    cmp_fill(&a, &b, *op, &mut m);
                    scratch.free_d.push(a);
                    scratch.free_d.push(b);
                    scratch.masks.push(m);
                }
                PInstr::CmpFF { l, r, op } => {
                    let (Buf::F(a), Buf::F(b)) =
                        (l.eval_take(page, scratch), r.eval_take(page, scratch))
                    else {
                        // lint: allow(the vector compiler emits type-correct stack programs; a mismatch is a compiler bug)
                        unreachable!("CmpFF over non-float buffers");
                    };
                    let mut m = scratch.take_m();
                    cmp_fill(&a, &b, *op, &mut m);
                    scratch.free_f.push(a);
                    scratch.free_f.push(b);
                    scratch.masks.push(m);
                }
                PInstr::CmpSS { l, r, op } => {
                    let mut m = scratch.take_m();
                    for t in page.tuples() {
                        let a = match l {
                            StrOperand::Col(c) => t.get_str(*c),
                            StrOperand::Lit(s) => s.as_str(),
                        };
                        let b = match r {
                            StrOperand::Col(c) => t.get_str(*c),
                            StrOperand::Lit(s) => s.as_str(),
                        };
                        m.push(op.holds(a.cmp(b)));
                    }
                    scratch.masks.push(m);
                }
                PInstr::Like { col, pattern } => {
                    let mut m = scratch.take_m();
                    m.extend(page.tuples().map(|t| like_match(t.get_str(*col), pattern)));
                    scratch.masks.push(m);
                }
                PInstr::And(0) => {
                    let mut m = scratch.take_m();
                    m.resize(n, true);
                    scratch.masks.push(m);
                }
                PInstr::Or(0) => {
                    let mut m = scratch.take_m();
                    m.resize(n, false);
                    scratch.masks.push(m);
                }
                PInstr::And(k) => {
                    for _ in 1..*k {
                        // lint: allow(compiled predicates keep k masks on the stack here)
                        let top = scratch.masks.pop().expect("mask stack underflow");
                        // lint: allow(compiled predicates keep k masks on the stack here)
                        let dst = scratch.masks.last_mut().expect("mask stack underflow");
                        for (d, s) in dst.iter_mut().zip(&top) {
                            *d &= *s;
                        }
                        scratch.recycle_mask(top);
                    }
                }
                PInstr::Or(k) => {
                    for _ in 1..*k {
                        // lint: allow(compiled predicates keep k masks on the stack here)
                        let top = scratch.masks.pop().expect("mask stack underflow");
                        // lint: allow(compiled predicates keep k masks on the stack here)
                        let dst = scratch.masks.last_mut().expect("mask stack underflow");
                        for (d, s) in dst.iter_mut().zip(&top) {
                            *d |= *s;
                        }
                        scratch.recycle_mask(top);
                    }
                }
                PInstr::Not => {
                    // lint: allow(Not follows a mask-producing instruction by construction)
                    let m = scratch.masks.last_mut().expect("mask stack underflow");
                    for b in m.iter_mut() {
                        *b = !*b;
                    }
                }
            }
        }
        // lint: allow(compiled predicate programs net exactly one mask)
        let mask = scratch.masks.pop().expect("predicate leaves one mask");
        debug_assert!(scratch.masks.is_empty());
        debug_assert_eq!(mask.len(), n);
        mask
    }
}

/// Fills `mask` with `vals[r] <op> lit` (branch on `op` hoisted out of
/// the row loop). NaN operands follow IEEE: `Ne` true, all else false.
fn cmp_fill_lit<T: PartialOrd + Copy>(vals: &[T], lit: T, op: CmpOp, mask: &mut Vec<bool>) {
    mask.clear();
    match op {
        CmpOp::Eq => mask.extend(vals.iter().map(|&x| x == lit)),
        CmpOp::Ne => mask.extend(vals.iter().map(|&x| x != lit)),
        CmpOp::Lt => mask.extend(vals.iter().map(|&x| x < lit)),
        CmpOp::Le => mask.extend(vals.iter().map(|&x| x <= lit)),
        CmpOp::Gt => mask.extend(vals.iter().map(|&x| x > lit)),
        CmpOp::Ge => mask.extend(vals.iter().map(|&x| x >= lit)),
    }
}

/// Fills `mask` with `a[r] <op> b[r]`. NaN operands follow IEEE:
/// `Ne` true, all else false.
fn cmp_fill<T: PartialOrd + Copy>(a: &[T], b: &[T], op: CmpOp, mask: &mut Vec<bool>) {
    mask.clear();
    let pairs = a.iter().zip(b);
    match op {
        CmpOp::Eq => mask.extend(pairs.map(|(&x, &y)| x == y)),
        CmpOp::Ne => mask.extend(pairs.map(|(&x, &y)| x != y)),
        CmpOp::Lt => mask.extend(pairs.map(|(&x, &y)| x < y)),
        CmpOp::Le => mask.extend(pairs.map(|(&x, &y)| x <= y)),
        CmpOp::Gt => mask.extend(pairs.map(|(&x, &y)| x > y)),
        CmpOp::Ge => mask.extend(pairs.map(|(&x, &y)| x >= y)),
    }
}

fn compile_pred(
    pred: &Predicate,
    schema: &Arc<Schema>,
    instrs: &mut Vec<PInstr>,
) -> Result<(), ExecError> {
    match pred {
        Predicate::True => instrs.push(PInstr::True),
        Predicate::Cmp { left, op, right } => compile_cmp(left, *op, right, schema, instrs)?,
        Predicate::And(ps) => {
            for p in ps {
                compile_pred(p, schema, instrs)?;
            }
            instrs.push(PInstr::And(ps.len()));
        }
        Predicate::Or(ps) => {
            for p in ps {
                compile_pred(p, schema, instrs)?;
            }
            instrs.push(PInstr::Or(ps.len()));
        }
        Predicate::Not(p) => {
            compile_pred(p, schema, instrs)?;
            instrs.push(PInstr::Not);
        }
        Predicate::Like { col, pattern } => {
            let dtype = schema
                .fields()
                .get(*col)
                .map(|f| f.dtype)
                .ok_or_else(|| crate::plan::column_range_error("LIKE", *col, schema))?;
            if !matches!(dtype, DataType::Str(_)) {
                return Err(ExecError::plan(format!(
                    "LIKE over non-string column {col} ({dtype:?})"
                )));
            }
            instrs.push(PInstr::Like {
                col: *col,
                pattern: pattern.clone(),
            });
        }
    }
    Ok(())
}

fn compile_cmp(
    left: &ScalarExpr,
    op: CmpOp,
    right: &ScalarExpr,
    schema: &Arc<Schema>,
    instrs: &mut Vec<PInstr>,
) -> Result<(), ExecError> {
    let (tl, tr) = (
        expr_type_checked(left, schema)?,
        expr_type_checked(right, schema)?,
    );
    let is_str = |t: DataType| matches!(t, DataType::Str(_));
    // Column-vs-literal fast paths for the dominant predicate shape.
    match (left, right, tl, tr) {
        (ScalarExpr::Col(c), ScalarExpr::IntLit(v), DataType::Int, _) => {
            instrs.push(PInstr::CmpColLitI {
                col: *c,
                op,
                lit: *v,
            });
            return Ok(());
        }
        (ScalarExpr::Col(c), ScalarExpr::FloatLit(v), DataType::Float, _) => {
            instrs.push(PInstr::CmpColLitF {
                col: *c,
                op,
                lit: *v,
            });
            return Ok(());
        }
        (ScalarExpr::Col(c), ScalarExpr::DateLit(v), DataType::Date, _) => {
            instrs.push(PInstr::CmpColLitD {
                col: *c,
                op,
                lit: v.0,
            });
            return Ok(());
        }
        _ => {}
    }
    match (tl, tr) {
        (DataType::Int, DataType::Int) => instrs.push(PInstr::CmpII {
            l: NumProgram::compile(left, schema, true)?,
            r: NumProgram::compile(right, schema, true)?,
            op,
        }),
        (DataType::Date, DataType::Date) => instrs.push(PInstr::CmpDD {
            l: NumProgram::compile(left, schema, true)?,
            r: NumProgram::compile(right, schema, true)?,
            op,
        }),
        (tl, tr) if is_str(tl) && is_str(tr) => instrs.push(PInstr::CmpSS {
            l: str_operand(left)?,
            r: str_operand(right)?,
            op,
        }),
        (DataType::Int | DataType::Float, DataType::Int | DataType::Float) => {
            instrs.push(PInstr::CmpFF {
                l: NumProgram::compile_f64(left, schema, true)?,
                r: NumProgram::compile_f64(right, schema, true)?,
                op,
            })
        }
        (tl, tr) => {
            return Err(ExecError::plan(format!(
                "incomparable operand types: {tl:?} vs {tr:?}"
            )))
        }
    }
    Ok(())
}

fn str_operand(expr: &ScalarExpr) -> Result<StrOperand, ExecError> {
    match expr {
        ScalarExpr::Col(c) => Ok(StrOperand::Col(*c)),
        ScalarExpr::StrLit(s) => Ok(StrOperand::Lit(s.clone())),
        other => Err(ExecError::plan(format!(
            "string-typed comparison operand must be a column or literal: {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Scalar;
    use cordoba_storage::{Date, Field, PageBuilder, Value};

    fn page() -> Arc<Page> {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("qty", DataType::Float),
            Field::new("ship", DataType::Date),
            Field::new("mode", DataType::Str(6)),
        ]);
        let mut b = PageBuilder::new(schema);
        for i in 0..50i64 {
            b.push_row(&[
                Value::Int(i - 25),
                Value::Float(i as f64 * 0.5),
                Value::Date(Date(8000 + i as i32)),
                Value::Str(if i % 3 == 0 { "RAIL" } else { "AIR" }.into()),
            ]);
        }
        b.finish()
    }

    fn tree_select(pred: &Predicate, page: &Page) -> Vec<u32> {
        page.tuples()
            .enumerate()
            .filter_map(|(r, t)| pred.eval(&t).then_some(r as u32))
            .collect()
    }

    #[test]
    fn col_lit_fast_paths_match_tree_walk() {
        let p = page();
        let mut scratch = ExprScratch::default();
        let mut sel = Vec::new();
        for pred in [
            Predicate::col_cmp(0, CmpOp::Ge, 3i64),
            Predicate::col_cmp(1, CmpOp::Lt, 11.25),
            Predicate::col_cmp(2, CmpOp::Gt, Date(8030)),
            Predicate::col_cmp(3, CmpOp::Eq, "RAIL"),
        ] {
            let compiled = CompiledPredicate::compile(&pred, p.schema()).expect("compiles");
            compiled.select(&p, &mut scratch, &mut sel);
            assert_eq!(sel, tree_select(&pred, &p), "{pred:?}");
        }
    }

    #[test]
    fn boolean_combinators_match_tree_walk() {
        let p = page();
        let mut scratch = ExprScratch::default();
        let mut sel = Vec::new();
        let pred = Predicate::Or(vec![
            Predicate::And(vec![
                Predicate::col_cmp(0, CmpOp::Ge, -10i64),
                Predicate::col_cmp(0, CmpOp::Lt, 0i64),
                Predicate::Not(Box::new(Predicate::col_cmp(1, CmpOp::Gt, 5.0))),
            ]),
            Predicate::Like {
                col: 3,
                pattern: "RA%".into(),
            },
            Predicate::And(vec![]),
        ]);
        let compiled = CompiledPredicate::compile(&pred, p.schema()).expect("compiles");
        compiled.select(&p, &mut scratch, &mut sel);
        assert_eq!(sel, tree_select(&pred, &p));
        // And(vec![]) is `true`, so the Or selects everything.
        assert_eq!(sel.len(), p.rows());
    }

    #[test]
    fn mixed_numeric_comparison_coerces_like_tree_walk() {
        let p = page();
        let mut scratch = ExprScratch::default();
        let mut sel = Vec::new();
        // Int column vs float literal: tree-walk coerces through f64.
        let pred = Predicate::col_cmp(0, CmpOp::Ge, 1.5);
        let compiled = CompiledPredicate::compile(&pred, p.schema()).expect("compiles");
        compiled.select(&p, &mut scratch, &mut sel);
        assert_eq!(sel, tree_select(&pred, &p));
        // Expression-vs-expression comparison.
        let pred = Predicate::cmp(
            ScalarExpr::Mul(
                Box::new(ScalarExpr::col(1)),
                Box::new(ScalarExpr::FloatLit(2.0)),
            ),
            CmpOp::Gt,
            ScalarExpr::Add(
                Box::new(ScalarExpr::col(0)),
                Box::new(ScalarExpr::IntLit(20)),
            ),
        );
        let compiled = CompiledPredicate::compile(&pred, p.schema()).expect("compiles");
        compiled.select(&p, &mut scratch, &mut sel);
        assert_eq!(sel, tree_select(&pred, &p));
    }

    #[test]
    fn eval_f64_matches_tree_walk() {
        let p = page();
        let mut scratch = ExprScratch::default();
        let mut out = Vec::new();
        // qty * (k + 3) mixes float and int subtrees.
        let expr = ScalarExpr::Mul(
            Box::new(ScalarExpr::col(1)),
            Box::new(ScalarExpr::Add(
                Box::new(ScalarExpr::col(0)),
                Box::new(ScalarExpr::IntLit(3)),
            )),
        );
        let compiled = CompiledExpr::compile(&expr, p.schema()).expect("compiles");
        compiled.eval_f64_into(&p, &mut scratch, &mut out);
        for (r, t) in p.tuples().enumerate() {
            assert_eq!(Some(out[r]), expr.eval(&t).as_f64());
        }
        // Pure-int expressions keep the tree-walk's f64 round-trip.
        let expr = ScalarExpr::Mul(
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::IntLit(7)),
        );
        let compiled = CompiledExpr::compile(&expr, p.schema()).expect("compiles");
        compiled.eval_f64_into(&p, &mut scratch, &mut out);
        for (r, t) in p.tuples().enumerate() {
            match expr.eval(&t) {
                Scalar::Int(v) => assert_eq!(out[r], v as f64),
                other => panic!("expected int, got {other:?}"),
            }
        }
    }

    #[test]
    fn encode_column_round_trips_all_types() {
        let p = page();
        let out_schema = Schema::new(vec![
            Field::new("k2", DataType::Int),
            Field::new("q", DataType::Float),
            Field::new("ship", DataType::Date),
            Field::new("mode", DataType::Str(6)),
            Field::new("tag", DataType::Str(3)),
        ]);
        let exprs = [
            ScalarExpr::Add(
                Box::new(ScalarExpr::col(0)),
                Box::new(ScalarExpr::IntLit(1)),
            ),
            ScalarExpr::col(1),
            ScalarExpr::col(2),
            ScalarExpr::col(3),
            ScalarExpr::StrLit("ab".into()),
        ];
        let mut scratch = ExprScratch::default();
        let w = out_schema.row_width();
        let mut bytes = vec![0u8; p.rows() * w];
        for (i, e) in exprs.iter().enumerate() {
            CompiledExpr::compile(e, p.schema())
                .expect("compiles")
                .encode_column(
                    &p,
                    &mut scratch,
                    out_schema.fields()[i].dtype,
                    &mut bytes,
                    out_schema.offset(i),
                    w,
                );
        }
        let mut b = PageBuilder::new(out_schema);
        for row in bytes.chunks_exact(w) {
            assert!(b.push_raw(row));
        }
        let got = b.finish();
        for (r, t) in p.tuples().enumerate() {
            let g = got.tuple(r);
            assert_eq!(g.get_int(0), t.get_int(0) + 1);
            assert_eq!(g.get_float(1), t.get_float(1));
            assert_eq!(g.get_date(2), t.get_date(2));
            assert_eq!(g.get_str(3), t.get_str(3));
            assert_eq!(g.get_str(4), "ab");
        }
    }

    #[test]
    fn string_arithmetic_errors_at_compile() {
        let p = page();
        let expr = ScalarExpr::Add(
            Box::new(ScalarExpr::col(3)),
            Box::new(ScalarExpr::IntLit(1)),
        );
        let err = CompiledExpr::compile(&expr, p.schema()).unwrap_err();
        assert!(err.to_string().contains("numeric"), "{err}");
    }

    #[test]
    fn date_vs_float_comparison_errors_at_compile() {
        let p = page();
        let pred = Predicate::col_cmp(2, CmpOp::Lt, 3.0);
        let err = CompiledPredicate::compile(&pred, p.schema()).unwrap_err();
        assert!(err.to_string().contains("incomparable"), "{err}");
    }

    #[test]
    fn out_of_range_column_errors_at_compile() {
        let p = page();
        let err = CompiledExpr::compile(&ScalarExpr::col(99), p.schema()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let err = CompiledPredicate::compile(&Predicate::col_cmp(99, CmpOp::Eq, 1i64), p.schema())
            .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn fused_literal_programs_match_unfused_bit_for_bit() {
        // `price * (1 - discount)`-shaped expressions exercise SubLitF
        // and MulFLit; `qty * 2 + 0.5` exercises MulFLit + AddFLit on a
        // promoted int subtree. Fused and broadcast programs must agree
        // bit-for-bit (same f64 ops on the same operands).
        let p = page();
        let mut scratch = ExprScratch::default();
        let (mut fused, mut plain) = (Vec::new(), Vec::new());
        let exprs = [
            ScalarExpr::Mul(
                Box::new(ScalarExpr::col(1)),
                Box::new(ScalarExpr::Sub(
                    Box::new(ScalarExpr::FloatLit(1.0)),
                    Box::new(ScalarExpr::col(1)),
                )),
            ),
            ScalarExpr::Add(
                Box::new(ScalarExpr::Mul(
                    Box::new(ScalarExpr::col(0)),
                    Box::new(ScalarExpr::FloatLit(2.0)),
                )),
                Box::new(ScalarExpr::FloatLit(0.5)),
            ),
            ScalarExpr::Sub(
                Box::new(ScalarExpr::col(1)),
                Box::new(ScalarExpr::IntLit(3)),
            ),
        ];
        for expr in &exprs {
            let f = CompiledExpr::compile(expr, p.schema()).expect("compiles");
            let u = CompiledExpr::compile_unfused(expr, p.schema()).expect("compiles");
            f.eval_f64_into(&p, &mut scratch, &mut fused);
            u.eval_f64_into(&p, &mut scratch, &mut plain);
            for (r, (a, b)) in fused.iter().zip(&plain).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{expr:?} row {r}: {a} vs {b}");
            }
            // And both match the tree walk.
            for (r, t) in p.tuples().enumerate() {
                let expected = expr.eval(&t).as_f64().expect("numeric");
                assert_eq!(fused[r].to_bits(), expected.to_bits(), "{expr:?} row {r}");
            }
        }
    }

    #[test]
    fn scratch_buffers_recycle_across_pages() {
        let p = page();
        let mut scratch = ExprScratch::default();
        let mut sel = Vec::new();
        let pred = Predicate::And(vec![
            Predicate::col_cmp(0, CmpOp::Ge, -100i64),
            Predicate::col_cmp(1, CmpOp::Ge, 0.0),
        ]);
        let compiled = CompiledPredicate::compile(&pred, p.schema()).expect("compiles");
        for _ in 0..3 {
            compiled.select(&p, &mut scratch, &mut sel);
            assert_eq!(sel.len(), p.rows());
        }
        // Pools hold the recycled buffers; stacks are empty.
        assert!(scratch.stack.is_empty() && scratch.masks.is_empty());
        assert!(!scratch.free_m.is_empty());
    }
}
