//! Synchronous reference executor: the correctness oracle.
//!
//! Executes [`PhysicalPlan`]s directly (no simulator, no pipelining),
//! with semantics defined to match the operator tasks exactly. Every
//! integration test compares simulator output against this executor.

use crate::expr::Agg;
use crate::ops::{key_of, KeyVal};
use crate::plan::{JoinKind, PhysicalPlan};
use cordoba_core::FxHashMap;
use cordoba_storage::{Catalog, DataType, Table, TableBuilder, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Executes a plan, returning materialized result rows.
pub fn execute(catalog: &Catalog, plan: &PhysicalPlan) -> Vec<Vec<Value>> {
    let table = execute_table(catalog, plan);
    table.scan_values().collect()
}

/// Executes a plan into an intermediate table (page-backed, so nested
/// operators reuse the same tuple machinery as the simulator tasks).
pub fn execute_table(catalog: &Catalog, plan: &PhysicalPlan) -> Arc<Table> {
    match plan {
        // lint: allow(documented catalog lookup panic; oracle executor runs on validated plans)
        PhysicalPlan::Scan { table, .. } => catalog.expect(table).clone(),
        PhysicalPlan::Source { .. } => {
            // lint: allow(documented oracle limitation: Source leaves only exist in engine wiring)
            panic!("reference executor cannot run plans with Source leaves")
        }
        PhysicalPlan::Filter {
            input, predicate, ..
        } => {
            let input = execute_table(catalog, input);
            let mut out = TableBuilder::new("filter", input.schema().clone());
            for page in input.pages() {
                for t in page.tuples() {
                    if predicate.eval(&t) {
                        out.push_row(&t.to_values());
                    }
                }
            }
            out.finish()
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            let input = execute_table(catalog, input);
            let schema = plan.output_schema(catalog);
            let mut out = TableBuilder::new("project", schema);
            for page in input.pages() {
                for t in page.tuples() {
                    let row: Vec<Value> =
                        exprs.iter().map(|(_, e)| e.eval(&t).to_value()).collect();
                    out.push_row(&row);
                }
            }
            out.finish()
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let input = execute_table(catalog, input);
            let schema = plan.output_schema(catalog);
            let mut groups: BTreeMap<Vec<KeyVal>, Vec<RefAcc>> = BTreeMap::new();
            for page in input.pages() {
                for t in page.tuples() {
                    let key = key_of(&t, group_by);
                    let accs = groups
                        .entry(key)
                        .or_insert_with(|| aggs.iter().map(|(_, a)| RefAcc::new(a)).collect());
                    for (acc, (_, agg)) in accs.iter_mut().zip(aggs) {
                        acc.update(agg, &t);
                    }
                }
            }
            let mut out = TableBuilder::new("aggregate", schema.clone());
            for (key, accs) in groups {
                let mut row: Vec<Value> = key
                    .iter()
                    .zip(schema.fields())
                    .map(|(k, f)| keyval_to_value(k, f.dtype))
                    .collect();
                for acc in &accs {
                    row.push(acc.finish());
                }
                out.push_row(&row);
            }
            out.finish()
        }
        PhysicalPlan::Sort { input, keys, .. } => {
            let input = execute_table(catalog, input);
            let mut rows: Vec<(Vec<KeyVal>, Vec<Value>)> = Vec::new();
            for page in input.pages() {
                for t in page.tuples() {
                    rows.push((key_of(&t, keys), t.to_values()));
                }
            }
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            let mut out = TableBuilder::new("sort", input.schema().clone());
            for (_, row) in rows {
                out.push_row(&row);
            }
            out.finish()
        }
        PhysicalPlan::HashJoin {
            build,
            probe,
            build_key,
            probe_key,
            kind,
            ..
        } => {
            let build_t = execute_table(catalog, build);
            let probe_t = execute_table(catalog, probe);
            let schema = plan.output_schema(catalog);
            let mut map: FxHashMap<i64, Vec<Vec<Value>>> = FxHashMap::default();
            for page in build_t.pages() {
                for t in page.tuples() {
                    map.entry(t.get_int(*build_key))
                        .or_default()
                        .push(t.to_values());
                }
            }
            let defaults: Vec<Value> = build_t
                .schema()
                .fields()
                .iter()
                .map(|f| default_value(f.dtype))
                .collect();
            let mut out = TableBuilder::new("hashjoin", schema);
            for page in probe_t.pages() {
                for t in page.tuples() {
                    let probe_row = t.to_values();
                    let matches = map.get(&t.get_int(*probe_key));
                    match kind {
                        JoinKind::Inner => {
                            if let Some(rows) = matches {
                                for b in rows {
                                    let mut row = probe_row.clone();
                                    row.extend(b.iter().cloned());
                                    out.push_row(&row);
                                }
                            }
                        }
                        JoinKind::Semi => {
                            if matches.is_some() {
                                out.push_row(&probe_row);
                            }
                        }
                        JoinKind::Anti => {
                            if matches.is_none() {
                                out.push_row(&probe_row);
                            }
                        }
                        JoinKind::LeftOuter => match matches {
                            Some(rows) => {
                                for b in rows {
                                    let mut row = probe_row.clone();
                                    row.extend(b.iter().cloned());
                                    out.push_row(&row);
                                }
                            }
                            None => {
                                let mut row = probe_row.clone();
                                row.extend(defaults.iter().cloned());
                                out.push_row(&row);
                            }
                        },
                    }
                }
            }
            out.finish()
        }
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            ..
        } => {
            // Reference semantics: inner equi-join (order given by the
            // sorted inputs). Implemented via the same grouping logic.
            let left_t = execute_table(catalog, left);
            let right_t = execute_table(catalog, right);
            let schema = plan.output_schema(catalog);
            let mut left_rows: Vec<(i64, Vec<Value>)> = Vec::new();
            for page in left_t.pages() {
                for t in page.tuples() {
                    left_rows.push((t.get_int(*left_key), t.to_values()));
                }
            }
            let mut right_rows: Vec<(i64, Vec<Value>)> = Vec::new();
            for page in right_t.pages() {
                for t in page.tuples() {
                    right_rows.push((t.get_int(*right_key), t.to_values()));
                }
            }
            assert!(
                left_rows.windows(2).all(|w| w[0].0 <= w[1].0),
                "left input sorted"
            );
            assert!(
                right_rows.windows(2).all(|w| w[0].0 <= w[1].0),
                "right input sorted"
            );
            let mut out = TableBuilder::new("mergejoin", schema);
            let (mut i, mut j) = (0usize, 0usize);
            while i < left_rows.len() && j < right_rows.len() {
                match left_rows[i].0.cmp(&right_rows[j].0) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let key = left_rows[i].0;
                        let li = i;
                        while i < left_rows.len() && left_rows[i].0 == key {
                            i += 1;
                        }
                        let rj = j;
                        while j < right_rows.len() && right_rows[j].0 == key {
                            j += 1;
                        }
                        for l in &left_rows[li..i] {
                            for r in &right_rows[rj..j] {
                                let mut row = l.1.clone();
                                row.extend(r.1.iter().cloned());
                                out.push_row(&row);
                            }
                        }
                    }
                }
            }
            out.finish()
        }
        PhysicalPlan::NestedLoopJoin {
            outer,
            inner,
            predicate,
            ..
        } => {
            let outer_t = execute_table(catalog, outer);
            let inner_t = execute_table(catalog, inner);
            let schema = plan.output_schema(catalog);
            let mut out = TableBuilder::new("nlj", schema.clone());
            // Materialize candidate pairs through a one-row page so the
            // predicate sees exactly what the task sees.
            let mut probe = cordoba_storage::PageBuilder::new(schema);
            for opage in outer_t.pages() {
                for ot in opage.tuples() {
                    for ipage in inner_t.pages() {
                        for it in ipage.tuples() {
                            let mut raw = ot.raw().to_vec();
                            raw.extend_from_slice(it.raw());
                            assert!(probe.push_raw(&raw));
                            let candidate = probe.finish_and_reset();
                            if predicate.eval(&candidate.tuple(0)) {
                                out.push_row(&candidate.tuple(0).to_values());
                            }
                        }
                    }
                }
            }
            out.finish()
        }
    }
}

/// Reference accumulator — kept in sync with
/// `ops::aggregate::Acc` by the cross-executor equivalence tests.
#[derive(Debug)]
enum RefAcc {
    Count(i64),
    Sum(f64),
    Avg { sum: f64, count: i64 },
    Min(Option<f64>),
    Max(Option<f64>),
}

impl RefAcc {
    fn new(agg: &Agg) -> Self {
        match agg {
            Agg::Count => RefAcc::Count(0),
            Agg::Sum(_) => RefAcc::Sum(0.0),
            Agg::Avg(_) => RefAcc::Avg { sum: 0.0, count: 0 },
            Agg::Min(_) => RefAcc::Min(None),
            Agg::Max(_) => RefAcc::Max(None),
        }
    }

    fn update(&mut self, agg: &Agg, tuple: &cordoba_storage::TupleRef<'_>) {
        match (self, agg) {
            (RefAcc::Count(n), Agg::Count) => *n += 1,
            // lint: allow(aggregate inputs type-check as numeric before execution)
            (RefAcc::Sum(s), Agg::Sum(e)) => *s += e.eval(tuple).as_f64().expect("numeric"),
            (RefAcc::Avg { sum, count }, Agg::Avg(e)) => {
                *sum += e.eval(tuple).as_f64().expect("numeric"); // lint: allow(type-checked numeric)
                *count += 1;
            }
            (RefAcc::Min(m), Agg::Min(e)) => {
                let v = e.eval(tuple).as_f64().expect("numeric"); // lint: allow(type-checked numeric)
                *m = Some(m.map_or(v, |c| c.min(v)));
            }
            (RefAcc::Max(m), Agg::Max(e)) => {
                let v = e.eval(tuple).as_f64().expect("numeric"); // lint: allow(type-checked numeric)
                *m = Some(m.map_or(v, |c| c.max(v)));
            }
            // lint: allow(accumulators were built from this same spec list)
            _ => panic!("accumulator/spec mismatch"),
        }
    }

    fn finish(&self) -> Value {
        match self {
            RefAcc::Count(n) => Value::Int(*n),
            RefAcc::Sum(s) => Value::Float(*s),
            RefAcc::Avg { sum, count } => Value::Float(if *count == 0 {
                0.0
            } else {
                sum / *count as f64
            }),
            RefAcc::Min(m) => Value::Float(m.unwrap_or(0.0)),
            RefAcc::Max(m) => Value::Float(m.unwrap_or(0.0)),
        }
    }
}

fn keyval_to_value(k: &KeyVal, dtype: DataType) -> Value {
    match (k, dtype) {
        (KeyVal::Int(v), DataType::Int) => Value::Int(*v),
        (KeyVal::Float(v), DataType::Float) => Value::Float(v.0),
        (KeyVal::Date(v), DataType::Date) => Value::Date(cordoba_storage::Date(*v)),
        (KeyVal::Str(s), DataType::Str(_)) => Value::Str(s.clone()),
        // lint: allow(group keys are derived from the schema they decode against)
        (k, d) => panic!("key {k:?} does not match type {d:?}"),
    }
}

fn default_value(dtype: DataType) -> Value {
    match dtype {
        DataType::Int => Value::Int(0),
        DataType::Float => Value::Float(0.0),
        DataType::Date => Value::Date(cordoba_storage::Date(0)),
        DataType::Str(_) => Value::Str(String::new()),
    }
}

/// Sorts rows into a canonical order for multiset comparison in tests.
pub fn canonicalize(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::OpCost;
    use crate::expr::{CmpOp, Predicate, ScalarExpr};
    use cordoba_storage::{Field, Schema};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
            Field::new("tag", DataType::Str(2)),
        ]);
        let mut b = TableBuilder::new("t", schema);
        for i in 0..20 {
            let tag = if i % 2 == 0 { "ev" } else { "od" };
            b.push_row(&[
                Value::Int(i),
                Value::Float(i as f64),
                Value::Str(tag.into()),
            ]);
        }
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    fn scan() -> Box<PhysicalPlan> {
        Box::new(PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::default(),
        })
    }

    #[test]
    fn filter_and_count() {
        let cat = catalog();
        let plan = PhysicalPlan::Filter {
            input: scan(),
            predicate: Predicate::col_cmp(0, CmpOp::Ge, 15i64),
            cost: OpCost::default(),
        };
        assert_eq!(execute(&cat, &plan).len(), 5);
    }

    #[test]
    fn grouped_aggregate() {
        let cat = catalog();
        let plan = PhysicalPlan::Aggregate {
            input: scan(),
            group_by: vec![2],
            aggs: vec![
                ("n".into(), Agg::Count),
                ("s".into(), Agg::Sum(ScalarExpr::col(1))),
            ],
            cost: OpCost::default(),
        };
        let rows = execute(&cat, &plan);
        assert_eq!(
            rows,
            vec![
                vec![Value::Str("ev".into()), Value::Int(10), Value::Float(90.0)],
                vec![Value::Str("od".into()), Value::Int(10), Value::Float(100.0)],
            ]
        );
    }

    #[test]
    fn sort_orders_rows() {
        let cat = catalog();
        let plan = PhysicalPlan::Sort {
            input: scan(),
            keys: vec![2, 0],
            cost: OpCost::default(),
        };
        let rows = execute(&cat, &plan);
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[0][2], Value::Str("ev".into()));
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[10][2], Value::Str("od".into()));
        assert_eq!(rows[10][0], Value::Int(1));
    }

    #[test]
    fn self_semi_join_keeps_all() {
        let cat = catalog();
        let plan = PhysicalPlan::HashJoin {
            build: scan(),
            probe: scan(),
            build_key: 0,
            probe_key: 0,
            kind: JoinKind::Semi,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        assert_eq!(execute(&cat, &plan).len(), 20);
    }

    #[test]
    fn canonicalize_sorts_rows() {
        let rows = vec![
            vec![Value::Int(2)],
            vec![Value::Int(1)],
            vec![Value::Int(10)],
        ];
        let c = canonicalize(rows);
        assert_eq!(c[0], vec![Value::Int(1)]);
        // Note: canonical order is lexicographic on Debug strings, not
        // numeric — fine for equality comparison purposes.
        assert_eq!(c.len(), 3);
    }

    #[test]
    #[should_panic(expected = "Source")]
    fn source_leaves_rejected() {
        let cat = catalog();
        let schema = cat.expect("t").schema().clone();
        let plan = PhysicalPlan::Source {
            schema: crate::plan::SchemaRef(schema),
        };
        execute(&cat, &plan);
    }
}
