//! Accounting invariants for capped open-loop runs and the service
//! loop: no offered query may vanish from a report — every one is
//! completed, failed, rejected, or in flight.

use cordoba_engine::{
    poisson_arrivals, run_once, run_once_capped, run_open_loop, run_service, ArrivalSchedule,
    Disposition, EngineConfig, ExecError, ParallelConfig, Policy, QuerySpec, ServiceConfig,
};
use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_storage::Catalog;
use cordoba_workload::arrivals::{bursty, chaos, poisson_mix, ramp};
use cordoba_workload::{q1, q6, CostProfile};

fn catalog() -> Catalog {
    generate(&TpchConfig {
        scale_factor: 0.002,
        seed: 11,
        ..TpchConfig::default()
    })
}

fn pool() -> Vec<QuerySpec> {
    let costs = CostProfile::paper();
    vec![q6(&costs), q1(&costs)]
}

fn engine_cfg(policy: Policy) -> EngineConfig {
    EngineConfig {
        contexts: 2,
        policy,
        // Pinned: EngineConfig::default() consults CORDOBA_WORKERS.
        parallel: ParallelConfig::with_workers(1),
        ..EngineConfig::default()
    }
}

/// `submitted == completed + failures + in_flight` over a sweep of tiny
/// time caps that cut the run at every phase: before any arrival,
/// mid-arrivals, mid-execution, and after the drain.
#[test]
fn capped_open_loop_accounting_balances() {
    let cat = catalog();
    let schedule = poisson_arrivals(&pool()[0], 20, 3_000, 7);
    for cap in [1, 1_000, 10_000, 100_000, 1_000_000, u64::MAX / 4] {
        let report = run_open_loop(
            &cat,
            schedule.clone(),
            &engine_cfg(Policy::AlwaysShare),
            cap,
        );
        // The constructor asserts the invariant; re-check it here so a
        // future refactor of the constructor cannot silently drop it.
        assert_eq!(
            report.submitted,
            report.completed + report.failures.len() + report.in_flight,
            "cap {cap}: {report:?}"
        );
        assert_eq!(report.dispositions.len(), 20);
        let completed = report
            .dispositions
            .iter()
            .filter(|d| matches!(d, Disposition::Completed { .. }))
            .count();
        assert_eq!(completed, report.completed, "cap {cap}");
    }
}

/// The invariant holds for bursty schedules whose arrivals cluster
/// around the cap boundary.
#[test]
fn capped_bursty_schedule_accounts_for_every_query() {
    let cat = catalog();
    let schedule = bursty(&pool(), 4, 6, 10, 200_000, 21);
    let total = schedule.len();
    for cap in [50_000, 400_000, 900_000] {
        let report = run_open_loop(
            &cat,
            schedule.clone(),
            &engine_cfg(Policy::AlwaysShare),
            cap,
        );
        assert_eq!(report.submitted, total);
        assert_eq!(
            report.submitted,
            report.completed + report.failures.len() + report.in_flight
        );
    }
}

/// Injected faults land in `failures` (as `ExecError::Injected`), and
/// the books still balance under a cap.
#[test]
fn capped_run_with_injected_failures_balances() {
    let cat = catalog();
    let schedule = chaos(poisson_mix(&pool(), 24, 2_000, 3), 0.4, 5);
    let injected = schedule.iter().filter(|(_, s)| s.chaos.is_some()).count();
    assert!(injected > 0, "campaign must mark something");
    let report = run_open_loop(
        &cat,
        schedule,
        &engine_cfg(Policy::AlwaysShare),
        u64::MAX / 4,
    );
    assert_eq!(report.in_flight, 0, "uncapped run drains");
    assert_eq!(report.failures.len(), injected);
    assert!(report
        .failures
        .iter()
        .all(|(_, e)| matches!(e, ExecError::Injected { .. })));
    assert_eq!(report.completed, 24 - injected);
    // Chaos queries fail at the sink; their healthy group peers are
    // unaffected.
    assert!(report.completed > 0);
}

/// A wedged/capped batch fails its unfinished queries with a typed
/// `Stalled` error instead of killing the harness.
#[test]
fn run_once_capped_fails_stalled_queries_typed() {
    let cat = catalog();
    let specs: Vec<QuerySpec> = (0..6).map(|_| pool()[0].clone()).collect();
    let out = run_once_capped(&cat, &specs, &engine_cfg(Policy::NeverShare), Some(10));
    assert_eq!(out.failures.len(), 6, "nothing can finish in 10 units");
    assert!(out.failures.iter().all(|(_, e)| matches!(
        e,
        ExecError::Stalled {
            reason: "time cap",
            ..
        }
    )));
    // Uncapped, the same batch completes with no failures.
    let out = run_once(&cat, &specs, &engine_cfg(Policy::NeverShare));
    assert!(out.failures.is_empty());
    assert_eq!(out.results.len(), 6);
}

/// Service backpressure: a capacity-1 admission queue under a tight
/// burst rejects most of the burst, and `offered == completed + failed
/// + rejected + in_flight`.
#[test]
fn service_rejects_when_admission_queue_is_full() {
    let cat = catalog();
    let schedule: ArrivalSchedule = (0..10).map(|_| (1_000, pool()[0].clone())).collect();
    let cfg = ServiceConfig {
        engine: engine_cfg(Policy::NeverShare),
        admission_capacity: 1,
        time_cap: None,
    };
    let report = run_service(&cat, schedule, &cfg);
    assert_eq!(report.offered, 10);
    assert!(report.rejected > 0, "{report:?}");
    assert_eq!(report.completed + report.rejected, 10);
    assert_eq!(report.in_flight, 0);
    assert_eq!(
        report
            .dispositions
            .iter()
            .filter(|d| **d == Disposition::Rejected)
            .count(),
        report.rejected
    );
    assert!(report.rejection_rate() > 0.0);
}

/// With ample capacity the service completes the whole schedule and the
/// latency histogram covers every completion.
#[test]
fn service_completes_all_under_ample_capacity() {
    let cat = catalog();
    let schedule = poisson_mix(&pool(), 16, 4_000, 9);
    let cfg = ServiceConfig {
        engine: engine_cfg(Policy::AlwaysShare),
        admission_capacity: 64,
        time_cap: None,
    };
    let report = run_service(&cat, schedule, &cfg);
    assert_eq!(report.completed, 16, "{report:?}");
    assert_eq!(report.rejected + report.in_flight, 0);
    assert_eq!(report.latency().len(), 16);
    assert!(report.latency().summary().unwrap().p99 >= report.latency().summary().unwrap().p50);
    assert!(report.mean_response().unwrap() > 0.0);
    assert!(report.throughput() > 0.0);
}

/// A time-capped saturation ramp exercises all four dispositions at
/// once — completed, rejected, in flight (and the books still balance).
#[test]
fn capped_service_ramp_accounts_for_every_disposition() {
    let cat = catalog();
    let schedule = ramp(&pool(), 40, 20_000, 10, 13);
    let cap = schedule[25].0;
    let cfg = ServiceConfig {
        engine: engine_cfg(Policy::AlwaysShare),
        admission_capacity: 4,
        time_cap: Some(cap),
    };
    let report = run_service(&cat, schedule, &cfg);
    assert_eq!(report.offered, 40);
    assert_eq!(
        report.offered,
        report.completed + report.failures.len() + report.rejected + report.in_flight,
        "{report:?}"
    );
    assert!(report.in_flight > 0, "cap strands queries: {report:?}");
    assert!(report.makespan <= cap);
}

/// Chaos queries fail inside the service while their healthy peers
/// complete; failures are schedule-indexed.
#[test]
fn service_chaos_failures_are_isolated_and_indexed() {
    let cat = catalog();
    let schedule = chaos(poisson_mix(&pool(), 20, 3_000, 31), 0.3, 37);
    let marked: Vec<usize> = schedule
        .iter()
        .enumerate()
        .filter(|(_, (_, s))| s.chaos.is_some())
        .map(|(i, _)| i)
        .collect();
    assert!(!marked.is_empty());
    let cfg = ServiceConfig {
        engine: engine_cfg(Policy::AlwaysShare),
        admission_capacity: 64,
        time_cap: None,
    };
    let report = run_service(&cat, schedule, &cfg);
    let mut failed: Vec<usize> = report.failures.iter().map(|(i, _)| *i).collect();
    failed.sort_unstable();
    assert_eq!(failed, marked, "exactly the marked queries fail");
    assert_eq!(report.completed, 20 - marked.len());
    assert_eq!(report.rejected + report.in_flight, 0);
}
