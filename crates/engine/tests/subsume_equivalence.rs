//! Equivalence suite for subsumption-based sharing: on random Q6/Q1
//! family workloads (distinct but nested predicate windows — no two
//! queries byte-identical), shared execution with the fingerprint cache
//! enabled must produce exactly the rows unshared execution produces,
//! row-for-row and bit-for-bit, and both must match the synchronous
//! reference executor. Covers workers ∈ {1, 4} and tiny memory budgets.

use cordoba_engine::{
    run_once, run_open_loop_collecting, EngineConfig, ParallelConfig, Policy, QuerySpec,
};
use cordoba_exec::{reference, MemoryConfig};
use cordoba_storage::{Catalog, Value, PAGE_SIZE};
use cordoba_workload::{family_specs, CostProfile, FamilyConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn catalog() -> &'static Catalog {
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG.get_or_init(|| {
        cordoba_storage::tpch::generate(&cordoba_storage::tpch::TpchConfig {
            scale_factor: 0.002,
            seed: 11,
            ..cordoba_storage::tpch::TpchConfig::default()
        })
    })
}

/// Floats compared by bit pattern, so `-0.0` vs `0.0` or any rounding
/// difference between the shared and unshared paths fails loudly.
fn bit_exact(rows: &[Vec<Value>]) -> Vec<Vec<(u8, u64, String)>> {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Int(i) => (0u8, *i as u64, String::new()),
                    Value::Float(f) => (1u8, f.to_bits(), String::new()),
                    other => (2u8, 0, format!("{other:?}")),
                })
                .collect()
        })
        .collect()
}

fn config(policy: Policy, workers: usize, budget: Option<usize>, cache: usize) -> EngineConfig {
    EngineConfig {
        contexts: 2,
        policy,
        parallel: ParallelConfig::with_workers(workers),
        memory: MemoryConfig {
            query_budget: budget,
            ..MemoryConfig::default()
        },
        fragment_cache: cache,
        ..EngineConfig::default()
    }
}

fn check_equivalence(specs: &[QuerySpec], workers: usize, budget: Option<usize>) {
    let cat = catalog();
    for (i, a) in specs.iter().enumerate() {
        for b in &specs[i + 1..] {
            assert_ne!(a, b, "workload must not contain byte-identical queries");
        }
    }
    let shared = run_once(cat, specs, &config(Policy::AlwaysShare, workers, budget, 8));
    let unshared = run_once(cat, specs, &config(Policy::NeverShare, workers, budget, 0));
    assert!(shared.failures.is_empty(), "{:?}", shared.failures);
    assert!(unshared.failures.is_empty(), "{:?}", unshared.failures);
    assert!(
        shared.group_sizes.iter().any(|&g| g > 1),
        "nested-family workload must actually share: {:?}",
        shared.group_sizes
    );
    for (i, spec) in specs.iter().enumerate() {
        let oracle = reference::execute(cat, &spec.plan);
        assert_eq!(
            bit_exact(&shared.results[i]),
            bit_exact(&oracle),
            "shared vs reference, query {i} ({})",
            spec.name
        );
        assert_eq!(
            bit_exact(&unshared.results[i]),
            bit_exact(&oracle),
            "unshared vs reference, query {i} ({})",
            spec.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shared (pivot + residual, cache enabled) ≡ unshared ≡ reference
    /// on random family workloads, across worker counts and budgets.
    #[test]
    fn shared_subsumption_is_bit_exact(
        seed in 0u64..10_000,
        per_family in 2usize..=4,
        workers_ix in 0usize..2,
        budget_ix in 0usize..2,
    ) {
        let specs = family_specs(
            &CostProfile::paper(),
            &FamilyConfig { seed, families: 2, per_family },
        );
        let workers = [1, 4][workers_ix];
        let budget = [None, Some(16 * PAGE_SIZE)][budget_ix];
        check_equivalence(&specs, workers, budget);
    }
}

/// A late arrival whose window is nested inside an already-completed
/// fragment is served from the fragment cache: the replay must be
/// row-for-row identical to a cold run, and measurably faster.
#[test]
fn cache_replay_serves_late_arrivals_exactly() {
    let cat = catalog();
    let specs = family_specs(
        &CostProfile::paper(),
        &FamilyConfig {
            seed: 42,
            families: 1,
            per_family: 3,
        },
    );
    // Wave 1: the widest member runs alone and populates the cache.
    // Wave 2: the narrower members arrive long after wave 1 completed.
    let schedule = vec![
        (0, specs[0].clone()),
        (40_000_000, specs[1].clone()),
        (40_000_000, specs[2].clone()),
    ];
    let cfg = config(Policy::AlwaysShare, 1, None, 8);
    let (report, results) = run_open_loop_collecting(cat, schedule, &cfg, u64::MAX / 4);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.completed, 3, "{report:?}");
    assert!(
        report.sharing.fingerprint_hits >= 1,
        "late nested arrivals must hit the cache: {:?}",
        report.sharing
    );
    for (i, spec) in specs.iter().enumerate() {
        assert_eq!(
            bit_exact(&results[i]),
            bit_exact(&reference::execute(cat, &spec.plan)),
            "query {i} ({})",
            spec.name
        );
    }
    // Replayed queries skip the scan entirely; their response times
    // must beat the cold wide query's.
    let cold = report.response_times[0];
    for &warm in &report.response_times[1..] {
        assert!(warm < cold, "replay {warm} should beat cold {cold}");
    }
}

/// With the cache disabled (the default), the same staggered schedule
/// records no cache activity — the knob really gates the subsystem.
#[test]
fn cache_disabled_by_default_records_no_activity() {
    let cat = catalog();
    let specs = family_specs(
        &CostProfile::paper(),
        &FamilyConfig {
            seed: 42,
            families: 1,
            per_family: 2,
        },
    );
    let schedule = vec![(0, specs[0].clone()), (40_000_000, specs[1].clone())];
    let cfg = config(Policy::AlwaysShare, 1, None, 0);
    let (report, results) = run_open_loop_collecting(cat, schedule, &cfg, u64::MAX / 4);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.sharing.fingerprint_hits, 0);
    assert_eq!(report.sharing.fingerprint_misses, 0);
    for (i, spec) in specs.iter().enumerate() {
        assert_eq!(
            bit_exact(&results[i]),
            bit_exact(&reference::execute(cat, &spec.plan)),
            "query {i} ({})",
            spec.name
        );
    }
}
