//! Integration: every sharing policy must preserve query results, and
//! the threaded executor must agree with the simulated engine — results
//! are policy-invariant even when the schedule is not.

use cordoba_engine::{run_once, thread_exec, EngineConfig, Policy, QuerySpec};
use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
use cordoba_exec::{reference, OpCost, PhysicalPlan};
use cordoba_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};

fn catalog() -> Catalog {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ]);
    let mut b = TableBuilder::new("t", schema);
    for i in 0..3000 {
        b.push_row(&[Value::Int(i % 97), Value::Float((i % 13) as f64)]);
    }
    let mut c = Catalog::new();
    c.register(b.finish());
    c
}

/// Grouped aggregate over a filtered scan, shareable at the scan.
fn query() -> QuerySpec {
    let scan = PhysicalPlan::Scan {
        table: "t".into(),
        cost: OpCost::default(),
    };
    let plan = PhysicalPlan::Aggregate {
        input: Box::new(PhysicalPlan::Filter {
            input: Box::new(scan.clone()),
            predicate: Predicate::col_cmp(0, CmpOp::Lt, 50i64),
            cost: OpCost::default(),
        }),
        group_by: vec![0],
        aggs: vec![
            ("n".into(), Agg::Count),
            ("total".into(), Agg::Sum(ScalarExpr::col(1))),
        ],
        cost: OpCost::default(),
    };
    QuerySpec::shared_at("grouped", plan, scan)
}

#[test]
fn all_policies_preserve_results_across_context_counts() {
    let catalog = catalog();
    let spec = query();
    let expected = reference::execute(&catalog, &spec.plan);
    assert!(!expected.is_empty());
    for contexts in [1usize, 2, 8] {
        for policy in [Policy::NeverShare, Policy::AlwaysShare] {
            let label = format!("{policy:?} on {contexts} contexts");
            let out = run_once(
                &catalog,
                &vec![spec.clone(); 5],
                &EngineConfig {
                    contexts,
                    policy: policy.clone(),
                    ..EngineConfig::default()
                },
            );
            assert_eq!(out.results.len(), 5, "{label}: lost queries");
            for rows in &out.results {
                assert_eq!(rows, &expected, "{label}: diverged");
            }
        }
    }
}

#[test]
fn threaded_and_simulated_execution_agree() {
    let catalog = catalog();
    let spec = query();
    let expected = reference::execute(&catalog, &spec.plan);
    let threaded = thread_exec::run_shared(&catalog, &spec, 4);
    for rows in &threaded.results {
        assert_eq!(rows, &expected, "threaded shared run diverged");
    }
    let sim = run_once(
        &catalog,
        &vec![spec.clone(); 4],
        &EngineConfig {
            contexts: 4,
            policy: Policy::AlwaysShare,
            ..EngineConfig::default()
        },
    );
    for rows in &sim.results {
        assert_eq!(rows, &expected, "simulated shared run diverged");
    }
}
