//! Integration: every sharing policy must preserve query results, and
//! the threaded executor must agree with the simulated engine — results
//! are policy-invariant even when the schedule is not.

use cordoba_engine::{run_once, thread_exec, EngineConfig, MemoryConfig, Policy, QuerySpec};
use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
use cordoba_exec::{reference, JoinKind, OpCost, PhysicalPlan};
use cordoba_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value, PAGE_SIZE};

fn catalog() -> Catalog {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Float),
    ]);
    let mut b = TableBuilder::new("t", schema);
    for i in 0..3000 {
        b.push_row(&[Value::Int(i % 97), Value::Float((i % 13) as f64)]);
    }
    let mut c = Catalog::new();
    c.register(b.finish());
    c
}

/// Grouped aggregate over a filtered scan, shareable at the scan.
fn query() -> QuerySpec {
    let scan = PhysicalPlan::Scan {
        table: "t".into(),
        cost: OpCost::default(),
    };
    let plan = PhysicalPlan::Aggregate {
        input: Box::new(PhysicalPlan::Filter {
            input: Box::new(scan.clone()),
            predicate: Predicate::col_cmp(0, CmpOp::Lt, 50i64),
            cost: OpCost::default(),
        }),
        group_by: vec![0],
        aggs: vec![
            ("n".into(), Agg::Count),
            ("total".into(), Agg::Sum(ScalarExpr::col(1))),
        ],
        cost: OpCost::default(),
    };
    QuerySpec::shared_at("grouped", plan, scan)
}

#[test]
fn all_policies_preserve_results_across_context_counts() {
    let catalog = catalog();
    let spec = query();
    let expected = reference::execute(&catalog, &spec.plan);
    assert!(!expected.is_empty());
    for contexts in [1usize, 2, 8] {
        for policy in [Policy::NeverShare, Policy::AlwaysShare] {
            let label = format!("{policy:?} on {contexts} contexts");
            let out = run_once(
                &catalog,
                &vec![spec.clone(); 5],
                &EngineConfig {
                    contexts,
                    policy: policy.clone(),
                    ..EngineConfig::default()
                },
            );
            assert_eq!(out.results.len(), 5, "{label}: lost queries");
            for rows in &out.results {
                assert_eq!(rows, &expected, "{label}: diverged");
            }
        }
    }
}

/// A tiny per-query budget forces the engine's sorts and hash joins
/// out of core; every query must still complete (spill, not fail) with
/// rows identical to an unbounded run.
#[test]
fn tiny_budget_engine_run_spills_and_preserves_results() {
    let catalog = catalog();
    let scan = || {
        Box::new(PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::default(),
        })
    };
    let sort = QuerySpec::unshared(
        "sorted",
        PhysicalPlan::Sort {
            input: scan(),
            keys: vec![0],
            cost: OpCost::default(),
        },
    );
    let join = QuerySpec::unshared(
        "joined",
        PhysicalPlan::HashJoin {
            build: Box::new(PhysicalPlan::Filter {
                input: scan(),
                predicate: Predicate::col_cmp(0, CmpOp::Lt, 10i64),
                cost: OpCost::default(),
            }),
            probe: scan(),
            build_key: 0,
            probe_key: 0,
            kind: JoinKind::Inner,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        },
    );
    let specs = vec![sort, join];
    let unbounded = run_once(
        &catalog,
        &specs,
        &EngineConfig {
            contexts: 2,
            ..EngineConfig::default()
        },
    );
    let tiny = run_once(
        &catalog,
        &specs,
        &EngineConfig {
            contexts: 2,
            memory: MemoryConfig {
                query_budget: Some(2 * PAGE_SIZE),
                ..MemoryConfig::default()
            },
            ..EngineConfig::default()
        },
    );
    assert!(unbounded.failures.is_empty(), "{:?}", unbounded.failures);
    assert!(
        tiny.failures.is_empty(),
        "tiny budget must spill, not fail: {:?}",
        tiny.failures
    );
    // The sort's order is deterministic; the join's output order may
    // differ across spill partitions, so compare it as a multiset.
    assert_eq!(tiny.results[0], unbounded.results[0], "sort diverged");
    assert_eq!(
        reference::canonicalize(tiny.results[1].clone()),
        reference::canonicalize(unbounded.results[1].clone()),
        "join diverged"
    );
}

#[test]
fn threaded_and_simulated_execution_agree() {
    let catalog = catalog();
    let spec = query();
    let expected = reference::execute(&catalog, &spec.plan);
    let threaded = thread_exec::run_shared(&catalog, &spec, 4);
    for rows in &threaded.results {
        assert_eq!(rows, &expected, "threaded shared run diverged");
    }
    let sim = run_once(
        &catalog,
        &vec![spec.clone(); 4],
        &EngineConfig {
            contexts: 4,
            policy: Policy::AlwaysShare,
            ..EngineConfig::default()
        },
    );
    for rows in &sim.results {
        assert_eq!(rows, &expected, "simulated shared run diverged");
    }
}
