//! Group formation and dispatch: the staged engine's sharing mechanism.
//!
//! Arriving queries queue briefly (the *formation window*, standing in
//! for the stage-queue residence time of the paper's packet-based
//! engine); compatible queries whose admission the [`Policy`] approves
//! merge into a sharing group. At dispatch, the group's pivot sub-plan
//! is instantiated **once** with one output channel per member, and each
//! member's private above-fragment is grafted onto its channel.
//!
//! Compatibility is *semantic*, not structural: pivots are bucketed by
//! [`cordoba_exec::subsume::fingerprint`] and an arrival joins a group
//! when one pivot subsumes the other. A narrower arrival attaches with
//! a residual filter; a wider one *widens* the group's pivot (existing
//! members re-split against the widened pivot at dispatch, which is
//! sound because subsumption is transitive). When a
//! [`crate::fragment_cache::FragmentCache`] is configured, the output
//! pages of each fresh shared pivot are captured, and a later arrival
//! whose pivot a cached fragment subsumes replays the pages through its
//! residual instead of re-running the pivot.

use crate::fragment_cache::CachedFragment;
use crate::policy::{OverlapInfo, Policy};
use crate::query::QuerySpec;
use crate::sharing::split_with_residual;
use cordoba_exec::ops::{Fanout, ScanTask, SinkTask};
use cordoba_exec::subsume::{coverage_estimate, fingerprint, subsume_residual};
use cordoba_exec::wiring::{instantiate_into, WiringConfig};
use cordoba_exec::{ExecError, FaultCell, OpCost, PhysicalPlan, QueryResources};
use cordoba_sim::channel::{self};
use cordoba_sim::{Spawner, Step, Task, TaskCtx, TaskId, VTime};
use cordoba_storage::{Catalog, Page};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

/// An arrival awaiting group formation.
#[derive(Debug, Clone)]
pub(crate) struct Arrival {
    pub submission: usize,
    pub spec: QuerySpec,
}

/// A forming (not yet dispatched) sharing group.
pub(crate) struct PendingGroup {
    /// The group's (possibly widened) pivot.
    pivot: Option<PhysicalPlan>,
    /// Fingerprint of `pivot`'s filter-peeled base (bucket key).
    fingerprint: Option<u64>,
    /// When set, the pivot's output replays from these cached pages
    /// instead of executing the pivot.
    cached: Option<CachedFragment>,
    members: Vec<Arrival>,
    due: VTime,
}

/// `s` (per-consumer output cost) of a plan's root operator — what a
/// cached replay still has to pay per member.
fn root_out_per_tuple(plan: &PhysicalPlan) -> f64 {
    match plan {
        PhysicalPlan::Scan { cost, .. }
        | PhysicalPlan::Filter { cost, .. }
        | PhysicalPlan::Project { cost, .. }
        | PhysicalPlan::Aggregate { cost, .. }
        | PhysicalPlan::Sort { cost, .. }
        | PhysicalPlan::NestedLoopJoin { cost, .. }
        | PhysicalPlan::MergeJoin { cost, .. } => cost.out_per_tuple,
        PhysicalPlan::HashJoin { probe_cost, .. } => probe_cost.out_per_tuple,
        PhysicalPlan::Source { .. } => 0.0,
    }
}

/// Per-submission result buffers (run-once collection mode).
pub(crate) type CollectBuffers = Vec<Rc<RefCell<Vec<Arc<Page>>>>>;

/// Shared mutable engine state (single-threaded simulator world).
pub(crate) struct EngineCore {
    pub catalog: Rc<Catalog>,
    pub wiring: WiringConfig,
    pub policy: Policy,
    pub contexts: usize,
    /// Group-formation window in virtual time.
    pub window: VTime,
    /// Closed system: completed queries are resubmitted.
    pub resubmit: bool,
    pub max_group: usize,
    pub sink_cost: OpCost,
    pub arrivals: VecDeque<Arrival>,
    pub pending: Vec<PendingGroup>,
    pub dispatcher: Option<TaskId>,
    /// `(virtual completion time, query name)` per finished query.
    pub completions: Vec<(VTime, String)>,
    /// `(submission id, error)` per failed query: plans rejected at
    /// instantiation and runtime faults (e.g. unsorted merge inputs,
    /// spill I/O errors, exhausted memory budgets). Failed queries
    /// never appear in `completions` and are not resubmitted.
    pub failures: Vec<(usize, ExecError)>,
    /// Submission time by submission id (0 for pre-run submissions).
    pub arrival_times: Vec<VTime>,
    /// `(submission id, completion time)` pairs, for response times.
    pub completion_records: Vec<(usize, VTime)>,
    /// Sizes of dispatched groups (sharing diagnostics).
    pub group_sizes: Vec<usize>,
    pub next_submission: usize,
    /// Arrivals scheduled by an open-system driver but not yet
    /// submitted; keeps the dispatcher alive while the schedule drains.
    pub external_arrivals_pending: usize,
    /// Queries submitted but not yet completed (the closed system's
    /// multiprogramming level) — the denominator of the fair-share
    /// effective-processor estimate handed to the policy.
    pub live_queries: usize,
    pub group_seq: u64,
    /// Result collection buffers by submission id (run-once mode).
    pub collect: Option<CollectBuffers>,
    /// Cache of completed shared-fragment outputs (`None` = disabled).
    pub fragment_cache: Option<crate::fragment_cache::FragmentCache>,
    /// Arrivals that joined a group under a structurally *different*
    /// (subsuming) pivot — sharing the old equality test would miss.
    pub subsume_joins: u64,
    /// Times a pending group's pivot was replaced by a wider arrival's.
    pub pivot_widenings: u64,
}

impl EngineCore {
    pub(crate) fn submit(&mut self, spec: QuerySpec) -> usize {
        self.submit_at(spec, 0)
    }

    pub(crate) fn submit_at(&mut self, spec: QuerySpec, now: VTime) -> usize {
        let submission = self.next_submission;
        self.next_submission += 1;
        if let Some(collect) = &mut self.collect {
            debug_assert_eq!(collect.len(), submission);
            collect.push(Rc::new(RefCell::new(Vec::new())));
        }
        debug_assert_eq!(self.arrival_times.len(), submission);
        self.arrival_times.push(now);
        self.arrivals.push_back(Arrival { submission, spec });
        self.live_queries += 1;
        submission
    }
}

/// The engine's control task: forms and dispatches sharing groups.
pub struct DispatcherTask {
    pub(crate) core: Rc<RefCell<EngineCore>>,
}

impl DispatcherTask {
    fn assimilate_arrivals(core: &mut EngineCore, now: VTime) {
        while let Some(arrival) = core.arrivals.pop_front() {
            let mut joined = false;
            if core.policy.may_share() {
                if let Some(pivot) = &arrival.spec.pivot {
                    let fp = fingerprint(pivot);
                    for group in core.pending.iter_mut() {
                        if group.fingerprint != Some(fp) || group.members.len() >= core.max_group {
                            continue;
                        }
                        // A fingerprint implies a pivot; a pivot-less
                        // group can never share, so skip it rather than
                        // take the engine down on a malformed group.
                        let Some(group_pivot) = group.pivot.as_ref() else {
                            continue;
                        };
                        let exact = group_pivot == pivot;
                        // The group runs whichever pivot subsumes the
                        // other: join a wider group through a residual,
                        // or widen the group to this arrival's pivot
                        // (disallowed for cached groups — their pages
                        // are fixed).
                        let (wide, widen) = if subsume_residual(group_pivot, pivot).is_some() {
                            (group_pivot.clone(), false)
                        } else if group.cached.is_none()
                            && subsume_residual(pivot, group_pivot).is_some()
                        {
                            (pivot.clone(), true)
                        } else {
                            continue;
                        };
                        let member_infos: Vec<OverlapInfo<'_>> = group
                            .members
                            .iter()
                            .map(|m| OverlapInfo {
                                name: &m.spec.name,
                                // Members always carry a pivot (they
                                // joined through one); treat a missing
                                // one as full coverage, the conservative
                                // admission input.
                                coverage: m
                                    .spec
                                    .pivot
                                    .as_ref()
                                    .map_or(1.0, |p| coverage_estimate(&wide, p)),
                            })
                            .collect();
                        let candidate = OverlapInfo {
                            name: &arrival.spec.name,
                            coverage: coverage_estimate(&wide, pivot),
                        };
                        // Fair share of the machine for the expanded
                        // group under the current multiprogramming level.
                        let n_eff = core.contexts as f64 * (group.members.len() + 1) as f64
                            / core.live_queries.max(1) as f64;
                        let n_eff = n_eff.min(core.contexts as f64);
                        if core.policy.admit_overlap(&member_infos, candidate, n_eff) {
                            if widen {
                                group.pivot = Some(wide);
                                core.pivot_widenings += 1;
                            }
                            if !exact {
                                core.subsume_joins += 1;
                            }
                            group.members.push(arrival.clone());
                            joined = true;
                            break;
                        }
                        // Paper Section 8.1: if this group refuses, try
                        // the remaining groups in turn.
                    }
                    // No open group: a completed fragment from the cache
                    // can still serve this query. Replay is a strict
                    // saving (the pivot's work is already paid), so a
                    // ready subsuming fragment is always used.
                    if !joined {
                        if let Some(cache) = core.fragment_cache.as_mut() {
                            if let Some(hit) = cache.lookup(fp, pivot) {
                                core.pending.push(PendingGroup {
                                    pivot: Some(hit.pivot.clone()),
                                    fingerprint: Some(fp),
                                    cached: Some(hit),
                                    members: vec![arrival.clone()],
                                    // Nothing to wait for: replay at once.
                                    due: now,
                                });
                                joined = true;
                            }
                        }
                    }
                }
            }
            if !joined {
                let window = if core.policy.may_share() {
                    core.window
                } else {
                    0
                };
                core.pending.push(PendingGroup {
                    fingerprint: arrival.spec.pivot.as_ref().map(fingerprint),
                    pivot: arrival.spec.pivot.clone(),
                    cached: None,
                    members: vec![arrival],
                    due: now + window,
                });
            }
        }
    }

    /// Records a query rejected at instantiation (malformed plan): it
    /// counts as finished (failed), never as a completion.
    fn fail_query(core: &mut EngineCore, submission: usize, err: &ExecError) {
        core.failures.push((submission, err.clone()));
        core.live_queries = core.live_queries.saturating_sub(1);
    }

    fn spawn_group(
        core: &mut EngineCore,
        core_rc: &Rc<RefCell<EngineCore>>,
        ctx: &mut TaskCtx<'_>,
        group: PendingGroup,
    ) {
        core.group_sizes.push(group.members.len());
        let gid = core.group_seq;
        core.group_seq += 1;
        let catalog = core.catalog.clone();
        match group.pivot.clone() {
            Some(pivot) => {
                // One pivot instance, one output channel per member.
                let mut outs = Vec::with_capacity(group.members.len() + 1);
                let mut rxs = Vec::with_capacity(group.members.len());
                for _ in &group.members {
                    let (tx, rx) = channel::bounded(core.wiring.queue_capacity);
                    outs.push(tx);
                    rxs.push(rx);
                }
                // Faults of the shared producer each member must watch
                // (none for a cached replay: those pages are from an
                // already-completed, fault-free run).
                let pivot_fault: Option<FaultCell>;
                if let Some(hit) = &group.cached {
                    // Replay the cached pages: the pivot's input work is
                    // already paid; only per-consumer delivery remains.
                    let pages = hit.pages.borrow().clone();
                    let s = root_out_per_tuple(&pivot);
                    ctx.spawn_task(
                        format!("g{gid}/cached"),
                        Box::new(ScanTask::new(
                            pages,
                            OpCost::per_tuple(0.0),
                            Fanout::new(outs, s),
                        )),
                    );
                    pivot_fault = None;
                } else {
                    // The shared pivot gets its own broker/fault pair;
                    // each member's private fragment gets another below,
                    // so one member's overrun cannot starve its peers.
                    let pivot_res = QueryResources::for_config(&core.wiring.memory);
                    // With a cache configured, one extra consumer
                    // captures the pivot's pages for later replay — the
                    // pivot pays the same `s` for it as for any member.
                    // Under never-share the cache is never consulted, so
                    // capturing would be pure overhead: skip it.
                    let capture_rx = (core.policy.may_share() && core.fragment_cache.is_some())
                        .then(|| {
                            let (tx, rx) = channel::bounded(core.wiring.queue_capacity);
                            outs.push(tx);
                            rx
                        });
                    let mut no_sources = VecDeque::new();
                    if let Err(err) = instantiate_into(
                        ctx,
                        &catalog,
                        &pivot,
                        outs,
                        &mut no_sources,
                        &format!("g{gid}/shared"),
                        &core.wiring,
                        &pivot_res,
                    ) {
                        // Malformed pivot: the whole group fails; nothing
                        // was spawned (instantiation is all-or-nothing).
                        for member in group.members {
                            Self::fail_query(core, member.submission, &err);
                        }
                        return;
                    }
                    if let Some(rx) = capture_rx {
                        let entry = CachedFragment::in_flight(
                            group.fingerprint.unwrap_or_else(|| fingerprint(&pivot)),
                            pivot.clone(),
                        );
                        let ready = entry.ready.clone();
                        let fault = pivot_res.fault.clone();
                        let sink = SinkTask::new(rx, OpCost::per_tuple(0.0))
                            .collecting(entry.pages.clone())
                            .on_done(Box::new(move |_ctx, _rows| {
                                // Servable only if the pivot drained
                                // without faulting.
                                if fault.get().is_none() {
                                    ready.set(true);
                                }
                            }));
                        ctx.spawn_task(format!("g{gid}/capture"), Box::new(sink));
                        // The cache was present when the capture channel
                        // opened, but a teardown path may have dropped it
                        // since; the capture sink then just drains.
                        if let Some(cache) = core.fragment_cache.as_mut() {
                            cache.insert(entry);
                        }
                    }
                    pivot_fault = Some(pivot_res.fault);
                }
                for (member, rx) in group.members.into_iter().zip(rxs) {
                    let label = format!("q{}/{}", member.submission, member.spec.name);
                    // A member without a pivot cannot be split against
                    // the group's: fail just that query (closing its
                    // feed so the pivot never blocks on it) and keep
                    // dispatching the rest of the group.
                    let Some(own_pivot) = member.spec.pivot.as_ref() else {
                        rx.close(ctx);
                        Self::fail_query(
                            core,
                            member.submission,
                            &ExecError::plan("grouped member lost its pivot before dispatch"),
                        );
                        continue;
                    };
                    match split_with_residual(&member.spec.plan, own_pivot, &pivot, &catalog) {
                        Ok(Some(fragment)) => {
                            let member_res = QueryResources::for_config(&core.wiring.memory);
                            let (sink_tx, sink_rx) = channel::bounded(core.wiring.queue_capacity);
                            // Keep a cancellation handle: if the private
                            // fragment is rejected, the pivot must not
                            // block forever on this member's channel.
                            let rx_cancel = rx.clone();
                            let mut sources = VecDeque::from([rx]);
                            match instantiate_into(
                                ctx,
                                &catalog,
                                &fragment,
                                vec![sink_tx],
                                &mut sources,
                                &label,
                                &core.wiring,
                                &member_res,
                            ) {
                                Ok(_) => Self::spawn_sink(
                                    core,
                                    core_rc,
                                    ctx,
                                    sink_rx,
                                    member,
                                    &label,
                                    pivot_fault
                                        .iter()
                                        .cloned()
                                        .chain([member_res.fault])
                                        .collect(),
                                ),
                                Err(err) => {
                                    rx_cancel.close(ctx);
                                    Self::fail_query(core, member.submission, &err);
                                }
                            }
                        }
                        Ok(None) => {
                            // Entire query shared: sink reads the pivot
                            // output directly.
                            Self::spawn_sink(
                                core,
                                core_rc,
                                ctx,
                                rx,
                                member,
                                &label,
                                pivot_fault.iter().cloned().collect(),
                            );
                        }
                        Err(err) => {
                            // Bad sharing decision (pivot missing from
                            // the plan, or subsumption violated): fail
                            // only this query.
                            rx.close(ctx);
                            Self::fail_query(core, member.submission, &err);
                        }
                    }
                }
            }
            None => {
                for member in group.members {
                    let label = format!("q{}/{}", member.submission, member.spec.name);
                    let res = QueryResources::for_config(&core.wiring.memory);
                    let (tx, rx) = channel::bounded(core.wiring.queue_capacity);
                    let mut no_sources = VecDeque::new();
                    match instantiate_into(
                        ctx,
                        &catalog,
                        &member.spec.plan,
                        vec![tx],
                        &mut no_sources,
                        &label,
                        &core.wiring,
                        &res,
                    ) {
                        Ok(_) => Self::spawn_sink(
                            core,
                            core_rc,
                            ctx,
                            rx,
                            member,
                            &label,
                            vec![res.fault],
                        ),
                        Err(err) => Self::fail_query(core, member.submission, &err),
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_sink(
        core: &mut EngineCore,
        core_rc: &Rc<RefCell<EngineCore>>,
        ctx: &mut TaskCtx<'_>,
        rx: channel::Receiver<Arc<Page>>,
        member: Arrival,
        label: &str,
        faults: Vec<FaultCell>,
    ) {
        let engine = Rc::downgrade(core_rc);
        let spec = member.spec.clone();
        let submission = member.submission;
        let mut faults = faults;
        if let Some(err) = &member.spec.chaos {
            // Chaos injection: a pre-set fault cell only this member's
            // sink watches, so the query fails while its group peers
            // (and a shared pivot) run unaffected.
            let cell = FaultCell::default();
            cell.set(err.clone());
            faults.push(cell);
        }
        let mut sink = SinkTask::new(rx, core.sink_cost);
        if let Some(collect) = &core.collect {
            sink = sink.collecting(collect[member.submission].clone());
        }
        let sink = sink.on_done(Box::new(move |ctx, _rows| {
            // The engine core can be gone when a time-capped or
            // cancelled run tears down while sinks still drain; there
            // is nobody left to report to, so just exit.
            let Some(engine) = engine.upgrade() else {
                return;
            };
            let mut core = engine.borrow_mut();
            // A fault anywhere in this query's operator graph (its
            // private fragment or the shared pivot) turns the finish
            // into a failure: no completion, no resubmission.
            if let Some(err) = faults.iter().find_map(|f| f.get()) {
                core.failures.push((submission, err));
                core.live_queries = core.live_queries.saturating_sub(1);
                return;
            }
            core.completions.push((ctx.now(), spec.name.clone()));
            core.completion_records.push((submission, ctx.now()));
            core.live_queries = core.live_queries.saturating_sub(1);
            if core.resubmit {
                core.submit_at(spec.clone(), ctx.now());
                let dispatcher = core.dispatcher;
                drop(core);
                if let Some(d) = dispatcher {
                    ctx.wake(d);
                }
            }
        }));
        ctx.spawn_task(format!("{label}/sink"), Box::new(sink));
    }
}

impl Task for DispatcherTask {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let now = ctx.now();
        let mut core = self.core.borrow_mut();
        Self::assimilate_arrivals(&mut core, now);
        // Dispatch every group whose window has expired.
        let mut due = Vec::new();
        let mut i = 0;
        while i < core.pending.len() {
            if core.pending[i].due <= now {
                due.push(core.pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        // Dispatch in arrival order for determinism.
        due.sort_by_key(|g| g.due);
        let dispatched = !due.is_empty();
        for group in due {
            Self::spawn_group(&mut core, &self.core, ctx, group);
        }
        if let Some(next_due) = core.pending.iter().map(|g| g.due).min() {
            let delay = next_due.saturating_sub(now);
            Step::sleep(1, delay)
        } else if core.resubmit || !core.arrivals.is_empty() || core.external_arrivals_pending > 0 {
            // Parked until a sink or arrival driver wakes us.
            Step::blocked(u64::from(dispatched))
        } else {
            Step::done(u64::from(dispatched))
        }
    }
}
