//! Sub-plan surgery: detecting shareable subtrees and splitting a
//! member query into (shared pivot sub-plan, private above-fragment).
//!
//! Two splitting modes:
//!
//! * [`split_at_pivot`] — the historic exact mode: the member's own
//!   pivot subtree occurs structurally in its plan and is replaced by a
//!   [`PhysicalPlan::Source`] leaf.
//! * [`split_with_residual`] — the subsumption mode: the group runs a
//!   *wider* pivot that semantically contains the member's own pivot
//!   ([`cordoba_exec::subsume`]); the member attaches through a residual
//!   filter that re-applies the clauses its pivot has beyond the
//!   group's. When the pivots are structurally equal the residual is
//!   [`Predicate::True`] and this degenerates to [`split_at_pivot`] —
//!   the wiring (operator count, labels, costs) is byte-identical to
//!   the exact path.

use cordoba_exec::expr::Predicate;
use cordoba_exec::plan::SchemaRef;
use cordoba_exec::subsume::{peel_filters, subsume_residual};
use cordoba_exec::{ExecError, PhysicalPlan};
use cordoba_storage::Catalog;

/// Whether `needle` occurs as a (structurally equal) subtree of `plan`.
pub fn contains_subtree(plan: &PhysicalPlan, needle: &PhysicalPlan) -> bool {
    plan == needle || plan.children().iter().any(|c| contains_subtree(c, needle))
}

/// Splits `plan` at the first (preorder) occurrence of the `pivot`
/// subtree, returning the private above-fragment with the pivot subtree
/// replaced by a [`PhysicalPlan::Source`] leaf of the pivot's output
/// schema. Returns `Ok(None)` when `plan == pivot` (the whole query is
/// shared and the consumer attaches directly to the pivot's output),
/// and a typed plan error when `pivot` does not occur in `plan` — a bad
/// sharing decision fails only the query it concerns.
pub fn split_at_pivot(
    plan: &PhysicalPlan,
    pivot: &PhysicalPlan,
    catalog: &Catalog,
) -> Result<Option<PhysicalPlan>, ExecError> {
    if plan == pivot {
        return Ok(None);
    }
    let schema = pivot.output_schema(catalog);
    let mut replaced = false;
    let fragment = replace_first(plan, pivot, &SchemaRef(schema), &mut replaced);
    if !replaced {
        return Err(ExecError::plan("pivot sub-plan not found in query plan"));
    }
    Ok(Some(fragment))
}

/// Splits `plan` for attachment to a group running `group_pivot`, where
/// the member's own shareable subtree is `own_pivot`. Requires that
/// `group_pivot` subsumes `own_pivot`; the un-implied clauses of
/// `own_pivot` become a residual [`PhysicalPlan::Filter`] placed
/// directly over the [`PhysicalPlan::Source`] leaf, so the member's
/// private fragment sees exactly the rows its own pivot would have
/// produced, in the same order. Returns `Ok(None)` when the member's
/// whole plan *is* its pivot and no residual is needed.
pub fn split_with_residual(
    plan: &PhysicalPlan,
    own_pivot: &PhysicalPlan,
    group_pivot: &PhysicalPlan,
    catalog: &Catalog,
) -> Result<Option<PhysicalPlan>, ExecError> {
    let Some(residual) = subsume_residual(group_pivot, own_pivot) else {
        return Err(ExecError::plan("group pivot does not subsume member pivot"));
    };
    if residual == Predicate::True {
        // Exact coverage: wire precisely as the historic path would.
        return split_at_pivot(plan, own_pivot, catalog);
    }
    // The Source leaf carries the *group* pivot's output schema (same
    // base, so identical to the member pivot's schema), and the
    // residual filter restores member-pivot semantics above it. The
    // filter is priced like the member's own outermost peeled filter:
    // the residual work is real per-tuple selection-vector work.
    let schema = SchemaRef(group_pivot.output_schema(catalog));
    let residual_cost = peel_filters(own_pivot).filter_cost.unwrap_or_default();
    let filtered_source = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::Source {
            schema: schema.clone(),
        }),
        predicate: residual,
        cost: residual_cost,
    };
    match split_at_pivot(plan, own_pivot, catalog)? {
        // Whole plan == own pivot: the member becomes just the
        // residual filter over the shared output.
        None => Ok(Some(filtered_source)),
        Some(fragment) => {
            let mut grafted = false;
            let out = graft_over_source(&fragment, &filtered_source, &mut grafted);
            debug_assert!(grafted, "split fragment must contain a Source leaf");
            Ok(Some(out))
        }
    }
}

/// Replaces the first (preorder) `Source` leaf of `fragment` with
/// `replacement` (the residual filter over a fresh `Source`).
fn graft_over_source(
    fragment: &PhysicalPlan,
    replacement: &PhysicalPlan,
    grafted: &mut bool,
) -> PhysicalPlan {
    if !*grafted {
        if let PhysicalPlan::Source { .. } = fragment {
            *grafted = true;
            return replacement.clone();
        }
    }
    let mut clone = fragment.clone();
    match &mut clone {
        PhysicalPlan::Scan { .. } | PhysicalPlan::Source { .. } => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Aggregate { input, .. }
        | PhysicalPlan::Sort { input, .. } => {
            **input = graft_over_source(input, replacement, grafted);
        }
        PhysicalPlan::HashJoin { build, probe, .. } => {
            **build = graft_over_source(build, replacement, grafted);
            if !*grafted {
                **probe = graft_over_source(probe, replacement, grafted);
            }
        }
        PhysicalPlan::NestedLoopJoin { outer, inner, .. } => {
            **outer = graft_over_source(outer, replacement, grafted);
            if !*grafted {
                **inner = graft_over_source(inner, replacement, grafted);
            }
        }
        PhysicalPlan::MergeJoin { left, right, .. } => {
            **left = graft_over_source(left, replacement, grafted);
            if !*grafted {
                **right = graft_over_source(right, replacement, grafted);
            }
        }
    }
    clone
}

fn replace_first(
    plan: &PhysicalPlan,
    pivot: &PhysicalPlan,
    schema: &SchemaRef,
    replaced: &mut bool,
) -> PhysicalPlan {
    if !*replaced && plan == pivot {
        *replaced = true;
        return PhysicalPlan::Source {
            schema: schema.clone(),
        };
    }
    let mut clone = plan.clone();
    match &mut clone {
        PhysicalPlan::Scan { .. } | PhysicalPlan::Source { .. } => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Aggregate { input, .. }
        | PhysicalPlan::Sort { input, .. } => {
            **input = replace_first(input, pivot, schema, replaced);
        }
        PhysicalPlan::HashJoin { build, probe, .. } => {
            **build = replace_first(build, pivot, schema, replaced);
            if !*replaced {
                **probe = replace_first(probe, pivot, schema, replaced);
            }
        }
        PhysicalPlan::NestedLoopJoin { outer, inner, .. } => {
            **outer = replace_first(outer, pivot, schema, replaced);
            if !*replaced {
                **inner = replace_first(inner, pivot, schema, replaced);
            }
        }
        PhysicalPlan::MergeJoin { left, right, .. } => {
            **left = replace_first(left, pivot, schema, replaced);
            if !*replaced {
                **right = replace_first(right, pivot, schema, replaced);
            }
        }
    }
    clone
}

/// Preorder index of the first occurrence of `pivot` within `plan`
/// (indices match the task labels produced by `cordoba_exec::wiring` and
/// the node order of profiled model plans).
pub fn pivot_preorder(plan: &PhysicalPlan, pivot: &PhysicalPlan) -> Option<usize> {
    fn walk(plan: &PhysicalPlan, pivot: &PhysicalPlan, idx: &mut usize) -> Option<usize> {
        let my = *idx;
        *idx += 1;
        if plan == pivot {
            return Some(my);
        }
        for c in plan.children() {
            if let Some(found) = walk(c, pivot, idx) {
                return Some(found);
            }
        }
        None
    }
    let mut idx = 0;
    walk(plan, pivot, &mut idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::expr::{CmpOp, Predicate};
    use cordoba_exec::OpCost;
    use cordoba_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.push_row(&[Value::Int(1)]);
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    fn scan() -> PhysicalPlan {
        PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::default(),
        }
    }

    fn filter_over_scan() -> PhysicalPlan {
        PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Predicate::True,
            cost: OpCost::default(),
        }
    }

    fn band(lo: i64, hi: i64) -> Predicate {
        Predicate::And(vec![
            Predicate::col_cmp(0, CmpOp::Ge, lo),
            Predicate::col_cmp(0, CmpOp::Lt, hi),
        ])
    }

    fn banded(lo: i64, hi: i64) -> PhysicalPlan {
        PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: band(lo, hi),
            cost: OpCost::per_tuple(2.0),
        }
    }

    #[test]
    fn contains_matches_nested() {
        assert!(contains_subtree(&filter_over_scan(), &scan()));
        assert!(contains_subtree(&filter_over_scan(), &filter_over_scan()));
        let other = PhysicalPlan::Scan {
            table: "u".into(),
            cost: OpCost::default(),
        };
        assert!(!contains_subtree(&filter_over_scan(), &other));
    }

    #[test]
    fn split_replaces_pivot_with_source() {
        let cat = catalog();
        let fragment = split_at_pivot(&filter_over_scan(), &scan(), &cat)
            .unwrap()
            .unwrap();
        match &fragment {
            PhysicalPlan::Filter { input, .. } => {
                assert!(matches!(**input, PhysicalPlan::Source { .. }));
            }
            other => panic!("expected filter, got {other:?}"),
        }
        // Source schema equals the pivot's output schema.
        assert_eq!(
            fragment.output_schema(&cat),
            filter_over_scan().output_schema(&cat)
        );
    }

    #[test]
    fn whole_plan_pivot_returns_none() {
        let cat = catalog();
        assert!(split_at_pivot(&scan(), &scan(), &cat).unwrap().is_none());
    }

    #[test]
    fn join_pivot_in_probe_side() {
        let cat = catalog();
        let join = PhysicalPlan::HashJoin {
            build: Box::new(scan()),
            probe: Box::new(filter_over_scan()),
            build_key: 0,
            probe_key: 0,
            kind: cordoba_exec::JoinKind::Semi,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        // Pivot = the probe-side filter fragment: only it is replaced;
        // the build-side scan stays (first occurrence rule applies to
        // the *filter*, which exists only on the probe side).
        let fragment = split_at_pivot(&join, &filter_over_scan(), &cat)
            .unwrap()
            .unwrap();
        match &fragment {
            PhysicalPlan::HashJoin { build, probe, .. } => {
                assert!(matches!(**build, PhysicalPlan::Scan { .. }));
                assert!(matches!(**probe, PhysicalPlan::Source { .. }));
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn first_occurrence_wins_for_duplicate_subtrees() {
        let cat = catalog();
        let join = PhysicalPlan::NestedLoopJoin {
            outer: Box::new(scan()),
            inner: Box::new(scan()),
            predicate: Predicate::True,
            cost: OpCost::default(),
        };
        let fragment = split_at_pivot(&join, &scan(), &cat).unwrap().unwrap();
        match &fragment {
            PhysicalPlan::NestedLoopJoin { outer, inner, .. } => {
                assert!(matches!(**outer, PhysicalPlan::Source { .. }));
                assert!(matches!(**inner, PhysicalPlan::Scan { .. }));
            }
            other => panic!("expected nlj, got {other:?}"),
        }
    }

    #[test]
    fn preorder_indices_match_wiring_labels() {
        // filter(scan): filter=0, scan=1.
        assert_eq!(pivot_preorder(&filter_over_scan(), &scan()), Some(1));
        assert_eq!(
            pivot_preorder(&filter_over_scan(), &filter_over_scan()),
            Some(0)
        );
        let other = PhysicalPlan::Scan {
            table: "u".into(),
            cost: OpCost::default(),
        };
        assert_eq!(pivot_preorder(&filter_over_scan(), &other), None);
    }

    #[test]
    fn split_with_foreign_pivot_errors() {
        let cat = catalog();
        // A pivot over a *known* table that simply isn't part of the
        // plan (an unknown table would already fail schema derivation).
        let other = PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::per_tuple(123.0),
        };
        let err = split_at_pivot(&filter_over_scan(), &other, &cat).unwrap_err();
        assert!(err.to_string().contains("not found"));
    }

    #[test]
    fn residual_split_with_equal_pivots_matches_exact_split() {
        let cat = catalog();
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(banded(10, 20)),
            group_by: vec![],
            aggs: vec![],
            cost: OpCost::default(),
        };
        let exact = split_at_pivot(&plan, &banded(10, 20), &cat).unwrap();
        let via_residual =
            split_with_residual(&plan, &banded(10, 20), &banded(10, 20), &cat).unwrap();
        assert_eq!(exact, via_residual);
    }

    #[test]
    fn residual_split_grafts_filter_over_source() {
        let cat = catalog();
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(banded(12, 18)),
            group_by: vec![],
            aggs: vec![],
            cost: OpCost::default(),
        };
        let fragment = split_with_residual(&plan, &banded(12, 18), &banded(10, 20), &cat)
            .unwrap()
            .unwrap();
        // Aggregate(Filter(Source)) with the residual = full narrow band
        // (both bounds are strictly tighter than the wide pivot's).
        match &fragment {
            PhysicalPlan::Aggregate { input, .. } => match &**input {
                PhysicalPlan::Filter {
                    input,
                    predicate,
                    cost,
                } => {
                    assert!(matches!(**input, PhysicalPlan::Source { .. }));
                    assert_eq!(*predicate, band(12, 18));
                    // Residual priced like the member's own filter.
                    assert_eq!(*cost, OpCost::per_tuple(2.0));
                }
                other => panic!("expected residual filter, got {other:?}"),
            },
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn residual_split_of_whole_plan_is_bare_filter() {
        let cat = catalog();
        // The member's entire plan is its pivot: with a wider group
        // pivot it becomes just the residual filter over the Source.
        let fragment = split_with_residual(&banded(12, 18), &banded(12, 18), &banded(10, 20), &cat)
            .unwrap()
            .unwrap();
        match &fragment {
            PhysicalPlan::Filter {
                input, predicate, ..
            } => {
                assert!(matches!(**input, PhysicalPlan::Source { .. }));
                assert_eq!(*predicate, band(12, 18));
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn residual_split_rejects_non_subsuming_group_pivot() {
        let cat = catalog();
        let err = split_with_residual(&banded(10, 20), &banded(10, 20), &banded(12, 18), &cat)
            .unwrap_err();
        assert!(err.to_string().contains("subsume"));
    }
}
