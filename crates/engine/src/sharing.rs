//! Sub-plan surgery: detecting shareable subtrees and splitting a
//! member query into (shared pivot sub-plan, private above-fragment).

use cordoba_exec::plan::SchemaRef;
use cordoba_exec::PhysicalPlan;
use cordoba_storage::Catalog;

/// Whether `needle` occurs as a (structurally equal) subtree of `plan`.
pub fn contains_subtree(plan: &PhysicalPlan, needle: &PhysicalPlan) -> bool {
    plan == needle || plan.children().iter().any(|c| contains_subtree(c, needle))
}

/// Splits `plan` at the first (preorder) occurrence of the `pivot`
/// subtree, returning the private above-fragment with the pivot subtree
/// replaced by a [`PhysicalPlan::Source`] leaf of the pivot's output
/// schema. Returns `None` when `plan == pivot` (the whole query is
/// shared and the consumer attaches directly to the pivot's output).
///
/// # Panics
///
/// Panics if `pivot` does not occur in `plan`.
pub fn split_at_pivot(
    plan: &PhysicalPlan,
    pivot: &PhysicalPlan,
    catalog: &Catalog,
) -> Option<PhysicalPlan> {
    if plan == pivot {
        return None;
    }
    let schema = pivot.output_schema(catalog);
    let mut replaced = false;
    let fragment = replace_first(plan, pivot, &SchemaRef(schema), &mut replaced);
    assert!(replaced, "pivot sub-plan not found in query plan");
    Some(fragment)
}

fn replace_first(
    plan: &PhysicalPlan,
    pivot: &PhysicalPlan,
    schema: &SchemaRef,
    replaced: &mut bool,
) -> PhysicalPlan {
    if !*replaced && plan == pivot {
        *replaced = true;
        return PhysicalPlan::Source {
            schema: schema.clone(),
        };
    }
    let mut clone = plan.clone();
    match &mut clone {
        PhysicalPlan::Scan { .. } | PhysicalPlan::Source { .. } => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Aggregate { input, .. }
        | PhysicalPlan::Sort { input, .. } => {
            **input = replace_first(input, pivot, schema, replaced);
        }
        PhysicalPlan::HashJoin { build, probe, .. } => {
            **build = replace_first(build, pivot, schema, replaced);
            if !*replaced {
                **probe = replace_first(probe, pivot, schema, replaced);
            }
        }
        PhysicalPlan::NestedLoopJoin { outer, inner, .. } => {
            **outer = replace_first(outer, pivot, schema, replaced);
            if !*replaced {
                **inner = replace_first(inner, pivot, schema, replaced);
            }
        }
        PhysicalPlan::MergeJoin { left, right, .. } => {
            **left = replace_first(left, pivot, schema, replaced);
            if !*replaced {
                **right = replace_first(right, pivot, schema, replaced);
            }
        }
    }
    clone
}

/// Preorder index of the first occurrence of `pivot` within `plan`
/// (indices match the task labels produced by `cordoba_exec::wiring` and
/// the node order of profiled model plans).
pub fn pivot_preorder(plan: &PhysicalPlan, pivot: &PhysicalPlan) -> Option<usize> {
    fn walk(plan: &PhysicalPlan, pivot: &PhysicalPlan, idx: &mut usize) -> Option<usize> {
        let my = *idx;
        *idx += 1;
        if plan == pivot {
            return Some(my);
        }
        for c in plan.children() {
            if let Some(found) = walk(c, pivot, idx) {
                return Some(found);
            }
        }
        None
    }
    let mut idx = 0;
    walk(plan, pivot, &mut idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::expr::Predicate;
    use cordoba_exec::OpCost;
    use cordoba_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.push_row(&[Value::Int(1)]);
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    fn scan() -> PhysicalPlan {
        PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::default(),
        }
    }

    fn filter_over_scan() -> PhysicalPlan {
        PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Predicate::True,
            cost: OpCost::default(),
        }
    }

    #[test]
    fn contains_matches_nested() {
        assert!(contains_subtree(&filter_over_scan(), &scan()));
        assert!(contains_subtree(&filter_over_scan(), &filter_over_scan()));
        let other = PhysicalPlan::Scan {
            table: "u".into(),
            cost: OpCost::default(),
        };
        assert!(!contains_subtree(&filter_over_scan(), &other));
    }

    #[test]
    fn split_replaces_pivot_with_source() {
        let cat = catalog();
        let fragment = split_at_pivot(&filter_over_scan(), &scan(), &cat).unwrap();
        match &fragment {
            PhysicalPlan::Filter { input, .. } => {
                assert!(matches!(**input, PhysicalPlan::Source { .. }));
            }
            other => panic!("expected filter, got {other:?}"),
        }
        // Source schema equals the pivot's output schema.
        assert_eq!(
            fragment.output_schema(&cat),
            filter_over_scan().output_schema(&cat)
        );
    }

    #[test]
    fn whole_plan_pivot_returns_none() {
        let cat = catalog();
        assert!(split_at_pivot(&scan(), &scan(), &cat).is_none());
    }

    #[test]
    fn join_pivot_in_probe_side() {
        let cat = catalog();
        let join = PhysicalPlan::HashJoin {
            build: Box::new(scan()),
            probe: Box::new(filter_over_scan()),
            build_key: 0,
            probe_key: 0,
            kind: cordoba_exec::JoinKind::Semi,
            build_cost: OpCost::default(),
            probe_cost: OpCost::default(),
        };
        // Pivot = the probe-side filter fragment: only it is replaced;
        // the build-side scan stays (first occurrence rule applies to
        // the *filter*, which exists only on the probe side).
        let fragment = split_at_pivot(&join, &filter_over_scan(), &cat).unwrap();
        match &fragment {
            PhysicalPlan::HashJoin { build, probe, .. } => {
                assert!(matches!(**build, PhysicalPlan::Scan { .. }));
                assert!(matches!(**probe, PhysicalPlan::Source { .. }));
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn first_occurrence_wins_for_duplicate_subtrees() {
        let cat = catalog();
        let join = PhysicalPlan::NestedLoopJoin {
            outer: Box::new(scan()),
            inner: Box::new(scan()),
            predicate: Predicate::True,
            cost: OpCost::default(),
        };
        let fragment = split_at_pivot(&join, &scan(), &cat).unwrap();
        match &fragment {
            PhysicalPlan::NestedLoopJoin { outer, inner, .. } => {
                assert!(matches!(**outer, PhysicalPlan::Source { .. }));
                assert!(matches!(**inner, PhysicalPlan::Scan { .. }));
            }
            other => panic!("expected nlj, got {other:?}"),
        }
    }

    #[test]
    fn preorder_indices_match_wiring_labels() {
        // filter(scan): filter=0, scan=1.
        assert_eq!(pivot_preorder(&filter_over_scan(), &scan()), Some(1));
        assert_eq!(
            pivot_preorder(&filter_over_scan(), &filter_over_scan()),
            Some(0)
        );
        let other = PhysicalPlan::Scan {
            table: "u".into(),
            cost: OpCost::default(),
        };
        assert_eq!(pivot_preorder(&filter_over_scan(), &other), None);
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn split_with_foreign_pivot_panics() {
        let cat = catalog();
        // A pivot over a *known* table that simply isn't part of the
        // plan (an unknown table would already fail schema derivation).
        let other = PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::per_tuple(123.0),
        };
        split_at_pivot(&filter_over_scan(), &other, &cat);
    }
}
