//! Bounded LRU cache of recently completed shared-fragment outputs,
//! keyed by plan fingerprint.
//!
//! When a sharing group with pivot φ finishes, the pages φ produced can
//! serve any *later* arrival whose own pivot is subsumed by φ: the
//! dispatcher replays the cached pages through the member's residual
//! filter instead of re-running φ. Entries are bucketed by
//! [`cordoba_exec::subsume::fingerprint`]; a hit additionally requires
//! the full subsumption test, so fingerprint collisions are harmless.
//!
//! An entry is inserted when its group dispatches (in-flight) and
//! becomes servable once its capture sink has drained the pivot without
//! faults (`ready`). The cache is bounded: insertion past capacity
//! evicts the least recently used entry.

use cordoba_exec::subsume::subsume_residual;
use cordoba_exec::PhysicalPlan;
use cordoba_storage::Page;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

/// One cached fragment: the pivot that produced it and its output pages.
#[derive(Clone)]
pub struct CachedFragment {
    /// Fingerprint of the pivot (bucket key).
    pub fingerprint: u64,
    /// The pivot plan whose output the pages are.
    pub pivot: PhysicalPlan,
    /// Captured output pages, filled by the capture sink as the group
    /// runs.
    pub pages: Rc<RefCell<Vec<Arc<Page>>>>,
    /// Set by the capture sink when the pivot drained without faults;
    /// only ready entries are servable.
    pub ready: Rc<Cell<bool>>,
}

impl CachedFragment {
    /// A fresh in-flight entry (not yet servable).
    pub fn in_flight(fingerprint: u64, pivot: PhysicalPlan) -> Self {
        Self {
            fingerprint,
            pivot,
            pages: Rc::new(RefCell::new(Vec::new())),
            ready: Rc::new(Cell::new(false)),
        }
    }
}

/// Bounded LRU of [`CachedFragment`]s with hit/miss/evict counters.
pub struct FragmentCache {
    capacity: usize,
    /// LRU order: front = least recently used.
    entries: VecDeque<CachedFragment>,
    /// Lookups that found a servable subsuming fragment.
    pub hits: u64,
    /// Lookups that found none.
    pub misses: u64,
    /// Entries displaced by inserts past capacity.
    pub evictions: u64,
}

impl FragmentCache {
    /// A cache holding at most `capacity` fragments.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Finds a ready entry in the `fingerprint` bucket whose pivot
    /// subsumes `narrow`, marking it most recently used. Counts a hit
    /// or a miss.
    pub fn lookup(&mut self, fingerprint: u64, narrow: &PhysicalPlan) -> Option<CachedFragment> {
        let found = self.entries.iter().position(|e| {
            e.fingerprint == fingerprint
                && e.ready.get()
                && subsume_residual(&e.pivot, narrow).is_some()
        });
        match found.and_then(|i| self.entries.remove(i)) {
            Some(entry) => {
                self.hits += 1;
                self.entries.push_back(entry.clone());
                Some(entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a fresh entry as most recently used, evicting from the
    /// LRU end past capacity.
    pub fn insert(&mut self, entry: CachedFragment) {
        self.entries.push_back(entry);
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.evictions += 1;
        }
    }

    /// Number of resident entries (ready or in-flight).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::expr::{CmpOp, Predicate};
    use cordoba_exec::subsume::fingerprint;
    use cordoba_exec::OpCost;

    fn banded(lo: i64, hi: i64) -> PhysicalPlan {
        PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan {
                table: "t".into(),
                cost: OpCost::default(),
            }),
            predicate: Predicate::And(vec![
                Predicate::col_cmp(0, CmpOp::Ge, lo),
                Predicate::col_cmp(0, CmpOp::Lt, hi),
            ]),
            cost: OpCost::default(),
        }
    }

    fn ready_entry(lo: i64, hi: i64) -> CachedFragment {
        let pivot = banded(lo, hi);
        let e = CachedFragment::in_flight(fingerprint(&pivot), pivot);
        e.ready.set(true);
        e
    }

    #[test]
    fn lookup_requires_ready_and_subsumption() {
        let mut cache = FragmentCache::new(4);
        let wide = banded(0, 100);
        let entry = CachedFragment::in_flight(fingerprint(&wide), wide.clone());
        cache.insert(entry.clone());
        // In-flight: not servable.
        assert!(cache.lookup(fingerprint(&wide), &banded(10, 20)).is_none());
        assert_eq!(cache.misses, 1);
        entry.ready.set(true);
        assert!(cache.lookup(fingerprint(&wide), &banded(10, 20)).is_some());
        assert_eq!(cache.hits, 1);
        // Wider than the cached pivot: no hit.
        assert!(cache.lookup(fingerprint(&wide), &banded(-5, 100)).is_none());
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn eviction_is_lru_and_counted() {
        let mut cache = FragmentCache::new(2);
        cache.insert(ready_entry(0, 10));
        cache.insert(ready_entry(0, 20));
        // Touch the narrower entry so the (0,20) one becomes LRU.
        let fp = fingerprint(&banded(0, 10));
        assert!(cache.lookup(fp, &banded(1, 9)).is_some());
        // A third insert (over another table, so it can never serve
        // this bucket) displaces the LRU (0,20) entry.
        let other = PhysicalPlan::Scan {
            table: "u".into(),
            cost: OpCost::default(),
        };
        let e = CachedFragment::in_flight(fingerprint(&other), other);
        e.ready.set(true);
        cache.insert(e);
        assert_eq!(cache.evictions, 1);
        assert_eq!(cache.len(), 2);
        // (0,20) was evicted; (0,10) survives but cannot cover (12,18).
        assert!(cache.lookup(fp, &banded(1, 9)).is_some());
        assert!(cache.lookup(fp, &banded(12, 18)).is_none());
    }
}
