//! Model parameter estimation (paper Section 3.1).
//!
//! "We build a model for each query type by profiling the system during
//! a few test query invocations, both with and without work sharing. We
//! then solve a system of linear equations to divide up the active time
//! of each operator among the different nodes of the query plan."
//!
//! Concretely: an unshared run yields each operator's `p_k` (active
//! time per unit of the reference stream's forward progress — we use
//! the pivot's own input stream as the reference); shared runs at
//! `M = 2, 3` give the pivot's `p_φ(M) = w + M·s`, and a least-squares
//! fit (together with the `M = 1` point) separates `w` from `s`.

use crate::policy::{Policy, QueryModelInfo};
use crate::query::QuerySpec;
use crate::runner::{run_once, EngineConfig, OnceOutcome};
use crate::sharing::pivot_preorder;
use cordoba_core::estimate::{fit_pivot, PivotObservation};
use cordoba_core::{ModelError, NodeId, OperatorSpec, PlanSpec};
use cordoba_exec::PhysicalPlan;
use cordoba_storage::Catalog;

/// Raw numbers from one profiling pass (reported alongside the model,
/// and printed by the `sec44_params` harness to mirror the paper's
/// Section 4.4 example).
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Fitted pivot input-side work per unit of forward progress.
    pub pivot_w: f64,
    /// Fitted pivot per-consumer output cost.
    pub pivot_s: f64,
    /// Residual sum of squares of the pivot fit.
    pub fit_rss: f64,
    /// `(operator label, p)` for every operator, in full-plan preorder.
    pub operators: Vec<(String, f64)>,
}

/// Profiles `spec` (which must have a pivot) and returns model
/// parameters usable by the model-guided policy.
pub fn profile_query(
    catalog: &Catalog,
    spec: &QuerySpec,
    cfg: &EngineConfig,
) -> Result<(QueryModelInfo, ProfileReport), ModelError> {
    let pivot = spec
        .pivot
        .as_ref()
        .ok_or_else(|| ModelError::Estimation("query has no pivot to profile".into()))?;
    let pivot_pre = pivot_preorder(&spec.plan, pivot)
        .ok_or_else(|| ModelError::Estimation("pivot not found in plan".into()))?;
    let subtree_size = pivot.node_count();

    // Profiling runs are about active time / progress, which are
    // schedule-independent; a few contexts keep them quick. The serial
    // wiring is forced regardless of the engine's worker knob: the
    // model's per-node costs are defined on the one-task-per-operator
    // decomposition, which morsel workers fuse away.
    let profile_cfg = EngineConfig {
        policy: Policy::AlwaysShare,
        contexts: 4,
        parallel: cordoba_exec::ParallelConfig::with_workers(1),
        ..cfg.clone()
    };

    let mut pivot_obs = Vec::new();
    let mut p_by_preorder: Vec<f64> = Vec::new();
    let mut labels: Vec<String> = Vec::new();

    for m in 1..=3usize {
        let specs = vec![spec.clone(); m];
        let out = run_once(catalog, &specs, &profile_cfg);
        if out.group_sizes != vec![m] {
            return Err(ModelError::Estimation(format!(
                "profiling expected one group of {m}, got {:?}",
                out.group_sizes
            )));
        }
        let pivot_stats = find_stats(&out, "g0/shared/0:")?;
        if pivot_stats.progress <= 0.0 {
            return Err(ModelError::Estimation("pivot made no progress".into()));
        }
        pivot_obs.push(PivotObservation {
            sharers: m,
            active_time: pivot_stats.active as f64,
            progress_units: pivot_stats.progress,
        });
        if m == 1 {
            let reference = pivot_stats.progress;
            (p_by_preorder, labels) =
                collect_ops(&out, &spec.plan, pivot_pre, subtree_size, reference)?;
        }
    }

    let fit = fit_pivot(&pivot_obs)?;
    let (plan, pivot_id) = build_model_plan(&spec.plan, &p_by_preorder, pivot_pre, fit.w, fit.s)?;
    let report = ProfileReport {
        pivot_w: fit.w,
        pivot_s: fit.s,
        fit_rss: fit.rss,
        operators: labels
            .into_iter()
            .zip(p_by_preorder.iter().copied())
            .collect(),
    };
    Ok((
        QueryModelInfo {
            plan,
            pivot: pivot_id,
        },
        report,
    ))
}

fn find_stats<'a>(
    out: &'a OnceOutcome,
    prefix: &str,
) -> Result<&'a cordoba_sim::TaskStats, ModelError> {
    out.task_stats
        .iter()
        .find(|(name, _)| name.starts_with(prefix))
        .map(|(_, s)| s)
        .ok_or_else(|| ModelError::Estimation(format!("no task with label prefix '{prefix}'")))
}

/// Gathers `p = active / reference_progress` for every operator of the
/// full plan, in full-plan preorder, from an M=1 shared run whose labels
/// split across the pivot group (`g0/shared/<i>:`) and the member
/// fragment (`q0/<name>/<j>:`).
fn collect_ops(
    out: &OnceOutcome,
    plan: &PhysicalPlan,
    pivot_pre: usize,
    subtree_size: usize,
    reference: f64,
) -> Result<(Vec<f64>, Vec<String>), ModelError> {
    let total = plan.node_count();
    let mut p = vec![f64::NAN; total];
    let mut labels = vec![String::new(); total];
    for (name, stats) in &out.task_stats {
        let Some((prefix, rest)) = name.rsplit_once('/') else {
            continue;
        };
        let Some((idx_str, op)) = rest.split_once(':') else {
            continue; // dispatcher, sinks
        };
        let Ok(local_idx) = idx_str.parse::<usize>() else {
            continue;
        };
        let full_idx = if prefix.starts_with("g0/") {
            // Pivot subtree: local preorder offsets from the pivot root.
            pivot_pre + local_idx
        } else if prefix.starts_with("q0/") {
            // Member fragment: indices before the pivot map directly;
            // the Source placeholder occupies the pivot's slot; indices
            // after it shift by the collapsed subtree.
            match local_idx.cmp(&pivot_pre) {
                std::cmp::Ordering::Less => local_idx,
                std::cmp::Ordering::Equal => continue, // Source placeholder
                std::cmp::Ordering::Greater => local_idx + subtree_size - 1,
            }
        } else {
            continue; // other members (q1.., q2..)
        };
        if full_idx >= total {
            return Err(ModelError::Estimation(format!(
                "label '{name}' maps outside the plan ({full_idx} >= {total})"
            )));
        }
        p[full_idx] = stats.active as f64 / reference;
        labels[full_idx] = format!("{idx_str}:{op}");
    }
    // A fully-shared query has no fragment ops; any slot still NaN is an
    // internal error except when the entire plan is the pivot.
    for (i, v) in p.iter().enumerate() {
        if v.is_nan() {
            return Err(ModelError::Estimation(format!(
                "no profile for plan node {i} ({})",
                labels.get(i).map(String::as_str).unwrap_or("?")
            )));
        }
    }
    Ok((p, labels))
}

/// Builds the model plan mirroring the physical plan's shape, with the
/// measured `p` per node and the fitted `(w, s)` at the pivot.
fn build_model_plan(
    plan: &PhysicalPlan,
    p: &[f64],
    pivot_pre: usize,
    w: f64,
    s: f64,
) -> Result<(PlanSpec, NodeId), ModelError> {
    #[allow(clippy::too_many_arguments)]
    fn walk(
        plan: &PhysicalPlan,
        p: &[f64],
        pivot_pre: usize,
        w: f64,
        s: f64,
        preorder: &mut usize,
        b: &mut cordoba_core::plan::PlanBuilder,
        pivot_out: &mut Option<NodeId>,
    ) -> Result<NodeId, ModelError> {
        let my = *preorder;
        *preorder += 1;
        let children: Vec<NodeId> = plan
            .children()
            .iter()
            .map(|c| walk(c, p, pivot_pre, w, s, preorder, b, pivot_out))
            .collect::<Result<_, _>>()?;
        let mut op = if my == pivot_pre {
            OperatorSpec::try_new(plan.op_name(), vec![w], vec![s])?
        } else {
            OperatorSpec::try_new(plan.op_name(), vec![p[my]], vec![])?
        };
        if matches!(
            plan,
            PhysicalPlan::Aggregate { .. } | PhysicalPlan::Sort { .. }
        ) {
            op = op.blocking();
        }
        let id = if children.is_empty() {
            b.add_leaf(op)
        } else {
            b.add_node(op, children)
        };
        if my == pivot_pre {
            *pivot_out = Some(id);
        }
        Ok(id)
    }
    let mut b = PlanSpec::new();
    let mut preorder = 0usize;
    let mut pivot_id = None;
    let root = walk(
        plan,
        p,
        pivot_pre,
        w,
        s,
        &mut preorder,
        &mut b,
        &mut pivot_id,
    )?;
    let plan_spec = b.finish(root)?;
    let pivot_id =
        pivot_id.ok_or_else(|| ModelError::Estimation("pivot index out of range".into()))?;
    Ok((plan_spec, pivot_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
    use cordoba_exec::OpCost;
    use cordoba_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ]);
        let mut b = TableBuilder::new("t", schema);
        for i in 0..4096 {
            b.push_row(&[Value::Int(i), Value::Float((i % 10) as f64)]);
        }
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    /// Scan with known (w, s) = (8, 3) feeding filter (1/tuple) + agg.
    fn query() -> QuerySpec {
        let scan = PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::new(8.0, 3.0),
        };
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan.clone()),
                predicate: Predicate::col_cmp(0, CmpOp::Lt, 2048i64),
                cost: OpCost::per_tuple(1.0),
            }),
            group_by: vec![],
            aggs: vec![("s".into(), Agg::Sum(ScalarExpr::col(1)))],
            cost: OpCost::per_tuple(0.5),
        };
        QuerySpec::shared_at("probe", plan, scan)
    }

    #[test]
    fn recovers_configured_scan_parameters() {
        let cat = catalog();
        let (info, report) =
            profile_query(&cat, &query(), &EngineConfig::default()).expect("profiling succeeds");
        // The scan's configured w=8, s=3 must be recovered (rounding to
        // integer virtual-time units introduces sub-1% error).
        assert!((report.pivot_w - 8.0).abs() < 0.2, "w={}", report.pivot_w);
        assert!((report.pivot_s - 3.0).abs() < 0.2, "s={}", report.pivot_s);
        // Model plan mirrors agg -> filter -> scan.
        assert_eq!(info.plan.len(), 3);
        let pivot_op = info.plan.op(info.pivot);
        assert!(pivot_op.name.contains("scan"));
        // Filter sees every scanned tuple at 1 unit each: p ≈ 1.
        let filter_p = report
            .operators
            .iter()
            .find(|(l, _)| l.contains("filter"))
            .map(|(_, p)| *p)
            .unwrap();
        assert!((filter_p - 1.0).abs() < 0.1, "filter p={filter_p}");
        // Aggregate processes ~half the tuples at 0.5 each: p ≈ 0.25.
        let agg_p = report
            .operators
            .iter()
            .find(|(l, _)| l.contains("aggregate"))
            .map(|(_, p)| *p)
            .unwrap();
        assert!((agg_p - 0.25).abs() < 0.1, "agg p={agg_p}");
    }

    #[test]
    fn model_decision_follows_recovered_params() {
        // With the recovered parameters, the scan-heavy query should
        // share on 1 context and not on 32 under heavy load — the
        // paper's qualitative Q6 result.
        let cat = catalog();
        let (info, _) = profile_query(&cat, &query(), &EngineConfig::default()).unwrap();
        let eval = |m: usize, n: f64| {
            cordoba_core::sharing::SharingEvaluator::homogeneous(&info.plan, info.pivot, m)
                .unwrap()
                .speedup(n)
        };
        assert!(eval(16, 1.0) > 1.0);
        assert!(eval(16, 32.0) < 1.0);
    }

    #[test]
    fn pivotless_query_rejected() {
        let cat = catalog();
        let spec = QuerySpec::unshared("u", query().plan);
        assert!(profile_query(&cat, &spec, &EngineConfig::default()).is_err());
    }
}
