//! # cordoba-engine — the staged, work-sharing query engine
//!
//! Reproduction of the paper's prototype ("Cordoba", Section 3.2): a
//! staged engine where concurrent queries' overlapping sub-plans are
//! detected at submission time and **merged** — the shared sub-plan (its
//! root is the *pivot* operator φ) executes once and multiplexes its
//! output pages to every consumer, paying the per-consumer cost `s` that
//! creates the work-sharing/parallelism trade-off. Detection is
//! semantic, not just structural: fingerprints and the predicate
//! subsumption lattice of [`cordoba_exec::subsume`] let a wide
//! `σ[a ≤ x < b]` fragment serve narrower consumers through residual
//! filters, and [`fragment_cache`] replays recently completed fragments
//! for late arrivals.
//!
//! Pieces:
//!
//! * [`QuerySpec`] — a physical plan plus its designated shareable
//!   sub-plan.
//! * [`sharing`] — sub-plan splitting: member plans are grafted onto a
//!   shared pivot's output channels via [`cordoba_exec::PhysicalPlan::Source`].
//! * [`Policy`] — `AlwaysShare`, `NeverShare`, and `ModelGuided`
//!   (paper Section 8): the model-guided policy admits a query into a
//!   sharing group only if the analytical model predicts a net win for
//!   the expanded group.
//! * [`runner`] — a closed-system client harness (every completed query
//!   is immediately resubmitted — the Little's Law regime of
//!   Section 1.2) measuring throughput on the simulated CMP.
//! * [`service`] — the open-system service loop: arrivals pass a
//!   bounded admission queue (typed rejection when full), the sharing
//!   policy acts as a per-arrival merge controller, and every offered
//!   query gets an explicit disposition (completed / failed / rejected
//!   / in flight) so tail-latency accounting always balances.
//! * [`profiling`] — the paper's Section 3.1 parameter estimation:
//!   profile a query with and without sharing, solve for each
//!   operator's `p` and the pivot's `(w, s)`, and emit a
//!   [`cordoba_core::PlanSpec`] the policy can evaluate.
//! * [`thread_exec`] — a real-thread executor demonstrating the same
//!   shared-scan machinery on OS threads (wall-clock, host-bound).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dispatcher;
pub mod fragment_cache;
pub mod policy;
pub mod profiling;
pub mod query;
pub mod runner;
pub mod service;
pub mod sharing;
pub mod thread_exec;

pub use cordoba_exec::{ExecError, MemoryConfig, ParallelConfig};
pub use fragment_cache::{CachedFragment, FragmentCache};
pub use policy::{OverlapInfo, Policy, QueryModelInfo};
pub use query::QuerySpec;
pub use runner::{
    measure_throughput, poisson_arrivals, run_closed_loop, run_once, run_once_capped,
    run_open_loop, run_open_loop_collecting, ArrivalSchedule, ClosedLoop, Disposition,
    EngineConfig, OnceOutcome, OpenReport, RunReport, SharingCounters, Throughput,
};
pub use service::{run_service, ServiceConfig, ServiceReport};
