//! Closed-system execution harness and one-shot runs.
//!
//! The closed-loop runner is the paper's measurement rig: `m` clients
//! each keep one query in flight (a completed query is immediately
//! replaced — Little's Law, Section 1.2); throughput is completions per
//! unit of virtual time over a measurement window on an `n`-context
//! simulated CMP.

use crate::dispatcher::{DispatcherTask, EngineCore};
use crate::policy::Policy;
use crate::query::QuerySpec;
use cordoba_exec::wiring::WiringConfig;
use cordoba_exec::{ExecError, MemoryConfig, OpCost, ParallelConfig};
use cordoba_sim::{Histogram, RunOutcome, SimStats, Simulator, StopReason, VTime};
use cordoba_storage::{Catalog, Value};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Engine/run configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Simulated hardware contexts (the paper sweeps 1, 2, 8, 32).
    pub contexts: usize,
    /// Inter-operator channel capacity in pages.
    pub queue_capacity: usize,
    /// Sharing policy.
    pub policy: Policy,
    /// Group-formation window (virtual time): arrivals within the
    /// window of a compatible open group may merge with it. Stands in
    /// for stage-queue residence in the paper's packet engine.
    pub window: VTime,
    /// Maximum members per sharing group.
    pub max_group: usize,
    /// Virtual run length for closed-loop measurements.
    pub duration: VTime,
    /// Fraction of `duration` discarded as warm-up when computing
    /// throughput.
    pub warmup_fraction: f64,
    /// Cost charged by the client-side sink per result tuple.
    pub sink_cost: OpCost,
    /// Per-query memory policy: budget, spill directory, and the
    /// hash-join repartitioning limits. The default is unbounded (no
    /// operator ever spills), matching the engine's historic behavior.
    pub memory: MemoryConfig,
    /// Intra-query parallelism: morsel workers per parallelizable plan
    /// fragment. The single-worker default keeps the classic
    /// one-task-per-operator wiring; more workers split scan chains
    /// and aggregates across simulated contexts.
    pub parallel: ParallelConfig,
    /// Capacity of the fragment cache (completed shared-fragment
    /// outputs replayed for late subsumed arrivals). `0` disables the
    /// cache entirely — the historic behavior, and the default.
    pub fragment_cache: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            contexts: 1,
            queue_capacity: 16,
            policy: Policy::NeverShare,
            window: 2_000,
            max_group: 64,
            duration: 50_000_000,
            warmup_fraction: 0.2,
            sink_cost: OpCost::per_tuple(0.1),
            memory: MemoryConfig::default(),
            // Consults CORDOBA_WORKERS (default 1) — see
            // `ParallelConfig::from_env`.
            parallel: ParallelConfig::from_env(),
            fragment_cache: 0,
        }
    }
}

/// Counters for semantic (fingerprint/subsumption) sharing activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingCounters {
    /// Fragment-cache lookups that found a servable subsuming fragment.
    pub fingerprint_hits: u64,
    /// Fragment-cache lookups that found none.
    pub fingerprint_misses: u64,
    /// Fragment-cache entries displaced by inserts past capacity.
    pub fingerprint_evictions: u64,
    /// Group admissions where the member's pivot differed from the
    /// group pivot (joined via subsumption + residual, not equality).
    pub subsume_joins: u64,
    /// Times an arrival's wider pivot replaced an open group's pivot.
    pub pivot_widenings: u64,
}

impl SharingCounters {
    pub(crate) fn from_core(core: &EngineCore) -> Self {
        let (hits, misses, evictions) = core
            .fragment_cache
            .as_ref()
            .map_or((0, 0, 0), |c| (c.hits, c.misses, c.evictions));
        Self {
            fingerprint_hits: hits,
            fingerprint_misses: misses,
            fingerprint_evictions: evictions,
            subsume_joins: core.subsume_joins,
            pivot_widenings: core.pivot_widenings,
        }
    }
}

/// Outcome of a closed-loop run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual duration of the run.
    pub duration: VTime,
    /// Start of the measurement window.
    pub warmup: VTime,
    /// `(completion time, query name)` for every finished query.
    pub completions: Vec<(VTime, String)>,
    /// Machine statistics.
    pub stats: SimStats,
    /// Sizes of the sharing groups that were dispatched.
    pub group_sizes: Vec<usize>,
    /// `(submission id, error)` for queries that failed instead of
    /// completing (rejected plans and runtime faults).
    pub failures: Vec<(usize, ExecError)>,
    /// Fingerprint-cache and subsumption activity.
    pub sharing: SharingCounters,
}

impl RunReport {
    /// Completions inside the measurement window.
    pub fn measured_completions(&self) -> usize {
        self.completions
            .iter()
            .filter(|(t, _)| *t >= self.warmup)
            .count()
    }

    /// Throughput in queries per unit of virtual time, over the
    /// measurement window.
    pub fn throughput(&self) -> f64 {
        let window = (self.duration - self.warmup) as f64;
        self.measured_completions() as f64 / window
    }

    /// Throughput restricted to one query name.
    pub fn throughput_of(&self, name: &str) -> f64 {
        let window = (self.duration - self.warmup) as f64;
        self.completions
            .iter()
            .filter(|(t, n)| *t >= self.warmup && n == name)
            .count() as f64
            / window
    }

    /// Mean dispatched group size (1.0 under never-share).
    pub fn mean_group_size(&self) -> f64 {
        if self.group_sizes.is_empty() {
            return 0.0;
        }
        self.group_sizes.iter().sum::<usize>() as f64 / self.group_sizes.len() as f64
    }
}

pub(crate) fn build_core(
    catalog: &Catalog,
    cfg: &EngineConfig,
    resubmit: bool,
    collect: bool,
) -> Rc<RefCell<EngineCore>> {
    Rc::new(RefCell::new(EngineCore {
        catalog: Rc::new(catalog.clone()),
        wiring: WiringConfig {
            queue_capacity: cfg.queue_capacity,
            memory: cfg.memory.clone(),
            parallel: cfg.parallel,
        },
        policy: cfg.policy.clone(),
        contexts: cfg.contexts,
        window: cfg.window,
        resubmit,
        max_group: cfg.max_group,
        sink_cost: cfg.sink_cost,
        arrivals: VecDeque::new(),
        pending: Vec::new(),
        dispatcher: None,
        completions: Vec::new(),
        failures: Vec::new(),
        arrival_times: Vec::new(),
        completion_records: Vec::new(),
        group_sizes: Vec::new(),
        next_submission: 0,
        external_arrivals_pending: 0,
        live_queries: 0,
        group_seq: 0,
        collect: collect.then(Vec::new),
        fragment_cache: (cfg.fragment_cache > 0)
            .then(|| crate::fragment_cache::FragmentCache::new(cfg.fragment_cache)),
        subsume_joins: 0,
        pivot_widenings: 0,
    }))
}

/// Runs `clients` as a closed system for `cfg.duration` virtual time and
/// reports throughput. Each entry of `clients` is one client's query
/// (submitted at t=0 and resubmitted on every completion).
pub fn run_closed_loop(catalog: &Catalog, clients: &[QuerySpec], cfg: &EngineConfig) -> RunReport {
    let core = build_core(catalog, cfg, true, false);
    let mut sim = Simulator::new(cfg.contexts);
    for spec in clients {
        core.borrow_mut().submit(spec.clone());
    }
    let dispatcher = sim.spawn(
        "dispatcher",
        Box::new(DispatcherTask { core: core.clone() }),
    );
    core.borrow_mut().dispatcher = Some(dispatcher);
    sim.run(Some(cfg.duration));
    let core = core.borrow();
    RunReport {
        duration: cfg.duration,
        warmup: (cfg.duration as f64 * cfg.warmup_fraction) as VTime,
        completions: core.completions.clone(),
        stats: sim.stats(),
        group_sizes: core.group_sizes.clone(),
        failures: core.failures.clone(),
        sharing: SharingCounters::from_core(&core),
    }
}

/// An incrementally-runnable closed-loop system, for adaptive
/// measurements (run until N completions rather than a fixed horizon —
/// shared and unshared modes can differ in throughput by an order of
/// magnitude, so fixed horizons under-sample one of them).
pub struct ClosedLoop {
    sim: Simulator,
    core: Rc<RefCell<EngineCore>>,
}

impl ClosedLoop {
    /// Builds the closed system (clients submitted, dispatcher spawned)
    /// without running it.
    pub fn new(catalog: &Catalog, clients: &[QuerySpec], cfg: &EngineConfig) -> Self {
        let core = build_core(catalog, cfg, true, false);
        let mut sim = Simulator::new(cfg.contexts);
        for spec in clients {
            core.borrow_mut().submit(spec.clone());
        }
        let dispatcher = sim.spawn(
            "dispatcher",
            Box::new(DispatcherTask { core: core.clone() }),
        );
        core.borrow_mut().dispatcher = Some(dispatcher);
        Self { sim, core }
    }

    /// Current virtual time.
    pub fn now(&self) -> VTime {
        self.sim.now()
    }

    /// Completions so far.
    pub fn completions(&self) -> usize {
        self.core.borrow().completions.len()
    }

    /// Runs until at least `target` total completions or the virtual
    /// `time_cap`; returns whether the target was reached.
    ///
    /// Chunks grow geometrically from a small initial slice so the
    /// overshoot past `target` stays bounded (a fixed large chunk could
    /// collect thousands of surplus completions on fast workloads).
    pub fn run_until_completions(&mut self, target: usize, time_cap: VTime) -> bool {
        let mut chunk: VTime = 10_000;
        while self.completions() < target && self.sim.now() < time_cap {
            let next = self.sim.now().saturating_add(chunk).min(time_cap);
            self.sim.run(Some(next));
            chunk = chunk.saturating_mul(2);
        }
        self.completions() >= target
    }

    /// Completions with `t > since`.
    pub fn completions_since(&self, since: VTime) -> usize {
        self.core
            .borrow()
            .completions
            .iter()
            .filter(|(t, _)| *t > since)
            .count()
    }

    /// Per-name completions with `t > since`.
    pub fn completions_of_since(&self, name: &str, since: VTime) -> usize {
        self.core
            .borrow()
            .completions
            .iter()
            .filter(|(t, n)| *t > since && n == name)
            .count()
    }

    /// Mean size of dispatched sharing groups so far.
    pub fn mean_group_size(&self) -> f64 {
        let core = self.core.borrow();
        if core.group_sizes.is_empty() {
            return 0.0;
        }
        core.group_sizes.iter().sum::<usize>() as f64 / core.group_sizes.len() as f64
    }

    /// Machine statistics so far.
    pub fn stats(&self) -> SimStats {
        self.sim.stats()
    }

    /// Fingerprint-cache and subsumption counters so far.
    pub fn sharing(&self) -> SharingCounters {
        SharingCounters::from_core(&self.core.borrow())
    }
}

/// Measured steady-state throughput of a closed system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Queries per unit of virtual time over the measurement window.
    pub per_time: f64,
    /// Completions counted in the window.
    pub completions: usize,
    /// Window length (virtual time).
    pub window: VTime,
}

/// Measures steady-state throughput adaptively: warms up until every
/// client has completed ~once (`warm_target = clients`), then measures
/// until `measure_target` further completions. `time_cap` bounds the
/// whole experiment; if the cap is hit mid-measurement the throughput
/// over the partial window is returned (0 if nothing completed).
pub fn measure_throughput(
    catalog: &Catalog,
    clients: &[QuerySpec],
    cfg: &EngineConfig,
    measure_target: usize,
    time_cap: VTime,
) -> Throughput {
    let mut cl = ClosedLoop::new(catalog, clients, cfg);
    cl.run_until_completions(clients.len(), time_cap);
    let t0 = cl.now();
    let c0 = cl.completions();
    cl.run_until_completions(c0 + measure_target, time_cap.saturating_mul(4));
    let window = cl.now().saturating_sub(t0);
    let completions = cl.completions() - c0;
    Throughput {
        per_time: if window == 0 {
            0.0
        } else {
            completions as f64 / window as f64
        },
        completions,
        window,
    }
}

/// An arrival schedule for an open system: `(arrival time, query)`
/// pairs sorted by time.
pub type ArrivalSchedule = Vec<(VTime, QuerySpec)>;

/// Builds a Poisson-like arrival schedule: `count` copies of `spec`
/// with exponentially distributed inter-arrival gaps of the given mean
/// (deterministic under `seed`).
pub fn poisson_arrivals(
    spec: &QuerySpec,
    count: usize,
    mean_gap: VTime,
    seed: u64,
) -> ArrivalSchedule {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut t: VTime = 0;
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-9..1.0);
            let gap = (-u.ln() * mean_gap as f64).round() as VTime;
            t += gap;
            (t, spec.clone())
        })
        .collect()
}

/// Feeds a pre-computed arrival schedule into the engine: the task
/// sleeps (off-context) between arrivals and wakes the dispatcher as
/// queries arrive — the open-system regime of paper Section 5.1, where
/// arrivals are independent of response times.
struct ArrivalTask {
    core: Rc<RefCell<EngineCore>>,
    schedule: std::vec::IntoIter<(VTime, QuerySpec)>,
    pending: Option<(VTime, QuerySpec)>,
}

impl cordoba_sim::Task for ArrivalTask {
    fn step(&mut self, ctx: &mut cordoba_sim::TaskCtx<'_>) -> cordoba_sim::Step {
        use cordoba_sim::Step;
        let now = ctx.now();
        loop {
            let (at, spec) = match self.pending.take().or_else(|| self.schedule.next()) {
                Some(x) => x,
                None => return Step::done(0),
            };
            if at > now {
                let delay = at - now;
                self.pending = Some((at, spec));
                return Step::sleep(0, delay);
            }
            let mut core = self.core.borrow_mut();
            core.submit_at(spec, now);
            core.external_arrivals_pending = core.external_arrivals_pending.saturating_sub(1);
            let dispatcher = core.dispatcher;
            drop(core);
            if let Some(d) = dispatcher {
                ctx.wake(d);
            }
        }
    }
}

/// What became of one scheduled query.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// Completed normally.
    Completed {
        /// Virtual completion time.
        at: VTime,
        /// Response time (completion − arrival).
        response: VTime,
    },
    /// Failed (rejected plan or runtime fault) — never completed.
    Failed(ExecError),
    /// Refused at admission (bounded service queue full) — never
    /// entered the engine. Only [`crate::service`] produces this.
    Rejected,
    /// Still unfinished when the run stopped at its time cap: either
    /// in the engine (queued, forming, or executing) or a scheduled
    /// arrival the cap cut off before it was submitted.
    InFlight,
}

/// Outcome of an open-system run.
#[derive(Debug, Clone)]
pub struct OpenReport {
    /// Number of queries submitted (the whole schedule).
    pub submitted: usize,
    /// Number completed before the run ended.
    pub completed: usize,
    /// Queries still unfinished when the run hit its time cap (0 when
    /// the schedule drained). Counts both engine-resident queries and
    /// scheduled arrivals the cap cut off before submission.
    pub in_flight: usize,
    /// Virtual end time.
    pub makespan: VTime,
    /// Per-query response times (completion − arrival), completion order.
    pub response_times: Vec<VTime>,
    /// Per-query disposition, indexed by schedule position.
    pub dispositions: Vec<Disposition>,
    /// Sizes of the dispatched sharing groups.
    pub group_sizes: Vec<usize>,
    /// `(submission id, error)` for queries that failed instead of
    /// completing (rejected plans and runtime faults).
    pub failures: Vec<(usize, ExecError)>,
    /// Fingerprint-cache and subsumption activity.
    pub sharing: SharingCounters,
}

impl OpenReport {
    /// Builds the report from the engine core, deriving per-query
    /// dispositions and the in-flight count.
    ///
    /// # Panics
    ///
    /// Panics if the accounting does not balance — every scheduled
    /// query must be completed, failed, or in flight:
    /// `submitted == completed + failures.len() + in_flight`.
    fn from_core(core: &EngineCore, submitted: usize, makespan: VTime) -> Self {
        let response_times = core
            .completion_records
            .iter()
            .map(|&(submission, done)| done.saturating_sub(core.arrival_times[submission]))
            .collect::<Vec<_>>();
        let dispositions = dispositions_from_core(core, submitted);
        let in_flight = dispositions
            .iter()
            .filter(|d| **d == Disposition::InFlight)
            .count();
        let report = Self {
            submitted,
            completed: core.completion_records.len(),
            in_flight,
            makespan,
            response_times,
            dispositions,
            group_sizes: core.group_sizes.clone(),
            failures: core.failures.clone(),
            sharing: SharingCounters::from_core(core),
        };
        assert_eq!(
            report.submitted,
            report.completed + report.failures.len() + report.in_flight,
            "open-system accounting must balance: {} submitted vs {} completed + {} failed + {} in flight",
            report.submitted,
            report.completed,
            report.failures.len(),
            report.in_flight,
        );
        assert_eq!(report.dispositions.len(), report.submitted);
        report
    }

    /// Mean response time over completed queries, or `None` when
    /// nothing completed.
    pub fn mean_response(&self) -> Option<f64> {
        if self.response_times.is_empty() {
            return None;
        }
        Some(
            self.response_times.iter().map(|&t| t as f64).sum::<f64>()
                / self.response_times.len() as f64,
        )
    }

    /// Response-time distribution of the completed queries (exact
    /// nearest-rank quantiles: p50/p99/p999 via
    /// [`Histogram::quantile`]/[`Histogram::summary`]).
    pub fn latency(&self) -> Histogram {
        Histogram::from_samples(self.response_times.clone())
    }

    /// Throughput over the whole run.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.completed as f64 / self.makespan as f64
    }
}

/// Per-query dispositions from the engine's completion/failure records.
/// Submission ids beyond `core.next_submission` (scheduled arrivals a
/// time cap cut off before submission) stay [`Disposition::InFlight`].
pub(crate) fn dispositions_from_core(core: &EngineCore, submitted: usize) -> Vec<Disposition> {
    let mut dispositions = vec![Disposition::InFlight; submitted];
    for &(submission, done) in &core.completion_records {
        dispositions[submission] = Disposition::Completed {
            at: done,
            response: done.saturating_sub(core.arrival_times[submission]),
        };
    }
    for (submission, err) in &core.failures {
        dispositions[*submission] = Disposition::Failed(err.clone());
    }
    dispositions
}

/// Runs an open system: queries arrive per `schedule` (independent of
/// completions — no resubmission), the run lasts until all submitted
/// queries finish or `time_cap` is reached.
pub fn run_open_loop(
    catalog: &Catalog,
    schedule: ArrivalSchedule,
    cfg: &EngineConfig,
    time_cap: VTime,
) -> OpenReport {
    let core = build_core(catalog, cfg, false, false);
    core.borrow_mut().external_arrivals_pending = schedule.len();
    let mut sim = Simulator::new(cfg.contexts);
    let submitted = schedule.len();
    let dispatcher = sim.spawn(
        "dispatcher",
        Box::new(DispatcherTask { core: core.clone() }),
    );
    core.borrow_mut().dispatcher = Some(dispatcher);
    sim.spawn(
        "arrivals",
        Box::new(ArrivalTask {
            core: core.clone(),
            schedule: schedule.into_iter(),
            pending: None,
        }),
    );
    sim.run(Some(time_cap));
    let makespan = sim.now();
    let core = core.borrow();
    OpenReport::from_core(&core, submitted, makespan)
}

/// Like [`run_open_loop`] but also collects every query's result rows
/// (indexed by submission order). This is the correctness harness for
/// *time-staggered* sharing: fragment-cache replay serves arrivals that
/// come in after a fragment completed, which [`run_once`]'s
/// everything-at-t=0 batch can never exercise.
#[allow(clippy::type_complexity)]
pub fn run_open_loop_collecting(
    catalog: &Catalog,
    schedule: ArrivalSchedule,
    cfg: &EngineConfig,
    time_cap: VTime,
) -> (OpenReport, Vec<Vec<Vec<Value>>>) {
    let core = build_core(catalog, cfg, false, true);
    core.borrow_mut().external_arrivals_pending = schedule.len();
    let mut sim = Simulator::new(cfg.contexts);
    let submitted = schedule.len();
    let dispatcher = sim.spawn(
        "dispatcher",
        Box::new(DispatcherTask { core: core.clone() }),
    );
    core.borrow_mut().dispatcher = Some(dispatcher);
    sim.spawn(
        "arrivals",
        Box::new(ArrivalTask {
            core: core.clone(),
            schedule: schedule.into_iter(),
            pending: None,
        }),
    );
    sim.run(Some(time_cap));
    let makespan = sim.now();
    let core = core.borrow();
    let results = core
        .collect
        .as_ref()
        // lint: allow(this runner installed collection buffers when it built the core)
        .expect("collection enabled")
        .iter()
        .map(|buf| {
            buf.borrow()
                .iter()
                .flat_map(|p| p.tuples().map(|t| t.to_values()).collect::<Vec<_>>())
                .collect()
        })
        .collect();
    let report = OpenReport::from_core(&core, submitted, makespan);
    (report, results)
}

/// Result of a one-shot (no resubmission) run.
#[derive(Debug, Clone)]
pub struct OnceOutcome {
    /// Result rows per submitted query, in submission order. Failed
    /// queries have empty (or partial, for runtime faults) rows — check
    /// `failures`.
    pub results: Vec<Vec<Vec<Value>>>,
    /// Per-task `(label, stats)` for profiling.
    pub task_stats: Vec<(String, cordoba_sim::TaskStats)>,
    /// Virtual completion time of the whole batch.
    pub makespan: VTime,
    /// Sizes of the dispatched sharing groups.
    pub group_sizes: Vec<usize>,
    /// `(submission id, error)` for queries that failed: plans rejected
    /// at instantiation or runtime faults (unsorted merge inputs,
    /// mismatched page schemas, spill I/O errors, exhausted budgets).
    pub failures: Vec<(usize, ExecError)>,
    /// Fingerprint-cache and subsumption activity.
    pub sharing: SharingCounters,
}

/// Records an [`ExecError::Stalled`] failure for every submission that
/// neither completed nor failed — a wedged (deadlocked) or time-capped
/// batch fails its unfinished queries instead of killing the process.
fn fail_stalled_submissions(core: &mut EngineCore, outcome: &RunOutcome) {
    let reason = match outcome.reason {
        StopReason::TimeLimit => "time cap",
        StopReason::Deadlock => "deadlock",
        // `Idle` means every task finished; nothing can be stalled.
        StopReason::Idle => return,
    };
    let mut finished = vec![false; core.next_submission];
    for &(submission, _) in &core.completion_records {
        finished[submission] = true;
    }
    for &(submission, _) in &core.failures {
        finished[submission] = true;
    }
    for (submission, done) in finished.into_iter().enumerate() {
        if !done {
            core.failures.push((
                submission,
                ExecError::Stalled {
                    reason,
                    live_tasks: outcome.live_tasks,
                },
            ));
            core.live_queries = core.live_queries.saturating_sub(1);
        }
    }
}

/// Runs a batch of queries once (closed system disabled) to completion,
/// collecting results and per-operator statistics. Used for correctness
/// tests (shared results must equal unshared results) and for the
/// Section 3.1 profiling procedure.
///
/// A batch that cannot finish (a wedged operator graph) fails its
/// unfinished queries with [`ExecError::Stalled`] rather than
/// panicking; check `failures` when the batch's health matters.
pub fn run_once(catalog: &Catalog, specs: &[QuerySpec], cfg: &EngineConfig) -> OnceOutcome {
    run_once_capped(catalog, specs, cfg, None)
}

/// Like [`run_once`] but with an optional virtual-time cap. Queries
/// unfinished at the cap (or on deadlock) are failed with
/// [`ExecError::Stalled`] — the query set fails, not the harness.
pub fn run_once_capped(
    catalog: &Catalog,
    specs: &[QuerySpec],
    cfg: &EngineConfig,
    time_cap: Option<VTime>,
) -> OnceOutcome {
    let core = build_core(catalog, cfg, false, true);
    let mut sim = Simulator::new(cfg.contexts);
    for spec in specs {
        core.borrow_mut().submit(spec.clone());
    }
    let dispatcher = sim.spawn(
        "dispatcher",
        Box::new(DispatcherTask { core: core.clone() }),
    );
    core.borrow_mut().dispatcher = Some(dispatcher);
    let outcome = sim.run(time_cap);
    if !outcome.completed_all() {
        fail_stalled_submissions(&mut core.borrow_mut(), &outcome);
    }
    let makespan = sim.now();
    let task_stats = sim
        .all_task_stats()
        .map(|(_, name, stats)| (name.to_string(), *stats))
        .collect();
    let core = core.borrow();
    let results = core
        .collect
        .as_ref()
        // lint: allow(this runner installed collection buffers when it built the core)
        .expect("collection enabled")
        .iter()
        .map(|buf| {
            buf.borrow()
                .iter()
                .flat_map(|p| p.tuples().map(|t| t.to_values()).collect::<Vec<_>>())
                .collect()
        })
        .collect();
    OnceOutcome {
        results,
        task_stats,
        makespan,
        group_sizes: core.group_sizes.clone(),
        failures: core.failures.clone(),
        sharing: SharingCounters::from_core(&core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
    use cordoba_exec::{reference, PhysicalPlan};
    use cordoba_storage::{DataType, Field, Schema, TableBuilder};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ]);
        let mut b = TableBuilder::new("t", schema);
        for i in 0..512 {
            b.push_row(&[Value::Int(i), Value::Float((i % 7) as f64)]);
        }
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    fn scan() -> PhysicalPlan {
        PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::new(4.0, 2.0),
        }
    }

    /// sum(v) over k < 256, shareable at the scan.
    fn query() -> QuerySpec {
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan()),
                predicate: Predicate::col_cmp(0, CmpOp::Lt, 256i64),
                cost: OpCost::per_tuple(0.5),
            }),
            group_by: vec![],
            aggs: vec![("s".into(), Agg::Sum(ScalarExpr::col(1)))],
            cost: OpCost::per_tuple(0.5),
        };
        QuerySpec::shared_at("q", plan, scan())
    }

    fn expected_rows(catalog: &Catalog) -> Vec<Vec<Value>> {
        reference::execute(catalog, &query().plan)
    }

    #[test]
    fn run_once_unshared_matches_reference() {
        let cat = catalog();
        let cfg = EngineConfig {
            contexts: 2,
            policy: Policy::NeverShare,
            ..Default::default()
        };
        let out = run_once(&cat, &[query(), query()], &cfg);
        assert_eq!(out.results.len(), 2);
        for r in &out.results {
            assert_eq!(r, &expected_rows(&cat));
        }
        // Never-share: all groups are singletons.
        assert_eq!(out.group_sizes, vec![1, 1]);
    }

    #[test]
    fn run_once_shared_matches_reference_and_merges() {
        let cat = catalog();
        let cfg = EngineConfig {
            contexts: 2,
            policy: Policy::AlwaysShare,
            ..Default::default()
        };
        let out = run_once(&cat, &[query(), query(), query()], &cfg);
        assert_eq!(out.group_sizes, vec![3], "all three queries must merge");
        for r in &out.results {
            assert_eq!(r, &expected_rows(&cat));
        }
    }

    #[test]
    fn shared_scan_runs_once_saving_work() {
        let cat = catalog();
        let never = EngineConfig {
            contexts: 1,
            policy: Policy::NeverShare,
            ..Default::default()
        };
        let always = EngineConfig {
            contexts: 1,
            policy: Policy::AlwaysShare,
            ..Default::default()
        };
        let out_n = run_once(&cat, &[query(), query(), query(), query()], &never);
        let out_s = run_once(&cat, &[query(), query(), query(), query()], &always);
        // On one context the shared batch must finish faster (the scan's
        // private work happens once instead of four times).
        assert!(
            out_s.makespan < out_n.makespan,
            "shared {} vs unshared {}",
            out_s.makespan,
            out_n.makespan
        );
        // Exactly one shared scan task vs four private ones.
        let scans = |o: &OnceOutcome| {
            o.task_stats
                .iter()
                .filter(|(n, _)| n.contains("scan(t)"))
                .count()
        };
        assert_eq!(scans(&out_s), 1);
        assert_eq!(scans(&out_n), 4);
    }

    #[test]
    fn parallel_engine_matches_reference_and_spawns_morsel_workers() {
        let cat = catalog();
        let cfg = EngineConfig {
            contexts: 4,
            policy: Policy::NeverShare,
            parallel: ParallelConfig::with_workers(4),
            ..Default::default()
        };
        let out = run_once(&cat, &[query(), query()], &cfg);
        assert!(out.failures.is_empty(), "failures: {:?}", out.failures);
        for r in &out.results {
            assert_eq!(r, &expected_rows(&cat));
        }
        let morsel_tasks = out
            .task_stats
            .iter()
            .filter(|(n, _)| n.contains(":par_"))
            .count();
        assert!(
            morsel_tasks > 0,
            "workers=4 should wire morsel-parallel task groups"
        );
    }

    #[test]
    fn intra_query_parallelism_shortens_makespan_on_multiple_contexts() {
        // One query, four contexts: the serial wiring leaves three
        // contexts idle, the morsel wiring spreads scan+filter work
        // across all four — virtual makespan must drop. The table needs
        // enough pages for the dispenser to hand each worker several
        // morsels.
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ]);
        let mut b = TableBuilder::with_page_size("t", schema, 32);
        for i in 0..512 {
            b.push_row(&[Value::Int(i), Value::Float((i % 7) as f64)]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish());
        let serial = EngineConfig {
            contexts: 4,
            policy: Policy::NeverShare,
            // Pinned (Default consults CORDOBA_WORKERS): this arm must
            // stay serial for the comparison to mean anything.
            parallel: ParallelConfig::with_workers(1),
            ..Default::default()
        };
        let par = EngineConfig {
            contexts: 4,
            policy: Policy::NeverShare,
            parallel: ParallelConfig {
                workers: 4,
                morsel_pages: 1,
            },
            ..Default::default()
        };
        let out_serial = run_once(&cat, &[query()], &serial);
        let out_par = run_once(&cat, &[query()], &par);
        assert_eq!(out_serial.results, out_par.results);
        assert!(
            out_par.makespan < out_serial.makespan,
            "parallel {} vs serial {}",
            out_par.makespan,
            out_serial.makespan
        );
    }

    #[test]
    fn malformed_query_fails_without_killing_the_batch() {
        // One malformed query (string-ish arithmetic via an
        // out-of-range column) among healthy ones: the bad submission
        // is recorded as a failure, everything else completes normally.
        let cat = catalog();
        let bad = QuerySpec::unshared(
            "bad",
            PhysicalPlan::Project {
                input: Box::new(scan()),
                exprs: vec![("e".into(), ScalarExpr::col(9))],
                cost: OpCost::default(),
            },
        );
        let cfg = EngineConfig {
            contexts: 2,
            policy: Policy::NeverShare,
            ..Default::default()
        };
        let out = run_once(&cat, &[query(), bad, query()], &cfg);
        assert_eq!(out.failures.len(), 1, "{:?}", out.failures);
        assert_eq!(out.failures[0].0, 1, "submission id of the bad query");
        assert!(
            matches!(out.failures[0].1, ExecError::PlanType(_)),
            "{:?}",
            out.failures[0].1
        );
        assert_eq!(out.results[0], expected_rows(&cat));
        assert!(out.results[1].is_empty(), "failed query has no rows");
        assert_eq!(out.results[2], expected_rows(&cat));
    }

    #[test]
    fn closed_loop_reports_throughput() {
        let cat = catalog();
        let cfg = EngineConfig {
            contexts: 2,
            policy: Policy::NeverShare,
            duration: 2_000_000,
            ..Default::default()
        };
        let report = run_closed_loop(&cat, &[query(), query()], &cfg);
        assert!(report.measured_completions() > 4, "{report:?}");
        assert!(report.throughput() > 0.0);
        assert!((report.mean_group_size() - 1.0).abs() < 1e-9);
        // Two clients on two contexts keep the machine mostly busy.
        assert!(report.stats.utilization() > 0.5);
    }

    #[test]
    fn closed_loop_always_share_forms_groups_repeatedly() {
        let cat = catalog();
        let cfg = EngineConfig {
            contexts: 2,
            policy: Policy::AlwaysShare,
            duration: 2_000_000,
            ..Default::default()
        };
        let report = run_closed_loop(&cat, &[query(), query(), query(), query()], &cfg);
        // Groups keep re-forming as the closed loop resubmits.
        assert!(report.group_sizes.len() > 2);
        assert!(report.mean_group_size() > 1.5, "{:?}", report.group_sizes);
    }

    #[test]
    fn open_loop_completes_all_scheduled_arrivals() {
        let cat = catalog();
        let schedule = poisson_arrivals(&query(), 12, 5_000, 7);
        assert_eq!(schedule.len(), 12);
        assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "sorted by time"
        );
        let cfg = EngineConfig {
            contexts: 4,
            policy: Policy::AlwaysShare,
            ..Default::default()
        };
        let report = run_open_loop(&cat, schedule, &cfg, 1_000_000_000);
        assert_eq!(report.completed, 12, "{report:?}");
        assert_eq!(report.response_times.len(), 12);
        assert!(report.response_times.iter().all(|&t| t > 0));
        assert!(report.mean_response().unwrap() > 0.0);
        assert!(report.throughput() > 0.0);
        assert_eq!(
            report.in_flight, 0,
            "drained schedule has nothing in flight"
        );
        assert!(report
            .dispositions
            .iter()
            .all(|d| matches!(d, Disposition::Completed { .. })));
        let p_max = report.latency().quantile(1.0).unwrap();
        assert_eq!(p_max, *report.response_times.iter().max().unwrap());
    }

    #[test]
    fn open_loop_staggered_arrivals_share_less_than_batch() {
        // Arrivals far apart never co-reside in the formation window,
        // so even always-share dispatches singletons; a burst merges.
        let cat = catalog();
        let cfg = EngineConfig {
            contexts: 2,
            policy: Policy::AlwaysShare,
            ..Default::default()
        };
        let sparse: ArrivalSchedule = (0..6).map(|i| (i * 50_000_000, query())).collect();
        let sparse_report = run_open_loop(&cat, sparse, &cfg, u64::MAX / 4);
        assert!(
            sparse_report.group_sizes.iter().all(|&g| g == 1),
            "{:?}",
            sparse_report.group_sizes
        );
        let burst: ArrivalSchedule = (0..6).map(|_| (1000, query())).collect();
        let burst_report = run_open_loop(&cat, burst, &cfg, u64::MAX / 4);
        assert_eq!(burst_report.group_sizes, vec![6]);
        // Sharing the burst lowers mean response vs the per-query cost
        // of redundant scans... at least, every query still finishes.
        assert_eq!(burst_report.completed, 6);
    }

    #[test]
    fn open_loop_respects_time_cap() {
        let cat = catalog();
        let cfg = EngineConfig {
            contexts: 1,
            ..Default::default()
        };
        let schedule: ArrivalSchedule = (0..50).map(|_| (0, query())).collect();
        let report = run_open_loop(&cat, schedule, &cfg, 50_000);
        assert!(report.completed < 50, "cap must cut the run short");
        assert!(report.makespan <= 50_000);
        // The cut-off queries are accounted, not dropped: the report
        // constructor asserts submitted == completed + failed + in_flight.
        assert_eq!(
            report.in_flight,
            50 - report.completed - report.failures.len()
        );
        assert!(report.in_flight > 0);
        let in_flight = report
            .dispositions
            .iter()
            .filter(|d| **d == Disposition::InFlight)
            .count();
        assert_eq!(in_flight, report.in_flight);
    }

    #[test]
    fn poisson_schedule_is_deterministic_per_seed() {
        let a = poisson_arrivals(&query(), 20, 1_000, 42);
        let b = poisson_arrivals(&query(), 20, 1_000, 42);
        assert_eq!(
            a.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            b.iter().map(|(t, _)| *t).collect::<Vec<_>>()
        );
        let c = poisson_arrivals(&query(), 20, 1_000, 43);
        assert_ne!(
            a.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            c.iter().map(|(t, _)| *t).collect::<Vec<_>>()
        );
    }

    #[test]
    fn completions_are_timestamped_within_duration() {
        let cat = catalog();
        let cfg = EngineConfig {
            contexts: 1,
            policy: Policy::NeverShare,
            duration: 500_000,
            ..Default::default()
        };
        let report = run_closed_loop(&cat, &[query()], &cfg);
        for (t, name) in &report.completions {
            assert!(*t <= report.duration);
            assert_eq!(name, "q");
        }
    }
}
