//! Real-thread executor: the same shared-scan machinery on OS threads.
//!
//! The simulator is the measurement substrate (deterministic, scales to
//! 32 contexts on any host); this module demonstrates that the engine's
//! sharing design also runs on real hardware. Unshared mode executes
//! each query on a worker thread; shared mode runs the pivot sub-plan
//! once on a producer thread that fans pages out to every consumer over
//! bounded channels — paying the real (wall-clock) per-consumer cost the
//! model calls `s`.

use crate::query::QuerySpec;
use crate::sharing::split_at_pivot;
use cordoba_exec::{parallel, reference, ExecError, ParallelConfig, PhysicalPlan};
use cordoba_storage::{Catalog, Page, Table, TableBuilder, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadReport {
    /// Result rows per query, in submission order.
    pub results: Vec<Vec<Vec<Value>>>,
    /// Wall-clock duration of the batch.
    pub elapsed: Duration,
}

/// Executes `m` copies of `spec` without sharing on up to `threads`
/// worker threads.
pub fn run_unshared(catalog: &Catalog, spec: &QuerySpec, m: usize, threads: usize) -> ThreadReport {
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Vec<Vec<Value>>>> = vec![None; m];
    let mut slots: Vec<_> = results.iter_mut().collect();
    thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::sync_channel::<(usize, Vec<Vec<Value>>)>(m.max(1));
        for _ in 0..threads.max(1).min(m.max(1)) {
            let done_tx = done_tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= m {
                    break;
                }
                let rows = reference::execute(catalog, &spec.plan);
                // lint: allow(receiver drains inside this scope, so the channel cannot sever)
                done_tx.send((i, rows)).expect("collector alive");
            });
        }
        drop(done_tx);
        for (i, rows) in done_rx {
            *slots[i] = Some(rows);
        }
    });
    ThreadReport {
        results: results
            .into_iter()
            // lint: allow(fetch_add hands indexes 0..m to workers exactly once, filling every slot)
            .map(|r| r.expect("all queries ran"))
            .collect(),
        elapsed: start.elapsed(),
    }
}

/// Executes `m` copies of `spec` without sharing, each query running
/// the morsel-parallel executor with `parallel.workers` threads of its
/// own. `threads` bounds how many *queries* run concurrently, so total
/// thread pressure is `threads × workers`.
///
/// This is the unshared baseline the contention re-fit measures: the
/// same queries as [`run_unshared`], but each one spreading its scan →
/// filter → project → aggregate work across morsel workers instead of a
/// single thread of control.
pub fn run_unshared_parallel(
    catalog: &Catalog,
    spec: &QuerySpec,
    m: usize,
    threads: usize,
    parallel: &ParallelConfig,
) -> Result<ThreadReport, ExecError> {
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Vec<Vec<Value>>>> = vec![None; m];
    let mut slots: Vec<_> = results.iter_mut().collect();
    let mut first_err: Option<ExecError> = None;
    thread::scope(|scope| {
        type Done = (usize, Result<Vec<Vec<Value>>, ExecError>);
        let (done_tx, done_rx) = mpsc::sync_channel::<Done>(m.max(1));
        for _ in 0..threads.max(1).min(m.max(1)) {
            let done_tx = done_tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= m {
                    break;
                }
                let rows = parallel::execute_plan(catalog, &spec.plan, parallel);
                // lint: allow(receiver drains inside this scope, so the channel cannot sever)
                done_tx.send((i, rows)).expect("collector alive");
            });
        }
        drop(done_tx);
        for (i, rows) in done_rx {
            match rows {
                Ok(rows) => *slots[i] = Some(rows),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(ThreadReport {
        results: results
            .into_iter()
            // lint: allow(fetch_add hands indexes 0..m to workers exactly once, filling every slot)
            .map(|r| r.expect("all queries ran"))
            .collect(),
        elapsed: start.elapsed(),
    })
}

/// Measures unshared throughput (queries per wall-clock second) of the
/// morsel-parallel executor at each worker count, running one query at
/// a time so the samples isolate *intra*-query scaling.
///
/// Feed the samples to [`cordoba_core::contention::estimate_k`]-style
/// fitting to recover the scaling exponent `κ` of `e(k) = k^κ` for this
/// host — the paper's aggregate-bandwidth contention form, re-fitted
/// against real threads instead of simulated contexts.
pub fn worker_scaling_samples(
    catalog: &Catalog,
    spec: &QuerySpec,
    repeats: usize,
    worker_counts: &[u32],
) -> Result<Vec<(u32, f64)>, ExecError> {
    let mut samples = Vec::with_capacity(worker_counts.len());
    for &k in worker_counts {
        let cfg = ParallelConfig::with_workers(k.max(1) as usize);
        let report = run_unshared_parallel(catalog, spec, repeats.max(1), 1, &cfg)?;
        let secs = report.elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        samples.push((k.max(1), repeats.max(1) as f64 / secs));
    }
    Ok(samples)
}

/// Executes `m` copies of `spec` with the pivot sub-plan shared: one
/// producer thread evaluates the pivot once and fans its pages out to
/// `m` consumer threads over bounded channels.
///
/// # Panics
///
/// Panics if `spec` has no pivot.
pub fn run_shared(catalog: &Catalog, spec: &QuerySpec, m: usize) -> ThreadReport {
    // lint: allow(documented '# Panics' contract of this harness entry point)
    let pivot = spec.pivot.as_ref().expect("shared run needs a pivot");
    let start = Instant::now();
    // lint: allow(pivot came out of this same plan, so the split always finds it)
    let fragment = split_at_pivot(&spec.plan, pivot, catalog).expect("pivot sub-plan not found");

    // The pivot executes once (producer side).
    let pivot_table = reference::execute_table(catalog, pivot);

    let mut results: Vec<Option<Vec<Vec<Value>>>> = vec![None; m];
    let mut slots: Vec<_> = results.iter_mut().collect();
    thread::scope(|scope| {
        // One bounded channel per consumer: the fan-out serialization
        // point of the model.
        let mut txs = Vec::with_capacity(m);
        let (done_tx, done_rx) = mpsc::sync_channel::<(usize, Vec<Vec<Value>>)>(m.max(1));
        for i in 0..m {
            let (tx, rx) = mpsc::sync_channel::<Arc<Page>>(16);
            txs.push(tx);
            let fragment = fragment.clone();
            let done_tx = done_tx.clone();
            let pivot_schema = pivot_table.schema().clone();
            scope.spawn(move || {
                // Materialize the received stream, then run the private
                // fragment over it (Source replaced by a scan of the
                // received pages).
                let mut received = TableBuilder::new("__shared_src", pivot_schema);
                for page in rx {
                    for t in page.tuples() {
                        received.push_row(&t.to_values());
                    }
                }
                let rows = match &fragment {
                    Some(frag) => {
                        let mut local = catalog.clone();
                        local.register(received.finish());
                        let plan = substitute_source(frag, "__shared_src");
                        reference::execute(&local, &plan)
                    }
                    None => table_rows(&received.finish()),
                };
                // lint: allow(receiver drains inside this scope, so the channel cannot sever)
                done_tx.send((i, rows)).expect("collector alive");
            });
        }
        drop(done_tx);
        // Producer: deliver every page to every consumer, sequentially —
        // exactly the pivot's M·s serialization.
        scope.spawn(move || {
            for page in pivot_table.pages() {
                for tx in &txs {
                    // lint: allow(consumers drain their channel until the producer hangs up)
                    tx.send(page.clone()).expect("consumer alive");
                }
            }
        });
        for (i, rows) in done_rx {
            *slots[i] = Some(rows);
        }
    });
    ThreadReport {
        results: results
            .into_iter()
            // lint: allow(every consumer 0..m sends exactly one result before exiting)
            .map(|r| r.expect("all consumers reported"))
            .collect(),
        elapsed: start.elapsed(),
    }
}

fn table_rows(table: &Arc<Table>) -> Vec<Vec<Value>> {
    table.scan_values().collect()
}

/// Replaces every [`PhysicalPlan::Source`] leaf with a scan of `table`.
fn substitute_source(plan: &PhysicalPlan, table: &str) -> PhysicalPlan {
    let mut clone = plan.clone();
    match &mut clone {
        PhysicalPlan::Source { .. } => {
            return PhysicalPlan::Scan {
                table: table.to_string(),
                cost: cordoba_exec::OpCost::default(),
            }
        }
        PhysicalPlan::Scan { .. } => {}
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Aggregate { input, .. }
        | PhysicalPlan::Sort { input, .. } => {
            **input = substitute_source(input, table);
        }
        PhysicalPlan::HashJoin { build, probe, .. } => {
            **build = substitute_source(build, table);
            **probe = substitute_source(probe, table);
        }
        PhysicalPlan::NestedLoopJoin { outer, inner, .. } => {
            **outer = substitute_source(outer, table);
            **inner = substitute_source(inner, table);
        }
        PhysicalPlan::MergeJoin { left, right, .. } => {
            **left = substitute_source(left, table);
            **right = substitute_source(right, table);
        }
    }
    clone
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::expr::{Agg, CmpOp, Predicate, ScalarExpr};
    use cordoba_exec::OpCost;
    use cordoba_storage::{DataType, Field, Schema};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ]);
        let mut b = TableBuilder::new("t", schema);
        for i in 0..2000 {
            b.push_row(&[Value::Int(i), Value::Float((i % 13) as f64)]);
        }
        let mut c = Catalog::new();
        c.register(b.finish());
        c
    }

    fn query() -> QuerySpec {
        let scan = PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::default(),
        };
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan.clone()),
                predicate: Predicate::col_cmp(0, CmpOp::Lt, 1000i64),
                cost: OpCost::default(),
            }),
            group_by: vec![],
            aggs: vec![("s".into(), Agg::Sum(ScalarExpr::col(1)))],
            cost: OpCost::default(),
        };
        QuerySpec::shared_at("tq", plan, scan)
    }

    #[test]
    fn unshared_threads_match_reference() {
        let cat = catalog();
        let expected = reference::execute(&cat, &query().plan);
        let report = run_unshared(&cat, &query(), 4, 2);
        assert_eq!(report.results.len(), 4);
        for r in &report.results {
            assert_eq!(r, &expected);
        }
    }

    #[test]
    fn shared_threads_match_reference() {
        let cat = catalog();
        let expected = reference::execute(&cat, &query().plan);
        let report = run_shared(&cat, &query(), 4);
        assert_eq!(report.results.len(), 4);
        for r in &report.results {
            assert_eq!(r, &expected);
        }
    }

    #[test]
    fn parallel_unshared_matches_reference_at_each_worker_count() {
        let cat = catalog();
        let expected = reference::execute(&cat, &query().plan);
        for workers in [1usize, 4] {
            let cfg = ParallelConfig::with_workers(workers);
            let report = run_unshared_parallel(&cat, &query(), 3, 2, &cfg).unwrap();
            assert_eq!(report.results.len(), 3);
            for r in &report.results {
                assert_eq!(r, &expected, "workers={workers}");
            }
        }
    }

    #[test]
    fn worker_scaling_samples_cover_requested_counts() {
        let cat = catalog();
        let samples = worker_scaling_samples(&cat, &query(), 2, &[1, 2]).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].0, 1);
        assert_eq!(samples[1].0, 2);
        for (k, x) in samples {
            assert!(x > 0.0, "throughput at k={k} must be positive, got {x}");
        }
    }

    #[test]
    fn whole_plan_sharing_over_threads() {
        let cat = catalog();
        let q = query();
        let whole = QuerySpec::shared_at("whole", q.plan.clone(), q.plan.clone());
        let expected = reference::execute(&cat, &q.plan);
        let report = run_shared(&cat, &whole, 3);
        for r in &report.results {
            assert_eq!(r, &expected);
        }
    }
}
