//! Query specifications: a plan plus its shareable sub-plan.

use cordoba_exec::{ExecError, PhysicalPlan};

/// One query type a client submits.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Query name (e.g. `"q6"`), used for grouping in reports.
    pub name: String,
    /// The executable plan.
    pub plan: PhysicalPlan,
    /// The sub-plan at which sharing is allowed (the pivot operator is
    /// its root). Must be structurally equal (`==`) to a subtree of
    /// `plan`. `None` disables sharing for this query.
    ///
    /// Sharing across *queries* is semantic, not structural: the
    /// dispatcher groups pivots whose [`cordoba_exec::subsume`]
    /// fingerprints match and one of which subsumes the other, feeding
    /// the narrower member through a residual filter. Equality with a
    /// subtree of `plan` is still required here so the split point is
    /// well defined within each query.
    ///
    /// The paper's experiments allow sharing "only at one selected node
    /// of each query plan" (scan for Q1/Q6, join for Q4/Q13); this field
    /// is that selection.
    pub pivot: Option<PhysicalPlan>,
    /// Chaos testing: when set, the query's sink observes this fault and
    /// the query fails (after its operators ran normally) instead of
    /// completing — exercising the engine's failure accounting without
    /// disturbing group formation or its group peers.
    pub chaos: Option<ExecError>,
}

impl QuerySpec {
    /// A non-shareable query.
    pub fn unshared(name: impl Into<String>, plan: PhysicalPlan) -> Self {
        Self {
            name: name.into(),
            plan,
            pivot: None,
            chaos: None,
        }
    }

    /// A query shareable at the given sub-plan.
    ///
    /// # Panics
    ///
    /// Panics if `pivot` is not a subtree of `plan`.
    pub fn shared_at(name: impl Into<String>, plan: PhysicalPlan, pivot: PhysicalPlan) -> Self {
        assert!(
            crate::sharing::contains_subtree(&plan, &pivot),
            "pivot sub-plan is not part of the query plan"
        );
        Self {
            name: name.into(),
            plan,
            pivot: Some(pivot),
            chaos: None,
        }
    }

    /// Marks the query to fail with an injected fault (chaos testing).
    pub fn with_chaos(mut self, err: ExecError) -> Self {
        self.chaos = Some(err);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_exec::{expr::Predicate, OpCost};

    fn scan() -> PhysicalPlan {
        PhysicalPlan::Scan {
            table: "t".into(),
            cost: OpCost::default(),
        }
    }

    #[test]
    fn shared_at_validates_subtree() {
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Predicate::True,
            cost: OpCost::default(),
        };
        let q = QuerySpec::shared_at("q", plan.clone(), scan());
        assert_eq!(q.pivot, Some(scan()));
        // Whole plan as pivot is allowed (full-query coalescing).
        let q = QuerySpec::shared_at("q", plan.clone(), plan);
        assert!(q.pivot.is_some());
    }

    #[test]
    #[should_panic(expected = "not part of the query plan")]
    fn foreign_pivot_rejected() {
        let other = PhysicalPlan::Scan {
            table: "other".into(),
            cost: OpCost::default(),
        };
        QuerySpec::shared_at("q", scan(), other);
    }

    #[test]
    fn unshared_has_no_pivot() {
        assert!(QuerySpec::unshared("q", scan()).pivot.is_none());
    }
}
