//! Sharing policies: always, never, and model-guided (paper Section 8).

use cordoba_core::sharing::SharingEvaluator;
use cordoba_core::{NodeId, PlanSpec};
use std::collections::HashMap;

/// Model parameters for one query type, produced by
/// [`crate::profiling::profile_query`].
#[derive(Debug, Clone)]
pub struct QueryModelInfo {
    /// The query's plan in model form (one node per operator, measured
    /// `p` values; the pivot node carries fitted `(w, s)`).
    pub plan: PlanSpec,
    /// The pivot node inside `plan`.
    pub pivot: NodeId,
}

/// A sharing policy.
#[derive(Debug, Clone, Default)]
pub enum Policy {
    /// Merge whenever an open compatible group exists.
    AlwaysShare,
    /// Never merge; every query executes independently.
    #[default]
    NeverShare,
    /// Merge only when the analytical model predicts the expanded group
    /// outperforms unshared execution (`Z(m+1, n) > 1 + hysteresis`).
    ModelGuided {
        /// Per-query-name model parameters (from profiling).
        models: HashMap<String, QueryModelInfo>,
        /// Extra predicted benefit required before sharing (guards
        /// against borderline flapping under estimation noise).
        hysteresis: f64,
    },
}

impl Policy {
    /// Convenience constructor for the model-guided policy.
    pub fn model_guided(models: HashMap<String, QueryModelInfo>) -> Self {
        Policy::ModelGuided {
            models,
            hysteresis: 0.0,
        }
    }

    /// Whether this policy ever forms groups.
    pub fn may_share(&self) -> bool {
        !matches!(self, Policy::NeverShare)
    }

    /// Decides whether a query named `candidate` should join an open
    /// group currently holding `group_names` queries of the same pivot,
    /// with `effective_contexts` processors effectively available to the
    /// expanded group.
    ///
    /// `AlwaysShare` says yes; `NeverShare` no; `ModelGuided` evaluates
    /// `Z(m+1, n_eff)` for the expanded (possibly heterogeneous) group.
    /// A query with no profiled model is conservatively not shared.
    ///
    /// `effective_contexts` implements the "conditions at runtime" of
    /// paper Section 8: on a loaded machine a group does not have all
    /// `n` contexts to itself — the engine passes the group's fair share
    /// `n · (m + 1) / live_queries`, which makes sharing more attractive
    /// exactly when the machine is saturated (the regime where the
    /// paper shows sharing pays off).
    pub fn admit(&self, group_names: &[String], candidate: &str, effective_contexts: f64) -> bool {
        match self {
            Policy::AlwaysShare => true,
            Policy::NeverShare => false,
            Policy::ModelGuided { models, hysteresis } => {
                let mut members: Vec<(&PlanSpec, NodeId)> = Vec::new();
                for name in group_names.iter().map(String::as_str).chain([candidate]) {
                    match models.get(name) {
                        Some(info) => members.push((&info.plan, info.pivot)),
                        None => return false,
                    }
                }
                match SharingEvaluator::heterogeneous(&members) {
                    // Ties (Z = 1) are accepted: sharing that predicts
                    // neither gain nor loss still removes redundant work
                    // from the system, freeing capacity for *other*
                    // queries the single-group model cannot see.
                    Ok(eval) => {
                        eval.speedup(effective_contexts.max(1.0)) >= 1.0 + hysteresis - 1e-9
                    }
                    Err(_) => false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_core::OperatorSpec;

    /// Q6-like model: scan (w=9.66, s=10.34) -> agg (p=0.97).
    fn q6_info() -> QueryModelInfo {
        let mut b = PlanSpec::new();
        let scan = b.add_leaf(OperatorSpec::new("scan", vec![9.66], vec![10.34]));
        let agg = b.add_node(OperatorSpec::new("agg", vec![0.97], vec![]), vec![scan]);
        QueryModelInfo {
            plan: b.finish(agg).unwrap(),
            pivot: scan,
        }
    }

    /// Join-heavy model: big scans below a cheap-output pivot.
    fn join_info() -> QueryModelInfo {
        let mut b = PlanSpec::new();
        let s1 = b.add_leaf(OperatorSpec::new("scan1", vec![12.0], vec![1.0]));
        let s2 = b.add_leaf(OperatorSpec::new("scan2", vec![30.0], vec![1.0]));
        let join = b.add_node(
            OperatorSpec::new("join", vec![2.0, 1.0], vec![0.05]),
            vec![s1, s2],
        );
        let agg = b.add_node(OperatorSpec::new("agg", vec![0.5], vec![]), vec![join]);
        QueryModelInfo {
            plan: b.finish(agg).unwrap(),
            pivot: join,
        }
    }

    fn model_policy() -> Policy {
        let mut models = HashMap::new();
        models.insert("q6".to_string(), q6_info());
        models.insert("q4".to_string(), join_info());
        Policy::model_guided(models)
    }

    #[test]
    fn static_policies() {
        assert!(Policy::AlwaysShare.admit(&["q6".into()], "q6", 32.0));
        assert!(!Policy::NeverShare.admit(&["q6".into()], "q6", 1.0));
        assert!(Policy::AlwaysShare.may_share());
        assert!(!Policy::NeverShare.may_share());
    }

    #[test]
    fn model_guided_distinguishes_scan_heavy_by_contexts() {
        let p = model_policy();
        let group: Vec<String> = vec!["q6".into(); 8];
        // Scan-heavy: share on a uniprocessor, not on 32 contexts.
        assert!(p.admit(&group, "q6", 1.0));
        assert!(!p.admit(&group, "q6", 32.0));
    }

    #[test]
    fn model_guided_always_shares_join_heavy_under_load() {
        let p = model_policy();
        let group: Vec<String> = vec!["q4".into(); 8];
        for contexts in [1.0, 2.0, 8.0] {
            assert!(p.admit(&group, "q4", contexts), "contexts={contexts}");
        }
    }

    #[test]
    fn unprofiled_queries_never_shared() {
        let p = model_policy();
        assert!(!p.admit(&["q6".into()], "mystery", 1.0));
        assert!(!p.admit(&["mystery".into()], "q6", 1.0));
    }

    #[test]
    fn fractional_effective_contexts_supported() {
        // A saturated machine hands a group a fractional fair share;
        // sub-1 values are clamped to the uniprocessor case.
        let p = model_policy();
        let group: Vec<String> = vec!["q6".into(); 8];
        assert!(p.admit(&group, "q6", 0.5));
        assert!(p.admit(&group, "q6", 1.3));
    }

    #[test]
    fn hysteresis_blocks_borderline() {
        let mut models = HashMap::new();
        models.insert("q6".to_string(), q6_info());
        let strict = Policy::ModelGuided {
            models,
            hysteresis: 10.0,
        };
        assert!(!strict.admit(&["q6".into()], "q6", 1.0));
    }
}
