//! Sharing policies: always, never, and model-guided (paper Section 8).

use cordoba_core::sharing::{GroupMember, SharingEvaluator};
use cordoba_core::{NodeId, PlanSpec};
use std::collections::HashMap;

/// One (prospective) member of a subsumption-sharing group as the
/// admission decision sees it: its profiled name plus the estimated
/// fraction of the group's *wide* pivot output it needs.
#[derive(Debug, Clone, Copy)]
pub struct OverlapInfo<'a> {
    /// Query name, the key into the profiled models.
    pub name: &'a str,
    /// Coverage `c_m ∈ (0, 1]` of the wide pivot's output
    /// (see [`cordoba_exec::subsume::coverage_estimate`]).
    pub coverage: f64,
}

/// Ratio of a member's wide-output `s` charged as its residual-filter
/// cost when its coverage is below one. Residual filters are vectorized
/// selection-vector passes — a small constant fraction of the delivery
/// cost is a deliberately conservative (pessimistic-for-sharing)
/// estimate.
const RESIDUAL_COST_RATIO: f64 = 0.1;

/// Model parameters for one query type, produced by
/// [`crate::profiling::profile_query`].
#[derive(Debug, Clone)]
pub struct QueryModelInfo {
    /// The query's plan in model form (one node per operator, measured
    /// `p` values; the pivot node carries fitted `(w, s)`).
    pub plan: PlanSpec,
    /// The pivot node inside `plan`.
    pub pivot: NodeId,
}

/// A sharing policy.
#[derive(Debug, Clone, Default)]
pub enum Policy {
    /// Merge whenever an open compatible group exists.
    AlwaysShare,
    /// Never merge; every query executes independently.
    #[default]
    NeverShare,
    /// Merge only when the analytical model predicts the expanded group
    /// outperforms unshared execution (`Z(m+1, n) > 1 + hysteresis`).
    ModelGuided {
        /// Per-query-name model parameters (from profiling).
        models: HashMap<String, QueryModelInfo>,
        /// Extra predicted benefit required before sharing (guards
        /// against borderline flapping under estimation noise).
        hysteresis: f64,
    },
}

impl Policy {
    /// Convenience constructor for the model-guided policy.
    pub fn model_guided(models: HashMap<String, QueryModelInfo>) -> Self {
        Policy::ModelGuided {
            models,
            hysteresis: 0.0,
        }
    }

    /// Whether this policy ever forms groups.
    pub fn may_share(&self) -> bool {
        !matches!(self, Policy::NeverShare)
    }

    /// Decides whether a query named `candidate` should join an open
    /// group currently holding `group_names` queries of the same pivot,
    /// with `effective_contexts` processors effectively available to the
    /// expanded group.
    ///
    /// `AlwaysShare` says yes; `NeverShare` no; `ModelGuided` evaluates
    /// `Z(m+1, n_eff)` for the expanded (possibly heterogeneous) group.
    /// A query with no profiled model is conservatively not shared.
    ///
    /// `effective_contexts` implements the "conditions at runtime" of
    /// paper Section 8: on a loaded machine a group does not have all
    /// `n` contexts to itself — the engine passes the group's fair share
    /// `n · (m + 1) / live_queries`, which makes sharing more attractive
    /// exactly when the machine is saturated (the regime where the
    /// paper shows sharing pays off).
    pub fn admit(&self, group_names: &[String], candidate: &str, effective_contexts: f64) -> bool {
        match self {
            Policy::AlwaysShare => true,
            Policy::NeverShare => false,
            Policy::ModelGuided { models, hysteresis } => {
                let mut members: Vec<(&PlanSpec, NodeId)> = Vec::new();
                for name in group_names.iter().map(String::as_str).chain([candidate]) {
                    match models.get(name) {
                        Some(info) => members.push((&info.plan, info.pivot)),
                        None => return false,
                    }
                }
                match SharingEvaluator::heterogeneous(&members) {
                    // Ties (Z = 1) are accepted: sharing that predicts
                    // neither gain nor loss still removes redundant work
                    // from the system, freeing capacity for *other*
                    // queries the single-group model cannot see.
                    Ok(eval) => {
                        eval.speedup(effective_contexts.max(1.0)) >= 1.0 + hysteresis - 1e-9
                    }
                    Err(_) => false,
                }
            }
        }
    }

    /// Decides whether `candidate` should join a subsumption-sharing
    /// group whose wide pivot it would only partially consume.
    ///
    /// Exact overlap (all coverages 1) delegates to [`Policy::admit`],
    /// so byte-identical groups behave precisely as before. Partial
    /// overlap prices the group with the extended `Z(m, n)` model: each
    /// member's delivery cost is scaled up to the wide output
    /// (`s / c_m`), its unshared baseline keeps only its own `c_m`
    /// fraction, and a residual-filter cost of
    /// [`RESIDUAL_COST_RATIO`]` · s/c_m` is charged to the shared side.
    pub fn admit_overlap(
        &self,
        group: &[OverlapInfo<'_>],
        candidate: OverlapInfo<'_>,
        effective_contexts: f64,
    ) -> bool {
        match self {
            Policy::AlwaysShare => true,
            Policy::NeverShare => false,
            Policy::ModelGuided { models, hysteresis } => {
                let all: Vec<OverlapInfo<'_>> = group.iter().copied().chain([candidate]).collect();
                if all.iter().all(|i| i.coverage >= 1.0 - 1e-12) {
                    let names: Vec<String> = group.iter().map(|i| i.name.to_string()).collect();
                    return self.admit(&names, candidate.name, effective_contexts);
                }
                let mut infos = Vec::with_capacity(all.len());
                for member in &all {
                    match models.get(member.name) {
                        Some(info) => infos.push((member, info)),
                        None => return false,
                    }
                }
                // The shared sub-plan's parameters (below-pivot work and
                // pivot input work `w`) come from the member closest to
                // the wide pivot — the one with the highest coverage.
                let Some((_, wide_model)) = infos
                    .iter()
                    .max_by(|(a, _), (b, _)| a.coverage.total_cmp(&b.coverage))
                else {
                    return false; // empty group: nothing to admit against
                };
                let Ok(below_ids) = wide_model.plan.below(wide_model.pivot) else {
                    return false;
                };
                let below: Vec<f64> = below_ids
                    .into_iter()
                    .map(|id| wide_model.plan.op(id).p())
                    .collect();
                let pivot_work = wide_model.plan.op(wide_model.pivot).w();
                let mut members = Vec::with_capacity(infos.len());
                for (overlap, model) in &infos {
                    let c = overlap
                        .coverage
                        .clamp(cordoba_exec::subsume::MIN_COVERAGE, 1.0);
                    // The profiled `s` was measured on the member's own
                    // (narrow) pivot output; per unit of the *wide*
                    // pivot's progress the member receives 1/c as much.
                    let s_wide = model.plan.op(model.pivot).s_per_consumer() / c;
                    let residual = if c < 1.0 - 1e-12 {
                        RESIDUAL_COST_RATIO * s_wide
                    } else {
                        0.0
                    };
                    let Ok(above_ids) = model.plan.above(model.pivot) else {
                        return false;
                    };
                    let above = above_ids
                        .into_iter()
                        .map(|id| model.plan.op(id).p())
                        .collect();
                    members.push(GroupMember::new(s_wide, above).with_partial_overlap(c, residual));
                }
                match SharingEvaluator::from_parts(below, pivot_work, members) {
                    Ok(eval) => {
                        eval.speedup(effective_contexts.max(1.0)) >= 1.0 + hysteresis - 1e-9
                    }
                    Err(_) => false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_core::OperatorSpec;

    /// Q6-like model: scan (w=9.66, s=10.34) -> agg (p=0.97).
    fn q6_info() -> QueryModelInfo {
        let mut b = PlanSpec::new();
        let scan = b.add_leaf(OperatorSpec::new("scan", vec![9.66], vec![10.34]));
        let agg = b.add_node(OperatorSpec::new("agg", vec![0.97], vec![]), vec![scan]);
        QueryModelInfo {
            plan: b.finish(agg).unwrap(),
            pivot: scan,
        }
    }

    /// Join-heavy model: big scans below a cheap-output pivot.
    fn join_info() -> QueryModelInfo {
        let mut b = PlanSpec::new();
        let s1 = b.add_leaf(OperatorSpec::new("scan1", vec![12.0], vec![1.0]));
        let s2 = b.add_leaf(OperatorSpec::new("scan2", vec![30.0], vec![1.0]));
        let join = b.add_node(
            OperatorSpec::new("join", vec![2.0, 1.0], vec![0.05]),
            vec![s1, s2],
        );
        let agg = b.add_node(OperatorSpec::new("agg", vec![0.5], vec![]), vec![join]);
        QueryModelInfo {
            plan: b.finish(agg).unwrap(),
            pivot: join,
        }
    }

    fn model_policy() -> Policy {
        let mut models = HashMap::new();
        models.insert("q6".to_string(), q6_info());
        models.insert("q4".to_string(), join_info());
        Policy::model_guided(models)
    }

    #[test]
    fn static_policies() {
        assert!(Policy::AlwaysShare.admit(&["q6".into()], "q6", 32.0));
        assert!(!Policy::NeverShare.admit(&["q6".into()], "q6", 1.0));
        assert!(Policy::AlwaysShare.may_share());
        assert!(!Policy::NeverShare.may_share());
    }

    #[test]
    fn model_guided_distinguishes_scan_heavy_by_contexts() {
        let p = model_policy();
        let group: Vec<String> = vec!["q6".into(); 8];
        // Scan-heavy: share on a uniprocessor, not on 32 contexts.
        assert!(p.admit(&group, "q6", 1.0));
        assert!(!p.admit(&group, "q6", 32.0));
    }

    #[test]
    fn model_guided_always_shares_join_heavy_under_load() {
        let p = model_policy();
        let group: Vec<String> = vec!["q4".into(); 8];
        for contexts in [1.0, 2.0, 8.0] {
            assert!(p.admit(&group, "q4", contexts), "contexts={contexts}");
        }
    }

    #[test]
    fn unprofiled_queries_never_shared() {
        let p = model_policy();
        assert!(!p.admit(&["q6".into()], "mystery", 1.0));
        assert!(!p.admit(&["mystery".into()], "q6", 1.0));
    }

    #[test]
    fn fractional_effective_contexts_supported() {
        // A saturated machine hands a group a fractional fair share;
        // sub-1 values are clamped to the uniprocessor case.
        let p = model_policy();
        let group: Vec<String> = vec!["q6".into(); 8];
        assert!(p.admit(&group, "q6", 0.5));
        assert!(p.admit(&group, "q6", 1.3));
    }

    #[test]
    fn hysteresis_blocks_borderline() {
        let mut models = HashMap::new();
        models.insert("q6".to_string(), q6_info());
        let strict = Policy::ModelGuided {
            models,
            hysteresis: 10.0,
        };
        assert!(!strict.admit(&["q6".into()], "q6", 1.0));
    }

    fn overlap(name: &str, coverage: f64) -> OverlapInfo<'_> {
        OverlapInfo { name, coverage }
    }

    #[test]
    fn full_coverage_overlap_matches_plain_admit() {
        let p = model_policy();
        let group: Vec<String> = vec!["q6".into(); 8];
        let ogroup: Vec<OverlapInfo<'_>> = group.iter().map(|n| overlap(n, 1.0)).collect();
        for n_eff in [1.0, 4.0, 32.0] {
            assert_eq!(
                p.admit(&group, "q6", n_eff),
                p.admit_overlap(&ogroup, overlap("q6", 1.0), n_eff),
                "n_eff={n_eff}"
            );
        }
    }

    #[test]
    fn static_policies_ignore_coverage() {
        assert!(Policy::AlwaysShare.admit_overlap(&[overlap("q6", 0.3)], overlap("q6", 0.2), 1.0));
        assert!(!Policy::NeverShare.admit_overlap(&[overlap("q6", 1.0)], overlap("q6", 1.0), 1.0));
    }

    #[test]
    fn thin_coverage_blocks_scan_heavy_sharing() {
        // Scan-heavy sharing wins at n=1 with full coverage, but a group
        // of consumers who each need a sliver of the wide output gains
        // little from eliminating redundant scans (their private scans
        // would emit little) while still paying wide delivery+residual.
        let p = model_policy();
        let wide: Vec<OverlapInfo<'_>> = (0..8).map(|_| overlap("q6", 1.0)).collect();
        assert!(p.admit_overlap(&wide, overlap("q6", 1.0), 1.0));
        let thin: Vec<OverlapInfo<'_>> = (0..8).map(|_| overlap("q6", 0.02)).collect();
        assert!(!p.admit_overlap(&thin, overlap("q6", 0.02), 1.0));
    }

    #[test]
    fn moderate_coverage_still_shares_when_saturated() {
        // 70% overlap on a saturated uniprocessor: redundant-work
        // elimination still dominates the residual tax.
        let p = model_policy();
        let group: Vec<OverlapInfo<'_>> = (0..8).map(|_| overlap("q6", 0.7)).collect();
        assert!(p.admit_overlap(&group, overlap("q6", 0.7), 1.0));
        // The same group on a big machine should not share — the
        // pipeline argument is unchanged by coverage.
        assert!(!p.admit_overlap(&group, overlap("q6", 0.7), 32.0));
    }

    #[test]
    fn unprofiled_partial_members_never_shared() {
        let p = model_policy();
        assert!(!p.admit_overlap(&[overlap("q6", 0.5)], overlap("mystery", 0.5), 1.0));
    }
}
