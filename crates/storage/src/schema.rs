//! Schemas: ordered, named, fixed-width fields with precomputed byte
//! offsets for page layout.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Storage type of one field. All types are fixed-width so a page holds
/// `floor(page_size / row_width)` rows with O(1) random access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (8 bytes).
    Int,
    /// 64-bit IEEE float (8 bytes).
    Float,
    /// Calendar date, days since epoch (4 bytes).
    Date,
    /// Space-padded string of exactly `N` bytes.
    Str(usize),
}

impl DataType {
    /// Width of the field in bytes.
    pub fn width(self) -> usize {
        match self {
            DataType::Int | DataType::Float => 8,
            DataType::Date => 4,
            DataType::Str(n) => n,
        }
    }
}

/// One named field in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (TPC-H style, e.g. `l_shipdate`).
    pub name: String,
    /// Storage type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered set of fields with precomputed offsets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
    offsets: Vec<usize>,
    row_width: usize,
}

impl Schema {
    /// Builds a schema from fields, computing the packed row layout.
    ///
    /// # Panics
    ///
    /// Panics on duplicate field names or an empty field list.
    pub fn new(fields: Vec<Field>) -> Arc<Self> {
        assert!(!fields.is_empty(), "schema needs at least one field");
        let mut offsets = Vec::with_capacity(fields.len());
        let mut off = 0;
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate field name '{}'",
                f.name
            );
            offsets.push(off);
            off += f.dtype.width();
        }
        Arc::new(Self {
            fields,
            offsets,
            row_width: off,
        })
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Bytes per row.
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Byte offset of field `idx` within a row.
    pub fn offset(&self, idx: usize) -> usize {
        self.offsets[idx]
    }

    /// Index of the field named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the field does not exist — schema/field mismatches are
    /// programming errors in plan construction, caught in tests.
    pub fn index_of(&self, name: &str) -> usize {
        self.try_index_of(name)
            // lint: allow(documented '# Panics' wrapper; try_index_of is the fallible twin)
            .unwrap_or_else(|| panic!("no field '{name}' in schema {:?}", self.field_names()))
    }

    /// Index of the field named `name`, or `None`.
    pub fn try_index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field names, for diagnostics.
    pub fn field_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Arc<Schema> {
        Schema::new(vec![
            Field::new("key", DataType::Int),
            Field::new("price", DataType::Float),
            Field::new("ship", DataType::Date),
            Field::new("mode", DataType::Str(10)),
        ])
    }

    #[test]
    fn offsets_and_width() {
        let s = sample();
        assert_eq!(s.row_width(), 8 + 8 + 4 + 10);
        assert_eq!(s.offset(0), 0);
        assert_eq!(s.offset(1), 8);
        assert_eq!(s.offset(2), 16);
        assert_eq!(s.offset(3), 20);
    }

    #[test]
    fn index_lookup() {
        let s = sample();
        assert_eq!(s.index_of("ship"), 2);
        assert_eq!(s.try_index_of("nope"), None);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "no field 'missing'")]
    fn missing_field_panics() {
        sample().index_of("missing");
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Float),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn empty_schema_rejected() {
        Schema::new(vec![]);
    }

    #[test]
    fn datatype_widths() {
        assert_eq!(DataType::Int.width(), 8);
        assert_eq!(DataType::Float.width(), 8);
        assert_eq!(DataType::Date.width(), 4);
        assert_eq!(DataType::Str(44).width(), 44);
    }
}
