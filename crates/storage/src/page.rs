//! Fixed-width row pages (default 4 KiB), the unit of data flow in the
//! engine: operators consume and produce whole pages, which the paper's
//! Section 3.2 credits with better instruction/data locality and lower
//! producer-consumer synchronization cost.

use crate::schema::{DataType, Schema};
use crate::value::Value;
use crate::Date;
use std::sync::Arc;

/// Default page size in bytes, as in the paper ("typical size of 4K").
pub const PAGE_SIZE: usize = 4096;

/// An immutable page of fixed-width rows.
#[derive(Debug, Clone)]
pub struct Page {
    schema: Arc<Schema>,
    data: Box<[u8]>,
    rows: usize,
}

impl Page {
    /// Reconstructs a page from a raw payload of exactly
    /// `rows * row_width` bytes — the path back from a spill file.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `rows * row_width` bytes.
    pub fn from_payload(schema: Arc<Schema>, data: Box<[u8]>, rows: usize) -> Arc<Page> {
        assert_eq!(
            data.len(),
            rows * schema.row_width(),
            "payload length must equal rows * row_width"
        );
        Arc::new(Page { schema, data, rows })
    }

    /// The page's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows stored.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the page holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// A cursor over row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn tuple(&self, row: usize) -> TupleRef<'_> {
        assert!(
            row < self.rows,
            "row {row} out of range ({} rows)",
            self.rows
        );
        self.tuple_unchecked(row)
    }

    /// Internal unchecked cursor: `row` is trusted to be in range (all
    /// bases `0..rows` are valid by construction, so iteration skips
    /// the public API's per-row assert).
    #[inline]
    fn tuple_unchecked(&self, row: usize) -> TupleRef<'_> {
        TupleRef {
            page: self,
            base: row * self.schema.row_width(),
        }
    }

    /// Iterates over all tuples in the page (one range check for the
    /// whole page, not one assert per row).
    pub fn tuples(&self) -> impl Iterator<Item = TupleRef<'_>> {
        (0..self.rows).map(move |r| self.tuple_unchecked(r))
    }

    /// Payload bytes in use (diagnostics / memory accounting).
    pub fn byte_len(&self) -> usize {
        self.rows * self.schema.row_width()
    }

    /// The page's full payload: `rows * row_width` contiguous bytes.
    /// Bulk consumers (the hash-join arena) copy this in one shot
    /// instead of row by row.
    pub fn payload(&self) -> &[u8] {
        &self.data[..self.rows * self.schema.row_width()]
    }

    /// Iterates over raw row byte slices (each exactly `row_width`
    /// long) — the allocation-free way to walk encoded rows.
    pub fn raw_rows(&self) -> impl Iterator<Item = &[u8]> {
        self.payload().chunks_exact(self.schema.row_width())
    }

    /// Gathers an `Int` column into `out` (cleared first). One schema
    /// lookup and one bounds proof per page; the per-row loads are
    /// unchecked.
    ///
    /// # Panics
    ///
    /// Panics if field `col` is not `Int`.
    pub fn gather_i64(&self, col: usize, out: &mut Vec<i64>) {
        let (off, w) = self.gather_bounds(col, DataType::Int);
        out.clear();
        out.reserve(self.rows);
        // Per-page bounds proof for the unchecked reads: `gather_bounds`
        // asserted off + 8 <= w (the Int field ends inside its row) and
        // rows * w <= data.len() (every row lies inside the payload),
        // so for each r < rows the 8-byte read spans r*w + off ..
        // r*w + off + 8 ≤ (r+1)*w ≤ rows*w ≤ data.len().
        for r in 0..self.rows {
            debug_assert!(
                r * w + off + 8 <= self.data.len(),
                "gather_i64 row out of bounds"
            );
            // SAFETY: in bounds by the proof above (re-checked per row
            // by the debug_assert! in debug/Miri builds); read_unaligned
            // has no alignment requirement and i64 has no invalid bits.
            let v = unsafe {
                std::ptr::read_unaligned(self.data.as_ptr().add(r * w + off).cast::<i64>())
            };
            out.push(i64::from_le(v));
        }
    }

    /// Gathers a `Float` column into `out` (cleared first); see
    /// [`Page::gather_i64`].
    ///
    /// # Panics
    ///
    /// Panics if field `col` is not `Float`.
    pub fn gather_f64(&self, col: usize, out: &mut Vec<f64>) {
        let (off, w) = self.gather_bounds(col, DataType::Float);
        out.clear();
        out.reserve(self.rows);
        // Per-page bounds proof as in `gather_i64`: off + 8 <= w and
        // rows * w <= data.len() (both asserted by `gather_bounds`), so
        // r*w + off + 8 ≤ (r+1)*w ≤ rows*w ≤ data.len() for r < rows.
        for r in 0..self.rows {
            debug_assert!(
                r * w + off + 8 <= self.data.len(),
                "gather_f64 row out of bounds"
            );
            // SAFETY: in bounds by the proof above (re-checked per row
            // by the debug_assert!); read_unaligned has no alignment
            // requirement and u64 has no invalid bit patterns.
            let v = unsafe {
                std::ptr::read_unaligned(self.data.as_ptr().add(r * w + off).cast::<u64>())
            };
            out.push(f64::from_bits(u64::from_le(v)));
        }
    }

    /// Gathers a `Date` column (day numbers) into `out` (cleared
    /// first); see [`Page::gather_i64`].
    ///
    /// # Panics
    ///
    /// Panics if field `col` is not `Date`.
    pub fn gather_date(&self, col: usize, out: &mut Vec<i32>) {
        let (off, w) = self.gather_bounds(col, DataType::Date);
        out.clear();
        out.reserve(self.rows);
        // Per-page bounds proof as in `gather_i64`, with Date's 4-byte
        // width: off + 4 <= w and rows * w <= data.len() (asserted by
        // `gather_bounds`), so r*w + off + 4 ≤ (r+1)*w ≤ data.len().
        for r in 0..self.rows {
            debug_assert!(
                r * w + off + 4 <= self.data.len(),
                "gather_date row out of bounds"
            );
            // SAFETY: in bounds by the proof above (re-checked per row
            // by the debug_assert!); read_unaligned has no alignment
            // requirement and i32 has no invalid bit patterns.
            let v = unsafe {
                std::ptr::read_unaligned(self.data.as_ptr().add(r * w + off).cast::<i32>())
            };
            out.push(i32::from_le(v));
        }
    }

    /// Validates the invariant the unchecked gather loops rely on and
    /// returns `(field offset, row width)`.
    fn gather_bounds(&self, col: usize, want: DataType) -> (usize, usize) {
        let dtype = self.schema.fields()[col].dtype;
        assert_eq!(dtype, want, "gather type mismatch on field {col}");
        let w = self.schema.row_width();
        let off = self.schema.offset(col);
        // Proves every unchecked read below stays in bounds: field ends
        // within the row, and all rows lie within the payload.
        assert!(off + dtype.width() <= w && self.rows * w <= self.data.len());
        (off, w)
    }

    /// Copies the rows selected by `sel` (ascending row indices) into a
    /// layout-compatible builder, stopping when the builder fills.
    /// Returns how many selected rows were copied; consecutive indices
    /// coalesce into single bulk copies.
    ///
    /// # Panics
    ///
    /// Panics if a selected index is out of range.
    pub fn copy_rows_into(&self, sel: &[u32], builder: &mut PageBuilder) -> usize {
        debug_assert_eq!(
            self.schema.row_width(),
            builder.schema.row_width(),
            "copy_rows_into requires layout-compatible schemas"
        );
        let w = self.schema.row_width();
        let payload = self.payload();
        let fit = builder.remaining().min(sel.len());
        let mut taken = 0;
        while taken < fit {
            let start = sel[taken] as usize;
            let mut len = 1;
            while taken + len < fit && sel[taken + len] as usize == start + len {
                len += 1;
            }
            builder
                .data
                .extend_from_slice(&payload[start * w..(start + len) * w]);
            taken += len;
        }
        builder.rows += taken;
        taken
    }
}

/// Borrowed view of one row, with typed O(1) field accessors.
#[derive(Debug, Clone, Copy)]
pub struct TupleRef<'a> {
    page: &'a Page,
    base: usize,
}

impl<'a> TupleRef<'a> {
    /// Schema of the underlying page.
    #[inline]
    pub fn schema(&self) -> &'a Arc<Schema> {
        &self.page.schema
    }

    #[inline]
    fn field_slice(&self, idx: usize) -> &'a [u8] {
        let schema = &self.page.schema;
        let off = self.base + schema.offset(idx);
        &self.page.data[off..off + schema.fields()[idx].dtype.width()]
    }

    /// Reads an `Int` field.
    #[inline]
    pub fn get_int(&self, idx: usize) -> i64 {
        debug_assert_eq!(self.page.schema.fields()[idx].dtype, DataType::Int);
        // lint: allow(field_slice returns exactly the schema width for this field)
        i64::from_le_bytes(self.field_slice(idx).try_into().expect("8 bytes"))
    }

    /// Reads a `Float` field.
    #[inline]
    pub fn get_float(&self, idx: usize) -> f64 {
        debug_assert_eq!(self.page.schema.fields()[idx].dtype, DataType::Float);
        // lint: allow(field_slice returns exactly the schema width for this field)
        f64::from_le_bytes(self.field_slice(idx).try_into().expect("8 bytes"))
    }

    /// Reads a `Date` field.
    #[inline]
    pub fn get_date(&self, idx: usize) -> Date {
        debug_assert_eq!(self.page.schema.fields()[idx].dtype, DataType::Date);
        Date(i32::from_le_bytes(
            // lint: allow(field_slice returns exactly the schema width for this field)
            self.field_slice(idx).try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `Str` field, trimming the space padding.
    #[inline]
    pub fn get_str(&self, idx: usize) -> &'a str {
        let raw = self.field_slice(idx);
        // lint: allow(append_row asserts ASCII at write time, so pages never hold non-UTF-8)
        let s = std::str::from_utf8(raw).expect("pages store only ASCII strings");
        s.trim_end_matches(' ')
    }

    /// Reads any field as a dynamically-typed [`Value`].
    pub fn get_value(&self, idx: usize) -> Value {
        match self.page.schema.fields()[idx].dtype {
            DataType::Int => Value::Int(self.get_int(idx)),
            DataType::Float => Value::Float(self.get_float(idx)),
            DataType::Date => Value::Date(self.get_date(idx)),
            DataType::Str(_) => Value::Str(self.get_str(idx).to_string()),
        }
    }

    /// Materializes the whole row (tests / result collection).
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.page.schema.len())
            .map(|i| self.get_value(i))
            .collect()
    }

    /// This row's raw encoded bytes (exactly `row_width` long). Rows of
    /// layout-compatible schemas can be concatenated byte-wise, which is
    /// how joins assemble output rows without per-field decoding.
    #[inline]
    pub fn raw(&self) -> &'a [u8] {
        &self.page.data[self.base..self.base + self.page.schema.row_width()]
    }

    /// Copies this row's raw bytes into a builder with the same schema.
    /// Cheap row forwarding for filters and fan-out operators.
    pub fn copy_into(&self, builder: &mut PageBuilder) -> bool {
        debug_assert_eq!(
            self.page.schema().row_width(),
            builder.schema.row_width(),
            "copy_into requires layout-compatible schemas"
        );
        let width = self.page.schema.row_width();
        builder.push_raw(&self.page.data[self.base..self.base + width])
    }
}

/// Mutable page under construction.
#[derive(Debug)]
pub struct PageBuilder {
    schema: Arc<Schema>,
    data: Vec<u8>,
    rows: usize,
    capacity_rows: usize,
}

impl PageBuilder {
    /// Creates a builder for a page of the default [`PAGE_SIZE`].
    pub fn new(schema: Arc<Schema>) -> Self {
        Self::with_page_size(schema, PAGE_SIZE)
    }

    /// Creates a builder for a custom page size (the page-size ablation
    /// bench uses 1 KiB – 64 KiB).
    ///
    /// # Panics
    ///
    /// Panics if even one row does not fit.
    pub fn with_page_size(schema: Arc<Schema>, page_size: usize) -> Self {
        let capacity_rows = page_size / schema.row_width();
        assert!(
            capacity_rows > 0,
            "row width {} exceeds page size {page_size}",
            schema.row_width()
        );
        Self {
            data: Vec::with_capacity(capacity_rows * schema.row_width()),
            schema,
            rows: 0,
            capacity_rows,
        }
    }

    /// Rows that still fit.
    pub fn remaining(&self) -> usize {
        self.capacity_rows - self.rows
    }

    /// Whether the page is at capacity.
    pub fn is_full(&self) -> bool {
        self.rows == self.capacity_rows
    }

    /// Rows currently buffered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Maximum rows per page for this schema/page size.
    pub fn capacity(&self) -> usize {
        self.capacity_rows
    }

    /// Appends a row of values. Returns `false` (without writing) if the
    /// page is full.
    ///
    /// # Panics
    ///
    /// Panics if the values do not match the schema (arity or types) or
    /// a string exceeds its field width.
    pub fn push_row(&mut self, values: &[Value]) -> bool {
        assert_eq!(values.len(), self.schema.len(), "arity mismatch");
        if self.is_full() {
            return false;
        }
        for (i, v) in values.iter().enumerate() {
            let dtype = self.schema.fields()[i].dtype;
            match (dtype, v) {
                (DataType::Int, Value::Int(x)) => self.data.extend_from_slice(&x.to_le_bytes()),
                (DataType::Float, Value::Float(x)) => self.data.extend_from_slice(&x.to_le_bytes()),
                (DataType::Date, Value::Date(d)) => self.data.extend_from_slice(&d.0.to_le_bytes()),
                (DataType::Str(n), Value::Str(s)) => {
                    assert!(
                        s.len() <= n && s.is_ascii(),
                        "string '{s}' does not fit ASCII field of width {n}"
                    );
                    self.data.extend_from_slice(s.as_bytes());
                    self.data.extend(std::iter::repeat_n(b' ', n - s.len()));
                }
                // lint: allow(documented append_row contract: values must match the schema)
                (dt, v) => panic!(
                    "type mismatch at field {i} ('{}'): schema {dt:?}, value {v:?}",
                    self.schema.fields()[i].name
                ),
            }
        }
        self.rows += 1;
        true
    }

    /// Appends a pre-encoded row. Returns `false` if full.
    pub fn push_raw(&mut self, row: &[u8]) -> bool {
        debug_assert_eq!(row.len(), self.schema.row_width());
        if self.is_full() {
            return false;
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        true
    }

    /// Appends a row assembled from two byte fragments (joins emit
    /// `probe ++ build` without an intermediate scratch buffer; either
    /// fragment may be empty). Returns `false` if full.
    pub fn push_raw_parts(&mut self, head: &[u8], tail: &[u8]) -> bool {
        debug_assert_eq!(head.len() + tail.len(), self.schema.row_width());
        if self.is_full() {
            return false;
        }
        self.data.extend_from_slice(head);
        self.data.extend_from_slice(tail);
        self.rows += 1;
        true
    }

    /// Freezes the builder into an immutable, shareable page.
    pub fn finish(self) -> Arc<Page> {
        Arc::new(Page {
            schema: self.schema,
            data: self.data.into_boxed_slice(),
            rows: self.rows,
        })
    }

    /// Freezes and resets, keeping the builder usable — the streaming
    /// operators' workhorse.
    pub fn finish_and_reset(&mut self) -> Arc<Page> {
        let data = std::mem::take(&mut self.data).into_boxed_slice();
        let page = Arc::new(Page {
            schema: self.schema.clone(),
            data,
            rows: self.rows,
        });
        self.rows = 0;
        self.data = Vec::with_capacity(self.capacity_rows * self.schema.row_width());
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("p", DataType::Float),
            Field::new("d", DataType::Date),
            Field::new("s", DataType::Str(6)),
        ])
    }

    #[test]
    fn write_read_round_trip() {
        let mut b = PageBuilder::new(schema());
        assert!(b.push_row(&[
            Value::Int(42),
            Value::Float(1.25),
            Value::Date(Date::from_ymd(1994, 1, 1)),
            Value::Str("RAIL".into()),
        ]));
        let page = b.finish();
        assert_eq!(page.rows(), 1);
        let t = page.tuple(0);
        assert_eq!(t.get_int(0), 42);
        assert_eq!(t.get_float(1), 1.25);
        assert_eq!(t.get_date(2), Date::from_ymd(1994, 1, 1));
        assert_eq!(t.get_str(3), "RAIL");
    }

    #[test]
    fn capacity_matches_page_size() {
        let s = schema(); // row width = 8+8+4+6 = 26
        let b = PageBuilder::new(s.clone());
        assert_eq!(b.capacity(), PAGE_SIZE / 26);
        let small = PageBuilder::with_page_size(s, 52);
        assert_eq!(small.capacity(), 2);
    }

    #[test]
    fn full_page_rejects_rows() {
        let mut b = PageBuilder::with_page_size(schema(), 26);
        let row = [
            Value::Int(1),
            Value::Float(0.0),
            Value::Date(Date(0)),
            Value::Str("".into()),
        ];
        assert!(b.push_row(&row));
        assert!(b.is_full());
        assert!(!b.push_row(&row));
        assert_eq!(b.finish().rows(), 1);
    }

    #[test]
    fn finish_and_reset_streams_pages() {
        let mut b = PageBuilder::with_page_size(schema(), 52);
        let row = [
            Value::Int(9),
            Value::Float(1.0),
            Value::Date(Date(100)),
            Value::Str("AIR".into()),
        ];
        b.push_row(&row);
        b.push_row(&row);
        let p1 = b.finish_and_reset();
        assert_eq!(p1.rows(), 2);
        assert!(b.is_empty());
        b.push_row(&row);
        let p2 = b.finish_and_reset();
        assert_eq!(p2.rows(), 1);
        assert_eq!(p2.tuple(0).get_str(3), "AIR");
    }

    #[test]
    fn copy_into_preserves_bytes() {
        let mut b = PageBuilder::new(schema());
        b.push_row(&[
            Value::Int(7),
            Value::Float(3.5),
            Value::Date(Date(8035)),
            Value::Str("TRUCK".into()),
        ]);
        let page = b.finish();
        let mut b2 = PageBuilder::new(page.schema().clone());
        assert!(page.tuple(0).copy_into(&mut b2));
        let copy = b2.finish();
        assert_eq!(copy.tuple(0).to_values(), page.tuple(0).to_values());
    }

    #[test]
    fn get_value_and_to_values() {
        let mut b = PageBuilder::new(schema());
        b.push_row(&[
            Value::Int(1),
            Value::Float(2.0),
            Value::Date(Date(3)),
            Value::Str("x".into()),
        ]);
        let page = b.finish();
        let vals = page.tuple(0).to_values();
        assert_eq!(
            vals,
            vec![
                Value::Int(1),
                Value::Float(2.0),
                Value::Date(Date(3)),
                Value::Str("x".into())
            ]
        );
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mut b = PageBuilder::new(schema());
        b.push_row(&[
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Date(Date(3)),
            Value::Str("x".into()),
        ]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_string_panics() {
        let mut b = PageBuilder::new(schema());
        b.push_row(&[
            Value::Int(1),
            Value::Float(2.0),
            Value::Date(Date(3)),
            Value::Str("toolongstring".into()),
        ]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tuple_out_of_range_panics() {
        let b = PageBuilder::new(schema());
        let page = b.finish();
        let _ = page.tuple(0);
    }

    #[test]
    fn gather_columns_match_tuple_accessors() {
        let mut b = PageBuilder::new(schema());
        for i in 0..37 {
            b.push_row(&[
                Value::Int(i * 7 - 100),
                Value::Float(i as f64 * 0.5 - 3.0),
                Value::Date(Date(i as i32 * 11 - 50)),
                Value::Str("x".into()),
            ]);
        }
        let page = b.finish();
        let (mut ints, mut floats, mut dates) = (Vec::new(), Vec::new(), Vec::new());
        page.gather_i64(0, &mut ints);
        page.gather_f64(1, &mut floats);
        page.gather_date(2, &mut dates);
        assert_eq!(ints.len(), 37);
        for (r, t) in page.tuples().enumerate() {
            assert_eq!(ints[r], t.get_int(0));
            assert_eq!(floats[r], t.get_float(1));
            assert_eq!(dates[r], t.get_date(2).0);
        }
        // Gather clears previous contents.
        page.gather_i64(0, &mut ints);
        assert_eq!(ints.len(), 37);
    }

    #[test]
    #[should_panic(expected = "gather type mismatch")]
    fn gather_wrong_type_panics() {
        let mut b = PageBuilder::new(schema());
        b.push_row(&[
            Value::Int(1),
            Value::Float(2.0),
            Value::Date(Date(3)),
            Value::Str("x".into()),
        ]);
        let page = b.finish();
        let mut out = Vec::new();
        page.gather_i64(1, &mut out);
    }

    #[test]
    fn copy_rows_into_selects_and_respects_capacity() {
        let mut b = PageBuilder::new(schema());
        for i in 0..10 {
            b.push_row(&[
                Value::Int(i),
                Value::Float(0.0),
                Value::Date(Date(0)),
                Value::Str("".into()),
            ]);
        }
        let page = b.finish();
        // Mixed runs: consecutive [1,2,3] coalesce, then isolated 7, 9.
        let sel = [1u32, 2, 3, 7, 9];
        let mut out = PageBuilder::new(page.schema().clone());
        assert_eq!(page.copy_rows_into(&sel, &mut out), 5);
        let got: Vec<i64> = out.finish().tuples().map(|t| t.get_int(0)).collect();
        assert_eq!(got, vec![1, 2, 3, 7, 9]);
        // A builder with room for 2 rows takes only the first 2.
        let mut small = PageBuilder::with_page_size(page.schema().clone(), 52);
        assert_eq!(page.copy_rows_into(&sel, &mut small), 2);
        let got: Vec<i64> = small.finish().tuples().map(|t| t.get_int(0)).collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn payload_and_raw_rows_cover_page() {
        let mut b = PageBuilder::new(schema());
        for i in 0..4 {
            b.push_row(&[
                Value::Int(i),
                Value::Float(0.0),
                Value::Date(Date(0)),
                Value::Str("".into()),
            ]);
        }
        let page = b.finish();
        assert_eq!(page.payload().len(), 4 * 26);
        let rows: Vec<&[u8]> = page.raw_rows().collect();
        assert_eq!(rows.len(), 4);
        for (r, raw) in rows.iter().enumerate() {
            assert_eq!(*raw, page.tuple(r).raw());
        }
    }

    #[test]
    fn tuples_iterator_counts() {
        let mut b = PageBuilder::new(schema());
        for i in 0..5 {
            b.push_row(&[
                Value::Int(i),
                Value::Float(0.0),
                Value::Date(Date(0)),
                Value::Str("".into()),
            ]);
        }
        let page = b.finish();
        let keys: Vec<i64> = page.tuples().map(|t| t.get_int(0)).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
        assert_eq!(page.byte_len(), 5 * 26);
    }
}
