//! Compact calendar dates: days since 1970-01-01 (civil), stored as
//! `i32`. Implements the standard Howard-Hinnant civil-date algorithms
//! so TPC-H date predicates (`l_shipdate >= date '1994-01-01'`) are
//! exact.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A calendar date, stored as days since the Unix epoch.
///
/// Ordering and arithmetic on the raw day count make range predicates a
/// single integer comparison — the representation the engine's scans
/// operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date(pub i32);

impl Date {
    /// Builds a date from a civil year/month/day.
    ///
    /// # Panics
    ///
    /// Panics if the month or day is out of range.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!((1..=31).contains(&day), "day out of range: {day}");
        // Howard Hinnant's days_from_civil.
        let y = i64::from(if month <= 2 { year - 1 } else { year });
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = month as i64;
        let d = day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Date((era * 146_097 + doe - 719_468) as i32)
    }

    /// Decomposes back into (year, month, day) — `civil_from_days`.
    pub fn ymd(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
        ((y + i64::from(m <= 2)) as i32, m, d)
    }

    /// The date `days` days later (negative moves backward).
    #[must_use]
    pub fn plus_days(self, days: i32) -> Self {
        Date(self.0 + days)
    }

    /// Signed distance in days (`self - other`).
    pub fn days_since(self, other: Date) -> i32 {
        self.0 - other.0
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).0, 0);
    }

    #[test]
    fn known_dates() {
        // TPC-H date range endpoints.
        assert_eq!(Date::from_ymd(1992, 1, 1).0, 8035);
        assert_eq!(Date::from_ymd(1998, 12, 31).0, 10591);
        // Q6 predicate boundary.
        let d94 = Date::from_ymd(1994, 1, 1);
        let d95 = Date::from_ymd(1995, 1, 1);
        assert_eq!(d95.days_since(d94), 365);
    }

    #[test]
    fn round_trip_ymd() {
        for &(y, m, d) in &[
            (1992, 1, 1),
            (1994, 1, 1),
            (1995, 6, 17),
            (1996, 2, 29), // leap day
            (1998, 12, 1),
            (2000, 2, 29),
            (1999, 12, 31),
        ] {
            let date = Date::from_ymd(y, m, d);
            assert_eq!(date.ymd(), (y, m, d), "round trip {y}-{m}-{d}");
        }
    }

    #[test]
    fn every_day_of_1996_round_trips() {
        // 1996 is a leap year: 366 consecutive day numbers.
        let start = Date::from_ymd(1996, 1, 1);
        for off in 0..366 {
            let d = start.plus_days(off);
            let (y, m, dd) = d.ymd();
            assert_eq!(Date::from_ymd(y, m, dd), d);
            assert_eq!(y, 1996);
        }
        assert_eq!(start.plus_days(366).ymd(), (1997, 1, 1));
    }

    #[test]
    fn ordering_follows_calendar() {
        assert!(Date::from_ymd(1993, 7, 1) < Date::from_ymd(1993, 10, 1));
        assert!(Date::from_ymd(1998, 12, 1) > Date::from_ymd(1998, 9, 2));
    }

    #[test]
    fn plus_days_and_days_since_inverse() {
        let base = Date::from_ymd(1993, 7, 1);
        let later = base.plus_days(91);
        assert_eq!(later.days_since(base), 91);
        assert_eq!(later.ymd(), (1993, 9, 30));
    }

    #[test]
    fn q1_predicate_date_arithmetic() {
        // Q1: l_shipdate <= date '1998-12-01' - interval '90' day.
        let cutoff = Date::from_ymd(1998, 12, 1).plus_days(-90);
        assert_eq!(cutoff.ymd(), (1998, 9, 2));
    }

    #[test]
    fn display_is_iso() {
        assert_eq!(Date::from_ymd(1994, 1, 1).to_string(), "1994-01-01");
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn bad_month_panics() {
        Date::from_ymd(1994, 13, 1);
    }
}
