//! Spill files: schema-typed, page-framed on-disk buffers for
//! out-of-core operators (the hybrid hash join's victim partitions and
//! the external sort's runs).
//!
//! A spill file is a sequence of records `[u32 row count][payload]`,
//! each holding at most one page's worth of rows so readback is
//! memory-bounded regardless of how the rows were written. The schema
//! is *not* serialized — it lives with the operator that owns the file
//! — so a spill file is only meaningful to the query that wrote it.
//! Files delete themselves when dropped: a finished query, successful
//! or failed, leaves no residue in the spill directory.

use crate::page::{Page, PAGE_SIZE};
use crate::schema::Schema;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide counter making spill file names unique.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Upper bound on a single record's payload, enforced on read as a
/// corruption guard (writers never exceed one page per record).
const MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// Streams rows into a new spill file. Call [`SpillWriter::finish`] to
/// obtain the readable [`SpillFile`]; a writer dropped unfinished
/// removes its partial file.
#[derive(Debug)]
pub struct SpillWriter {
    file: BufWriter<File>,
    path: PathBuf,
    schema: Arc<Schema>,
    pages: usize,
    rows: u64,
    bytes: u64,
    finished: bool,
}

impl SpillWriter {
    /// Creates a uniquely named spill file in `dir` (created if
    /// missing) for rows of `schema`.
    pub fn create(dir: &Path, schema: Arc<Schema>) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let name = format!(
            "cordoba-spill-{}-{}.bin",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let path = dir.join(name);
        let file = BufWriter::new(File::create(&path)?);
        Ok(Self {
            file,
            path,
            schema,
            pages: 0,
            rows: 0,
            bytes: 0,
            finished: false,
        })
    }

    /// Schema of the spilled rows.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Payload bytes written so far (excluding record headers).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Writes one page as one record. Empty pages are skipped.
    pub fn write_page(&mut self, page: &Page) -> io::Result<()> {
        debug_assert_eq!(page.schema().row_width(), self.schema.row_width());
        self.write_record(page.payload(), page.rows())
    }

    /// Writes `rows` contiguous pre-encoded rows (`rows * row_width`
    /// bytes), chunked into page-sized records — the bulk path for
    /// draining a join build arena.
    pub fn write_raw_rows(&mut self, payload: &[u8], rows: usize) -> io::Result<()> {
        let w = self.schema.row_width();
        debug_assert_eq!(payload.len(), rows * w);
        let rows_per_record = (PAGE_SIZE / w).max(1);
        for chunk in payload.chunks(rows_per_record * w) {
            self.write_record(chunk, chunk.len() / w)?;
        }
        Ok(())
    }

    fn write_record(&mut self, payload: &[u8], rows: usize) -> io::Result<()> {
        if rows == 0 {
            return Ok(());
        }
        self.file.write_all(&(rows as u32).to_le_bytes())?;
        self.file.write_all(payload)?;
        self.pages += 1;
        self.rows += rows as u64;
        self.bytes += payload.len() as u64;
        Ok(())
    }

    /// Flushes and seals the file for reading.
    pub fn finish(mut self) -> io::Result<SpillFile> {
        self.file.flush()?;
        self.finished = true;
        Ok(SpillFile {
            path: self.path.clone(),
            schema: self.schema.clone(),
            pages: self.pages,
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// A sealed spill file. Deletes the underlying file on drop.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    schema: Arc<Schema>,
    pages: usize,
    rows: u64,
    bytes: u64,
}

impl SpillFile {
    /// Schema of the spilled rows.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Total rows in the file.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Total payload bytes — what reloading every row would cost in
    /// memory, the quantity budget decisions are made on.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of page records.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// On-disk location (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Opens the file for sequential page-at-a-time reading. The
    /// reader owns the file, which is deleted when the reader drops.
    pub fn into_reader(self) -> io::Result<SpillReader> {
        let file = BufReader::new(File::open(&self.path)?);
        Ok(SpillReader {
            file,
            source: self,
            read_pages: 0,
        })
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Sequential reader over a spill file's page records.
#[derive(Debug)]
pub struct SpillReader {
    file: BufReader<File>,
    source: SpillFile,
    read_pages: usize,
}

impl SpillReader {
    /// Schema of the pages this reader yields.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.source.schema
    }

    /// Reads the next page, or `None` when every record has been
    /// consumed.
    pub fn next_page(&mut self) -> io::Result<Option<Arc<Page>>> {
        if self.read_pages == self.source.pages {
            return Ok(None);
        }
        let mut header = [0u8; 4];
        self.file.read_exact(&mut header)?;
        let rows = u32::from_le_bytes(header) as usize;
        let len = rows * self.source.schema.row_width();
        if rows == 0 || len > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt spill record: {rows} rows"),
            ));
        }
        let mut data = vec![0u8; len];
        self.file.read_exact(&mut data)?;
        self.read_pages += 1;
        Ok(Some(Page::from_payload(
            self.source.schema.clone(),
            data.into_boxed_slice(),
            rows,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageBuilder;
    use crate::schema::{DataType, Field};
    use crate::value::Value;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
    }

    fn dir() -> PathBuf {
        std::env::temp_dir()
    }

    fn make_page(schema: &Arc<Schema>, base: i64, rows: usize) -> Arc<Page> {
        let mut b = PageBuilder::new(schema.clone());
        for i in 0..rows {
            b.push_row(&[Value::Int(base + i as i64), Value::Float(i as f64 * 0.5)]);
        }
        b.finish()
    }

    #[test]
    fn page_round_trip_preserves_rows() {
        let s = schema();
        let mut w = SpillWriter::create(&dir(), s.clone()).expect("create");
        let pages = [make_page(&s, 0, 100), make_page(&s, 100, 37)];
        for p in &pages {
            w.write_page(p).expect("write");
        }
        assert_eq!(w.rows(), 137);
        let f = w.finish().expect("finish");
        assert_eq!(f.pages(), 2);
        assert_eq!(f.rows(), 137);
        assert_eq!(f.bytes(), 137 * s.row_width() as u64);
        let mut r = f.into_reader().expect("open");
        let mut got = Vec::new();
        while let Some(p) = r.next_page().expect("read") {
            got.extend(p.tuples().map(|t| t.to_values()));
        }
        let want: Vec<_> = pages
            .iter()
            .flat_map(|p| p.tuples().map(|t| t.to_values()).collect::<Vec<_>>())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn raw_rows_chunk_to_page_sized_records() {
        let s = schema();
        // 3 pages' worth of raw rows written in one call.
        let rows = 3 * (PAGE_SIZE / s.row_width());
        let mut payload = Vec::new();
        for i in 0..rows {
            payload.extend_from_slice(&(i as i64).to_le_bytes());
            payload.extend_from_slice(&(i as f64).to_le_bytes());
        }
        let mut w = SpillWriter::create(&dir(), s.clone()).expect("create");
        w.write_raw_rows(&payload, rows).expect("write");
        let f = w.finish().expect("finish");
        assert_eq!(f.pages(), 3, "chunked into page-sized records");
        let mut r = f.into_reader().expect("open");
        let mut n = 0usize;
        while let Some(p) = r.next_page().expect("read") {
            assert!(p.byte_len() <= PAGE_SIZE);
            for t in p.tuples() {
                assert_eq!(t.get_int(0), n as i64);
                n += 1;
            }
        }
        assert_eq!(n, rows);
    }

    #[test]
    fn file_is_deleted_on_drop() {
        let s = schema();
        let mut w = SpillWriter::create(&dir(), s.clone()).expect("create");
        w.write_page(&make_page(&s, 0, 5)).expect("write");
        let f = w.finish().expect("finish");
        let path = f.path().to_path_buf();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists(), "spill file must self-delete");
    }

    #[test]
    fn unfinished_writer_cleans_up() {
        let s = schema();
        let mut w = SpillWriter::create(&dir(), s.clone()).expect("create");
        w.write_page(&make_page(&s, 0, 5)).expect("write");
        let path = w.path.clone();
        assert!(path.exists());
        drop(w);
        assert!(!path.exists(), "abandoned writer must remove its file");
    }

    #[test]
    fn empty_file_yields_no_pages() {
        let s = schema();
        let w = SpillWriter::create(&dir(), s).expect("create");
        let f = w.finish().expect("finish");
        assert_eq!(f.rows(), 0);
        let mut r = f.into_reader().expect("open");
        assert!(r.next_page().expect("read").is_none());
    }

    #[test]
    fn empty_pages_are_skipped() {
        let s = schema();
        let mut w = SpillWriter::create(&dir(), s.clone()).expect("create");
        w.write_page(&PageBuilder::new(s.clone()).finish())
            .expect("empty page");
        w.write_page(&make_page(&s, 7, 1)).expect("real page");
        let f = w.finish().expect("finish");
        assert_eq!(f.pages(), 1);
        assert_eq!(f.rows(), 1);
    }
}
