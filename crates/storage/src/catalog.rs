//! A minimal named-table catalog.

use crate::table::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Named collection of tables; the engine resolves scan operators
/// against it. `BTreeMap` keeps iteration deterministic.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table under its own name, replacing any previous
    /// table with that name.
    pub fn register(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Looks a table up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Looks a table up, panicking with a listing of known tables —
    /// mis-wired plans are programming errors.
    pub fn expect(&self, name: &str) -> &Arc<Table> {
        self.get(name).unwrap_or_else(|| {
            // lint: allow(documented lookup-or-panic helper; get() is the fallible twin)
            panic!(
                "no table '{name}' in catalog (have: {:?})",
                self.tables.keys().collect::<Vec<_>>()
            )
        })
    }

    /// Iterates `(name, table)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Table>)> {
        self.tables.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total bytes across all tables.
    pub fn byte_size(&self) -> usize {
        self.tables.values().map(|t| t.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};
    use crate::table::TableBuilder;
    use crate::value::Value;

    fn tiny(name: &str) -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut b = TableBuilder::new(name, schema);
        b.push_row(&[Value::Int(1)]);
        b.finish()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register(tiny("orders"));
        c.register(tiny("lineitem"));
        assert_eq!(c.len(), 2);
        assert!(c.get("orders").is_some());
        assert!(c.get("nation").is_none());
        assert_eq!(c.expect("lineitem").row_count(), 1);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Catalog::new();
        c.register(tiny("zeta"));
        c.register(tiny("alpha"));
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn reregister_replaces() {
        let mut c = Catalog::new();
        c.register(tiny("t"));
        c.register(tiny("t"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "no table 'ghost'")]
    fn expect_missing_panics() {
        Catalog::new().expect("ghost");
    }
}
