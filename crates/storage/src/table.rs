//! Immutable in-memory tables: a schema plus a vector of shared pages.

use crate::page::{Page, PageBuilder};
use crate::schema::Schema;
use crate::value::Value;
use std::sync::Arc;

/// An immutable, memory-resident table.
///
/// Pages are `Arc`-shared so scans (and shared scans fanning out to
/// multiple consumers) hand out references without copying data.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    pages: Vec<Arc<Page>>,
    row_count: usize,
}

impl Table {
    /// Builds a table directly from pre-built pages — the
    /// materialization path of executors that already produce pages
    /// (e.g. the parallel morsel kernels). Every page must carry
    /// `schema`.
    pub fn from_pages(
        name: impl Into<String>,
        schema: Arc<Schema>,
        pages: Vec<Arc<Page>>,
    ) -> Arc<Table> {
        debug_assert!(pages.iter().all(|p| **p.schema() == *schema));
        let row_count = pages.iter().map(|p| p.rows()).sum();
        Arc::new(Table {
            name: name.into(),
            schema,
            pages,
            row_count,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The table's pages.
    pub fn pages(&self) -> &[Arc<Page>] {
        &self.pages
    }

    /// Total number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Approximate in-memory size in bytes (page payloads).
    pub fn byte_size(&self) -> usize {
        self.pages.iter().map(|p| p.byte_len()).sum()
    }

    /// Iterates over all tuples in page order (test/reference path; the
    /// engine streams pages instead).
    pub fn scan_values(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        self.pages
            .iter()
            .flat_map(|p| p.tuples().map(|t| t.to_values()).collect::<Vec<_>>())
    }
}

/// Accumulates rows into pages and freezes them into a [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Arc<Schema>,
    pages: Vec<Arc<Page>>,
    current: PageBuilder,
    row_count: usize,
    page_size: usize,
}

impl TableBuilder {
    /// Starts a table with the default page size.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>) -> Self {
        Self::with_page_size(name, schema, crate::page::PAGE_SIZE)
    }

    /// Starts a table with a custom page size.
    pub fn with_page_size(name: impl Into<String>, schema: Arc<Schema>, page_size: usize) -> Self {
        Self {
            name: name.into(),
            current: PageBuilder::with_page_size(schema.clone(), page_size),
            schema,
            pages: Vec::new(),
            row_count: 0,
            page_size,
        }
    }

    /// Appends one row.
    pub fn push_row(&mut self, values: &[Value]) {
        if !self.current.push_row(values) {
            let full = std::mem::replace(
                &mut self.current,
                PageBuilder::with_page_size(self.schema.clone(), self.page_size),
            );
            self.pages.push(full.finish());
            assert!(
                self.current.push_row(values),
                "fresh page must accept a row"
            );
        }
        self.row_count += 1;
    }

    /// Freezes into an immutable table.
    pub fn finish(mut self) -> Arc<Table> {
        if !self.current.is_empty() {
            self.pages.push(self.current.finish());
        } else {
            drop(self.current);
        }
        Arc::new(Table {
            name: self.name,
            schema: self.schema,
            pages: self.pages,
            row_count: self.row_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ])
    }

    fn build(n: usize, page_size: usize) -> Arc<Table> {
        let mut b = TableBuilder::with_page_size("t", schema(), page_size);
        for i in 0..n {
            b.push_row(&[Value::Int(i as i64), Value::Float(i as f64 * 0.5)]);
        }
        b.finish()
    }

    #[test]
    fn rows_spill_across_pages() {
        // Row width 16; page of 64 bytes holds 4 rows.
        let t = build(10, 64);
        assert_eq!(t.row_count(), 10);
        assert_eq!(t.pages().len(), 3);
        assert_eq!(t.pages()[0].rows(), 4);
        assert_eq!(t.pages()[2].rows(), 2);
    }

    #[test]
    fn scan_preserves_order_and_values() {
        let t = build(10, 64);
        let keys: Vec<i64> = t
            .scan_values()
            .map(|row| row[0].as_int().unwrap())
            .collect();
        assert_eq!(keys, (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_table() {
        let t = build(0, 64);
        assert_eq!(t.row_count(), 0);
        assert!(t.pages().is_empty());
        assert_eq!(t.byte_size(), 0);
        assert_eq!(t.scan_values().count(), 0);
    }

    #[test]
    fn byte_size_counts_payload() {
        let t = build(4, 64);
        assert_eq!(t.byte_size(), 4 * 16);
        assert_eq!(t.name(), "t");
    }
}
