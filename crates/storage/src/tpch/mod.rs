//! Deterministic TPC-H-subset data generator.
//!
//! Generates the three tables the paper's query mix needs — `customer`,
//! `orders`, `lineitem` — with the value distributions that determine
//! the selectivities of Q1, Q6, Q4 and Q13 (see each field's comment).
//! This is a from-scratch substitute for the official `dbgen` (a
//! substitution documented in DESIGN.md): the experiments measure
//! relative throughput, which depends on selectivities and per-tuple
//! costs, not on absolute scale.
//!
//! Everything is seeded and deterministic: the same
//! [`TpchConfig`] always yields byte-identical tables.

pub mod text;

pub use text::{matches_special_requests, CommentGenerator};

use crate::catalog::Catalog;
use crate::date::Date;
use crate::schema::{DataType, Field, Schema};
use crate::table::{Table, TableBuilder};
use crate::value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// TPC-H's five order priorities (uniformly distributed in `o_orderpriority`).
pub const ORDER_PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"];

/// TPC-H's seven ship modes (uniform in `l_shipmode`).
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// First order date in the population.
pub fn start_date() -> Date {
    Date::from_ymd(1992, 1, 1)
}

/// `CURRENTDATE` used by dbgen to derive `l_returnflag`.
pub fn current_date() -> Date {
    Date::from_ymd(1995, 6, 17)
}

/// Last admissible order date (dbgen: 1998-12-01 minus 121 days, so all
/// derived lineitem dates stay inside 1998).
pub fn end_order_date() -> Date {
    Date::from_ymd(1998, 8, 2)
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchConfig {
    /// Scale factor: SF 1 ≈ 150 k customers / 1.5 M orders / ~6 M
    /// lineitems. The experiments default to SF 0.01.
    pub scale_factor: f64,
    /// RNG seed; every derived stream is a pure function of it.
    pub seed: u64,
    /// Page size for the built tables.
    pub page_size: usize,
    /// Fraction of `o_comment`s containing the `%special%requests%`
    /// pattern that Q13 filters out.
    pub special_comment_rate: f64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self {
            scale_factor: 0.01,
            seed: 0xC0DB_BA5E,
            page_size: crate::page::PAGE_SIZE,
            special_comment_rate: 0.05,
        }
    }
}

impl TpchConfig {
    /// Config at the given scale factor with defaults elsewhere.
    pub fn scale(scale_factor: f64) -> Self {
        Self {
            scale_factor,
            ..Self::default()
        }
    }

    /// Number of customers at this scale.
    pub fn customers(&self) -> usize {
        ((150_000.0 * self.scale_factor).round() as usize).max(1)
    }

    /// Number of orders at this scale.
    pub fn orders(&self) -> usize {
        ((1_500_000.0 * self.scale_factor).round() as usize).max(1)
    }
}

/// Schema of the generated `customer` table.
pub fn customer_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::new("c_custkey", DataType::Int),
        Field::new("c_nationkey", DataType::Int),
        Field::new("c_acctbal", DataType::Float),
        Field::new("c_mktsegment", DataType::Str(10)),
    ])
}

/// Schema of the generated `orders` table.
pub fn orders_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::new("o_orderkey", DataType::Int),
        Field::new("o_custkey", DataType::Int),
        Field::new("o_orderdate", DataType::Date),
        Field::new("o_orderpriority", DataType::Str(15)),
        Field::new("o_comment", DataType::Str(48)),
    ])
}

/// Schema of the generated `lineitem` table.
pub fn lineitem_schema() -> Arc<Schema> {
    Schema::new(vec![
        Field::new("l_orderkey", DataType::Int),
        Field::new("l_quantity", DataType::Float),
        Field::new("l_extendedprice", DataType::Float),
        Field::new("l_discount", DataType::Float),
        Field::new("l_tax", DataType::Float),
        Field::new("l_returnflag", DataType::Str(1)),
        Field::new("l_linestatus", DataType::Str(1)),
        Field::new("l_shipdate", DataType::Date),
        Field::new("l_commitdate", DataType::Date),
        Field::new("l_receiptdate", DataType::Date),
        Field::new("l_shipmode", DataType::Str(10)),
    ])
}

/// Generates the full catalog (`customer`, `orders`, `lineitem`).
pub fn generate(config: &TpchConfig) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(generate_customer(config));
    let (orders, lineitem) = generate_orders_and_lineitem(config);
    catalog.register(orders);
    catalog.register(lineitem);
    catalog
}

/// Generates the `customer` table.
pub fn generate_customer(config: &TpchConfig) -> Arc<Table> {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x01);
    let segments = [
        "AUTOMOBILE",
        "BUILDING",
        "FURNITURE",
        "MACHINERY",
        "HOUSEHOLD",
    ];
    let mut b = TableBuilder::with_page_size("customer", customer_schema(), config.page_size);
    for key in 1..=config.customers() as i64 {
        b.push_row(&[
            Value::Int(key),
            Value::Int(rng.gen_range(0..25)),
            Value::Float(rng.gen_range(-999.99..9999.99)),
            Value::Str(segments[rng.gen_range(0..segments.len())].into()),
        ]);
    }
    b.finish()
}

/// Generates `orders` and its dependent `lineitem` rows together so the
/// foreign-key relationship and date derivations match dbgen's.
pub fn generate_orders_and_lineitem(config: &TpchConfig) -> (Arc<Table>, Arc<Table>) {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x02);
    let mut comments = CommentGenerator::new(config.seed ^ 0x03, config.special_comment_rate);
    let customers = config.customers() as i64;
    let order_span = end_order_date().days_since(start_date());
    let current = current_date();

    let mut orders = TableBuilder::with_page_size("orders", orders_schema(), config.page_size);
    let mut items = TableBuilder::with_page_size("lineitem", lineitem_schema(), config.page_size);

    for orderkey in 1..=config.orders() as i64 {
        let custkey = rng.gen_range(1..=customers);
        let orderdate = start_date().plus_days(rng.gen_range(0..=order_span));
        let priority = ORDER_PRIORITIES[rng.gen_range(0..ORDER_PRIORITIES.len())];
        orders.push_row(&[
            Value::Int(orderkey),
            Value::Int(custkey),
            Value::Date(orderdate),
            Value::Str(priority.into()),
            Value::Str(comments.next_comment(&mut rng)),
        ]);

        // dbgen: 1–7 lineitems per order.
        for _ in 0..rng.gen_range(1..=7) {
            let quantity = rng.gen_range(1..=50) as f64;
            // dbgen prices derive from part retail prices (~900–101000);
            // uniform is selectivity-equivalent for our queries.
            let extendedprice = quantity * rng.gen_range(900.0..=101_000.0) / 100.0;
            let discount = rng.gen_range(0..=10) as f64 / 100.0;
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let shipdate = orderdate.plus_days(rng.gen_range(1..=121));
            let commitdate = orderdate.plus_days(rng.gen_range(30..=90));
            let receiptdate = shipdate.plus_days(rng.gen_range(1..=30));
            let returnflag = if receiptdate <= current {
                if rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > current { "O" } else { "F" };
            items.push_row(&[
                Value::Int(orderkey),
                Value::Float(quantity),
                Value::Float(extendedprice),
                Value::Float(discount),
                Value::Float(tax),
                Value::Str(returnflag.into()),
                Value::Str(linestatus.into()),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::Str(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].into()),
            ]);
        }
    }
    (orders.finish(), items.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TpchConfig {
        TpchConfig {
            scale_factor: 0.002,
            seed: 42,
            ..TpchConfig::default()
        }
    }

    #[test]
    fn row_counts_scale() {
        let cfg = small();
        assert_eq!(cfg.customers(), 300);
        assert_eq!(cfg.orders(), 3000);
        let catalog = generate(&cfg);
        assert_eq!(catalog.expect("customer").row_count(), 300);
        assert_eq!(catalog.expect("orders").row_count(), 3000);
        let li = catalog.expect("lineitem").row_count();
        // 1..=7 per order, expectation 4: allow generous slack.
        assert!((9000..=15000).contains(&li), "lineitem rows = {li}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        for name in ["customer", "orders", "lineitem"] {
            let (ta, tb) = (a.expect(name), b.expect(name));
            assert_eq!(ta.row_count(), tb.row_count());
            let rows_a: Vec<_> = ta.scan_values().collect();
            let rows_b: Vec<_> = tb.scan_values().collect();
            assert_eq!(rows_a, rows_b, "table {name} differs across runs");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small());
        let b = generate(&TpchConfig {
            seed: 43,
            ..small()
        });
        let rows_a: Vec<_> = a.expect("orders").scan_values().take(10).collect();
        let rows_b: Vec<_> = b.expect("orders").scan_values().take(10).collect();
        assert_ne!(rows_a, rows_b);
    }

    #[test]
    fn lineitem_dates_are_consistent() {
        let catalog = generate(&small());
        let orders = catalog.expect("orders");
        let odate: std::collections::HashMap<i64, Date> = orders
            .scan_values()
            .map(|r| (r[0].as_int().unwrap(), r[2].as_date().unwrap()))
            .collect();
        let li = catalog.expect("lineitem");
        let s = li.schema().clone();
        let (k, ship, commit, receipt) = (
            s.index_of("l_orderkey"),
            s.index_of("l_shipdate"),
            s.index_of("l_commitdate"),
            s.index_of("l_receiptdate"),
        );
        for page in li.pages() {
            for t in page.tuples() {
                let od = odate[&t.get_int(k)];
                assert!(t.get_date(ship) > od);
                assert!(t.get_date(receipt) > t.get_date(ship));
                assert!(t.get_date(commit) > od);
            }
        }
    }

    #[test]
    fn returnflag_linestatus_follow_dbgen_rules() {
        let catalog = generate(&small());
        let li = catalog.expect("lineitem");
        let s = li.schema().clone();
        let (rf, ls, ship, receipt) = (
            s.index_of("l_returnflag"),
            s.index_of("l_linestatus"),
            s.index_of("l_shipdate"),
            s.index_of("l_receiptdate"),
        );
        let current = current_date();
        let mut seen = std::collections::BTreeSet::new();
        for page in li.pages() {
            for t in page.tuples() {
                let flag = t.get_str(rf);
                seen.insert(flag.to_string());
                if t.get_date(receipt) <= current {
                    assert!(flag == "R" || flag == "A");
                } else {
                    assert_eq!(flag, "N");
                }
                let status = t.get_str(ls);
                if t.get_date(ship) > current {
                    assert_eq!(status, "O");
                } else {
                    assert_eq!(status, "F");
                }
            }
        }
        // Q1 groups by (returnflag, linestatus): all three flags occur.
        assert_eq!(
            seen.into_iter().collect::<Vec<_>>(),
            vec!["A".to_string(), "N".to_string(), "R".to_string()]
        );
    }

    #[test]
    fn q6_predicate_selectivity_near_tpch() {
        // Official Q6 (year 1994, discount 0.06±0.01, qty < 24) selects
        // ~1.9% of lineitem.
        let catalog = generate(&TpchConfig {
            scale_factor: 0.01,
            seed: 7,
            ..TpchConfig::default()
        });
        let li = catalog.expect("lineitem");
        let s = li.schema().clone();
        let (ship, disc, qty) = (
            s.index_of("l_shipdate"),
            s.index_of("l_discount"),
            s.index_of("l_quantity"),
        );
        let lo = Date::from_ymd(1994, 1, 1);
        let hi = Date::from_ymd(1995, 1, 1);
        let mut hits = 0usize;
        let mut total = 0usize;
        for page in li.pages() {
            for t in page.tuples() {
                total += 1;
                let d = t.get_float(disc);
                if t.get_date(ship) >= lo
                    && t.get_date(ship) < hi
                    && (0.05 - 1e-9..=0.07 + 1e-9).contains(&d)
                    && t.get_float(qty) < 24.0
                {
                    hits += 1;
                }
            }
        }
        let sel = hits as f64 / total as f64;
        assert!((0.008..=0.035).contains(&sel), "Q6 selectivity {sel}");
    }

    #[test]
    fn special_comment_rate_respected() {
        let cfg = TpchConfig {
            special_comment_rate: 0.10,
            ..small()
        };
        let catalog = generate(&cfg);
        let orders = catalog.expect("orders");
        let idx = orders.schema().index_of("o_comment");
        let mut special = 0usize;
        for page in orders.pages() {
            for t in page.tuples() {
                let c = t.get_str(idx);
                if text::matches_special_requests(c) {
                    special += 1;
                }
            }
        }
        let rate = special as f64 / orders.row_count() as f64;
        assert!((0.06..=0.14).contains(&rate), "special rate {rate}");
    }

    #[test]
    fn custkeys_reference_customer_table() {
        let catalog = generate(&small());
        let n = catalog.expect("customer").row_count() as i64;
        let orders = catalog.expect("orders");
        for row in orders.scan_values() {
            let ck = row[1].as_int().unwrap();
            assert!((1..=n).contains(&ck));
        }
    }
}
