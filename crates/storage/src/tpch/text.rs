//! Pseudo-text comment generation for `o_comment`, with a controlled
//! rate of `%special%requests%` matches (the pattern Q13 excludes).

use rand::rngs::SmallRng;
use rand::Rng;

/// Word pool loosely mirroring dbgen's text grammar vocabulary. Words
/// are short so comments fit the fixed-width `Str(48)` column.
const WORDS: [&str; 24] = [
    "furiously",
    "quickly",
    "carefully",
    "blithely",
    "slyly",
    "deposits",
    "packages",
    "accounts",
    "pinto",
    "beans",
    "foxes",
    "ideas",
    "theodolites",
    "platelets",
    "requests",
    "instructions",
    "sleep",
    "haggle",
    "nag",
    "boost",
    "wake",
    "cajole",
    "detect",
    "along",
];

/// Maximum generated comment length (must fit the `o_comment` column).
pub const MAX_COMMENT_LEN: usize = 48;

/// Streaming comment generator with a configured rate of comments
/// matching `LIKE '%special%requests%'`.
#[derive(Debug)]
pub struct CommentGenerator {
    rng: SmallRng,
    special_rate: f64,
}

impl CommentGenerator {
    /// Creates a generator. `special_rate` is clamped to `[0, 1]`.
    pub fn new(seed: u64, special_rate: f64) -> Self {
        use rand::SeedableRng;
        Self {
            rng: SmallRng::seed_from_u64(seed),
            special_rate: special_rate.clamp(0.0, 1.0),
        }
    }

    /// Produces the next comment. An independent `rng` decides the
    /// special/plain split so callers can interleave other draws.
    pub fn next_comment(&mut self, coin: &mut SmallRng) -> String {
        if coin.gen_bool(self.special_rate) {
            self.special_comment()
        } else {
            self.plain_comment()
        }
    }

    /// A comment guaranteed to match `%special%requests%`.
    pub fn special_comment(&mut self) -> String {
        let mid = WORDS[self.rng.gen_range(0..WORDS.len())];
        let mut c = format!("special {mid} requests");
        c.truncate(MAX_COMMENT_LEN);
        c
    }

    /// A comment guaranteed NOT to match `%special%requests%`.
    pub fn plain_comment(&mut self) -> String {
        loop {
            let n = self.rng.gen_range(3..=6);
            let mut c = String::new();
            for i in 0..n {
                if i > 0 {
                    c.push(' ');
                }
                c.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
            }
            c.truncate(MAX_COMMENT_LEN);
            // "requests" alone is fine; reject the rare accidental match.
            if !matches_special_requests(&c) {
                return c;
            }
        }
    }
}

/// SQL `LIKE '%special%requests%'`: "special" somewhere, followed
/// (possibly later) by "requests".
pub fn matches_special_requests(comment: &str) -> bool {
    match comment.find("special") {
        Some(pos) => comment[pos + "special".len()..].contains("requests"),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn like_matcher_semantics() {
        assert!(matches_special_requests("special deposits requests"));
        assert!(matches_special_requests("xxspecialyyrequestszz"));
        assert!(!matches_special_requests("requests before special"));
        assert!(!matches_special_requests("no keywords here"));
        assert!(!matches_special_requests("special only"));
        assert!(!matches_special_requests("only requests"));
    }

    #[test]
    fn special_comments_always_match() {
        let mut g = CommentGenerator::new(1, 1.0);
        for _ in 0..100 {
            let c = g.special_comment();
            assert!(matches_special_requests(&c), "{c}");
            assert!(c.len() <= MAX_COMMENT_LEN);
        }
    }

    #[test]
    fn plain_comments_never_match() {
        let mut g = CommentGenerator::new(2, 0.0);
        for _ in 0..500 {
            let c = g.plain_comment();
            assert!(!matches_special_requests(&c), "{c}");
            assert!(c.len() <= MAX_COMMENT_LEN);
            assert!(c.is_ascii());
        }
    }

    #[test]
    fn rate_zero_and_one_are_exact() {
        let mut coin = SmallRng::seed_from_u64(9);
        let mut g0 = CommentGenerator::new(3, 0.0);
        let mut g1 = CommentGenerator::new(3, 1.0);
        for _ in 0..50 {
            assert!(!matches_special_requests(&g0.next_comment(&mut coin)));
            assert!(matches_special_requests(&g1.next_comment(&mut coin)));
        }
    }

    #[test]
    fn rate_is_clamped() {
        let g = CommentGenerator::new(4, 7.5);
        assert_eq!(g.special_rate, 1.0);
        let g = CommentGenerator::new(4, -1.0);
        assert_eq!(g.special_rate, 0.0);
    }
}
