//! Dynamically-typed cell values, used at tuple-construction and
//! expression-evaluation boundaries.

use crate::date::Date;
use std::fmt;

/// A single cell value.
///
/// Hot paths (scans, predicates) use the typed accessors on
/// [`crate::TupleRef`] instead and never materialize `Value`s; this enum
/// exists for row construction, test assertions and query results.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer (keys, counts).
    Int(i64),
    /// 64-bit float (prices, discounts; TPC-H decimals are modeled as
    /// binary floats — fine for the relative-throughput experiments).
    Float(f64),
    /// Calendar date.
    Date(Date),
    /// Fixed-width string (space-padded in storage, trimmed on read).
    Str(String),
}

impl Value {
    /// Integer value, or `None` for other variants.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float value, or `None` for other variants.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Date value, or `None` for other variants.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, or `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Date(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), None);
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        let d = Date::from_ymd(1994, 1, 1);
        assert_eq!(Value::Date(d).as_date(), Some(d));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(0.05).to_string(), "0.0500");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(
            Value::Date(Date::from_ymd(1998, 12, 1)).to_string(),
            "1998-12-01"
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("a"), Value::Str("a".into()));
    }
}
