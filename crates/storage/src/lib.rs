//! # cordoba-storage — paged in-memory tables + TPC-H generator
//!
//! The paper's engine ("Cordoba", Section 3.2) packs intermediate
//! results into pages "of typical size of 4K" and runs against a
//! memory-resident 1 GB TPC-H database. This crate provides that
//! substrate:
//!
//! * fixed-width row [`Page`]s (default 4 KiB) described by a [`Schema`],
//! * immutable in-memory [`Table`]s composed of shared pages,
//! * a [`Catalog`] of named tables, and
//! * a deterministic, seeded [`tpch`] generator for the `customer`,
//!   `orders` and `lineitem` tables with the value distributions that
//!   queries Q1, Q6, Q4 and Q13 depend on.
//!
//! The generator is a from-scratch substitute for the official `dbgen`
//! (see DESIGN.md): experiments measure *relative* throughput, which
//! depends on selectivities and cost ratios rather than absolute scale,
//! so a scaled-down, distribution-faithful generator preserves the
//! paper's behaviour.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod date;
pub mod morsel;
pub mod page;
pub mod schema;
pub mod spill;
pub mod table;
pub mod tpch;
pub mod value;

pub use catalog::Catalog;
pub use date::Date;
pub use morsel::{morsel_at, morsel_count, morsels, Morsel};
pub use page::{Page, PageBuilder, TupleRef, PAGE_SIZE};
pub use schema::{DataType, Field, Schema};
pub use spill::{SpillFile, SpillReader, SpillWriter};
pub use table::{Table, TableBuilder};
pub use value::Value;
