//! Morsel iteration over a paged table: contiguous page ranges handed
//! out as units of parallel work.
//!
//! A morsel is a half-open page-index range `[start, end)` over a
//! table's page list. Workers claim morsels from a shared counter (see
//! `cordoba_exec::parallel::MorselDispenser`) and process the pages of
//! each claimed range independently; because morsel indices are claimed
//! in increasing order, reassembling per-morsel outputs by morsel index
//! restores the exact sequential row order.

/// A half-open page range `[start, end)` — one unit of parallel work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First page index of the range.
    pub start: usize,
    /// One past the last page index of the range.
    pub end: usize,
}

impl Morsel {
    /// Number of pages in the morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the morsel covers no pages.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// The page indices of the morsel.
    pub fn pages(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Splits `page_count` pages into morsels of at most `granularity`
/// pages. The final morsel may be short; `granularity = 0` is treated
/// as 1. Covers every page exactly once, in order.
pub fn morsels(page_count: usize, granularity: usize) -> impl Iterator<Item = Morsel> {
    let granularity = granularity.max(1);
    (0..page_count.div_ceil(granularity)).map(move |i| Morsel {
        start: i * granularity,
        end: ((i + 1) * granularity).min(page_count),
    })
}

/// The morsel at index `idx` of the `morsels(page_count, granularity)`
/// sequence, or `None` past the end — the random-access form a shared
/// atomic dispenser needs.
pub fn morsel_at(page_count: usize, granularity: usize, idx: usize) -> Option<Morsel> {
    let granularity = granularity.max(1);
    let start = idx.checked_mul(granularity)?;
    if start >= page_count {
        return None;
    }
    Some(Morsel {
        start,
        end: (start + granularity).min(page_count),
    })
}

/// Number of morsels `morsels(page_count, granularity)` yields.
pub fn morsel_count(page_count: usize, granularity: usize) -> usize {
    page_count.div_ceil(granularity.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_tile_the_page_list_exactly() {
        for pages in [0usize, 1, 5, 8, 17, 100] {
            for g in [1usize, 2, 3, 8, 200] {
                let all: Vec<Morsel> = morsels(pages, g).collect();
                assert_eq!(all.len(), morsel_count(pages, g));
                let mut covered = 0;
                for (i, m) in all.iter().enumerate() {
                    assert_eq!(m.start, covered, "contiguous from {covered}");
                    assert!(!m.is_empty());
                    assert!(m.len() <= g);
                    assert_eq!(morsel_at(pages, g, i), Some(*m));
                    covered = m.end;
                }
                assert_eq!(covered, pages, "pages={pages} g={g}");
                assert_eq!(morsel_at(pages, g, all.len()), None);
            }
        }
    }

    #[test]
    fn zero_granularity_behaves_as_one() {
        let all: Vec<Morsel> = morsels(3, 0).collect();
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|m| m.len() == 1));
        assert_eq!(morsel_at(3, 0, 2), Some(Morsel { start: 2, end: 3 }));
    }
}
