//! Integration: the TPC-H-subset generator must be deterministic under
//! a seed, scale linearly, and produce the value distributions the
//! workload queries' selectivities depend on.

use cordoba_storage::tpch::{generate, TpchConfig};
use cordoba_storage::Value;

fn config(scale: f64, seed: u64) -> TpchConfig {
    TpchConfig {
        scale_factor: scale,
        seed,
        ..TpchConfig::default()
    }
}

#[test]
fn generation_is_deterministic_under_seed() {
    let a = generate(&config(0.002, 7));
    let b = generate(&config(0.002, 7));
    for name in ["customer", "orders", "lineitem"] {
        let ta = a.expect(name);
        let tb = b.expect(name);
        assert_eq!(ta.row_count(), tb.row_count(), "{name} row counts differ");
        let rows_a: Vec<Vec<Value>> = ta.scan_values().collect();
        let rows_b: Vec<Vec<Value>> = tb.scan_values().collect();
        assert_eq!(rows_a, rows_b, "{name} rows differ between runs");
    }
}

#[test]
fn different_seeds_produce_different_data() {
    let a = generate(&config(0.002, 7));
    let b = generate(&config(0.002, 8));
    let rows_a: Vec<Vec<Value>> = a.expect("lineitem").scan_values().collect();
    let rows_b: Vec<Vec<Value>> = b.expect("lineitem").scan_values().collect();
    assert_ne!(rows_a, rows_b, "seed must change generated values");
}

#[test]
fn scale_factor_scales_table_sizes() {
    let small = generate(&config(0.002, 1));
    let large = generate(&config(0.008, 1));
    for name in ["customer", "orders", "lineitem"] {
        let s = small.expect(name).row_count();
        let l = large.expect(name).row_count();
        assert!(
            l > 3 * s && l < 5 * s,
            "{name}: 4x scale produced {l} rows from {s}"
        );
    }
}

#[test]
fn lineitem_distributions_support_query_selectivities() {
    // Q6 filters on discount, quantity, and shipdate; all three must
    // cover the ranges its predicate slices, or selectivity collapses
    // to 0/1 and the paper's cost ratios are meaningless.
    let catalog = generate(&config(0.004, 42));
    let lineitem = catalog.expect("lineitem");
    let schema = lineitem.schema();
    let col = |n: &str| {
        schema
            .field_names()
            .iter()
            .position(|f| *f == n)
            .unwrap_or_else(|| panic!("missing column {n}"))
    };
    let (qty_i, disc_i) = (col("l_quantity"), col("l_discount"));
    let mut qty_lo = f64::MAX;
    let mut qty_hi = f64::MIN;
    let mut discounts = std::collections::BTreeSet::new();
    for row in lineitem.scan_values() {
        if let Value::Float(q) = row[qty_i] {
            qty_lo = qty_lo.min(q);
            qty_hi = qty_hi.max(q);
        }
        if let Value::Float(d) = row[disc_i] {
            discounts.insert((d * 100.0).round() as i64);
        }
    }
    assert!(qty_lo < 24.0, "no small quantities (min {qty_lo})");
    assert!(qty_hi >= 24.0, "no large quantities (max {qty_hi})");
    assert!(
        discounts.len() >= 8,
        "discount domain too narrow: {discounts:?}"
    );
}
