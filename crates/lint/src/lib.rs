//! Source-level correctness lints for the cordoba workspace.
//!
//! The engine's hottest invariants live in hand-rolled atomics and
//! `unsafe` gathers; this crate is the static half of the correctness
//! gate (the dynamic half is the `shuttle-lite` model checker and the
//! sanitizer CI legs). Four rules, all line-oriented over a
//! comment/string-stripped view of each file:
//!
//! 1. **`unsafe` hygiene** — every line containing the `unsafe` keyword
//!    must carry a `// SAFETY:` comment on the same line or within the
//!    three lines above, and must live in an allowlisted module (today:
//!    `storage::page`). New `unsafe` anywhere else fails the lint.
//! 2. **Panic-free hot crates** — no `.unwrap()` / `.expect(` /
//!    `panic!` / `unreachable!` / `todo!` / `unimplemented!` in
//!    non-test `exec` / `engine` / `storage` source. Infallible sites
//!    escape with `// lint: allow(reason)` on the same or previous
//!    line; everything else must propagate a typed `ExecError`.
//!    (`assert!` / `debug_assert!` are contract checks, not error
//!    handling, and stay legal.)
//! 3. **Deterministic time** — no `std::time::Instant` / `SystemTime`
//!    in simulator-deterministic modules (`core`, `sim`, `storage`,
//!    `exec`, `engine`, `workload`), excepting the real-thread modules
//!    (`engine::thread_exec`, `exec::parallel`). Virtual time comes
//!    from the scheduler; wall clocks there would break replayability.
//! 4. **`Ordering::Relaxed` allowlist** — every `Ordering::Relaxed`
//!    outside the audited files (`exec::memory`'s monotone peak CAS,
//!    `exec::parallel`'s morsel counter) is flagged, so a new Relaxed
//!    access has to be argued into the allowlist or strengthened.
//!
//! The checks are deliberately lexical: no rustc plumbing, zero
//! dependencies, fast enough to run on every CI push. The stripping
//! pass understands line/block comments (nested), string/char/raw
//! literals, and lifetimes, so tokens inside literals or docs never
//! trip a rule.

use std::fmt;
use std::path::{Path, PathBuf};

/// Which lint rule a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` without an adjacent `// SAFETY:` comment.
    UnsafeNeedsSafety,
    /// `unsafe` outside the allowlisted modules.
    UnsafeOutsideAllowlist,
    /// `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` in non-test hot-crate code without a
    /// `// lint: allow(reason)` escape.
    PanicSite,
    /// `Instant` / `SystemTime` in a simulator-deterministic module.
    NondeterministicClock,
    /// `Ordering::Relaxed` outside the audited allowlist.
    RelaxedOrdering,
}

impl Rule {
    /// Stable machine-readable rule name (printed in offender lines).
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeNeedsSafety => "unsafe-needs-safety",
            Rule::UnsafeOutsideAllowlist => "unsafe-outside-allowlist",
            Rule::PanicSite => "panic-site",
            Rule::NondeterministicClock => "nondeterministic-clock",
            Rule::RelaxedOrdering => "relaxed-ordering",
        }
    }
}

/// One rule violation at a file:line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation with the offending token.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Lint policy: which files each rule applies to. Paths are
/// workspace-relative with forward slashes.
#[derive(Debug, Clone)]
pub struct Config {
    /// Files allowed to contain `unsafe` (still need `// SAFETY:`).
    pub unsafe_allowed_files: Vec<String>,
    /// Path prefixes whose non-test code must be panic-free.
    pub panic_free_prefixes: Vec<String>,
    /// Path prefixes that must not read wall clocks.
    pub deterministic_prefixes: Vec<String>,
    /// Files exempt from the deterministic-time rule (real-thread
    /// modules measured with honest wall clocks).
    pub deterministic_exceptions: Vec<String>,
    /// Files allowed to use `Ordering::Relaxed` (audited sites).
    pub relaxed_allowed_files: Vec<String>,
}

impl Config {
    /// The workspace policy this repo is linted against.
    pub fn workspace() -> Self {
        Config {
            unsafe_allowed_files: vec!["crates/storage/src/page.rs".into()],
            panic_free_prefixes: vec![
                "crates/exec/src".into(),
                "crates/engine/src".into(),
                "crates/storage/src".into(),
            ],
            deterministic_prefixes: vec![
                "crates/core/src".into(),
                "crates/sim/src".into(),
                "crates/storage/src".into(),
                "crates/exec/src".into(),
                "crates/engine/src".into(),
                "crates/workload/src".into(),
            ],
            deterministic_exceptions: vec![
                // Real-thread executors: wall-clock timing is the point.
                "crates/engine/src/thread_exec.rs".into(),
                "crates/exec/src/parallel.rs".into(),
            ],
            relaxed_allowed_files: vec![
                // Monotone peak CAS + morsel hand-out counter: audited
                // in the shuttle-lite model-check suite.
                "crates/exec/src/memory.rs".into(),
                "crates/exec/src/parallel.rs".into(),
                // Work-claim fetch_add counters, same shape as the
                // dispenser's model-checked claim path; result ordering
                // comes from the mpsc channel, not the counter.
                "crates/engine/src/thread_exec.rs".into(),
                // Spill-file name uniquifier: a counter with no
                // synchronization role at all.
                "crates/storage/src/spill.rs".into(),
            ],
        }
    }
}

fn has_prefix(file: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| file.starts_with(p.as_str()))
}

fn listed(file: &str, files: &[String]) -> bool {
    files.iter().any(|f| f == file)
}

/// One source line split into its code and comment halves.
struct StrippedLine {
    /// Code with comment bodies and string/char contents blanked.
    code: String,
    /// Concatenated comment text on the line (for `SAFETY:` /
    /// `lint: allow` detection).
    comment: String,
}

/// Lexer state that survives line breaks.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    /// Inside `/* */`, with nesting depth.
    Block(u32),
    /// Inside a `"` string.
    Str,
    /// Inside a raw string with `n` hashes.
    RawStr(u32),
}

/// Strips comments and literal bodies while preserving line structure.
/// Comment text is captured separately so adjacency rules (`SAFETY:`,
/// `lint: allow`) can still see it.
fn strip(source: &str) -> Vec<StrippedLine> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw in source.lines() {
        let b = raw.as_bytes();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            match mode {
                Mode::Block(depth) => {
                    if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        mode = if depth > 1 {
                            Mode::Block(depth - 1)
                        } else {
                            Mode::Code
                        };
                        i += 2;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        mode = Mode::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(b[i] as char);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if b[i] == b'\\' {
                        i += 2; // escape: skip the escaped byte
                    } else if b[i] == b'"' {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if b[i] == b'"' {
                        let h = hashes as usize;
                        if b[i + 1..].len() >= h && b[i + 1..i + 1 + h].iter().all(|&c| c == b'#') {
                            code.push('"');
                            mode = Mode::Code;
                            i += 1 + h;
                            continue;
                        }
                    }
                    code.push(' ');
                    i += 1;
                }
                Mode::Code => {
                    match b[i] {
                        b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                            // Line comment: rest of the line is comment.
                            comment.push_str(&raw[i + 2..]);
                            i = b.len();
                        }
                        b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                            mode = Mode::Block(1);
                            i += 2;
                        }
                        b'"' => {
                            code.push('"');
                            mode = Mode::Str;
                            i += 1;
                        }
                        b'r' | b'b'
                            if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') =>
                        {
                            // r"..." / r#"..."# / b"..." raw-ish starts.
                            let mut j = i + 1;
                            if b[i] == b'b' && j < b.len() && b[j] == b'r' {
                                j += 1;
                            }
                            let mut hashes = 0u32;
                            while j < b.len() && b[j] == b'#' {
                                hashes += 1;
                                j += 1;
                            }
                            if j < b.len() && b[j] == b'"' {
                                code.push('"');
                                mode = if hashes > 0 || b[i] == b'r' {
                                    Mode::RawStr(hashes)
                                } else {
                                    Mode::Str
                                };
                                i = j + 1;
                            } else {
                                code.push(b[i] as char);
                                i += 1;
                            }
                        }
                        b'\'' => {
                            // Char literal vs lifetime: a literal is
                            // '\..' or 'x' followed by a closing quote.
                            let is_char = i + 1 < b.len()
                                && (b[i + 1] == b'\\' || (i + 2 < b.len() && b[i + 2] == b'\''));
                            if is_char {
                                let mut j = i + 1;
                                if b[j] == b'\\' {
                                    j += 2; // skip escape lead
                                    while j < b.len() && b[j] != b'\'' {
                                        j += 1;
                                    }
                                } else {
                                    j += 1;
                                }
                                code.push('\'');
                                code.push(' ');
                                code.push('\'');
                                i = (j + 1).min(b.len());
                            } else {
                                code.push('\'');
                                i += 1;
                            }
                        }
                        c => {
                            code.push(c as char);
                            i += 1;
                        }
                    }
                }
            }
        }
        out.push(StrippedLine { code, comment });
    }
    out
}

/// Marks lines inside `#[cfg(test)]`-gated items (the module or fn that
/// follows the attribute, brace-balanced on stripped code).
fn test_region_mask(lines: &[StrippedLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim();
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            // Skip forward to the gated item's opening brace, then
            // mask until it balances.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = true;
                for ch in lines[j].code.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Whether `needle` occurs in `hay` bounded by non-identifier chars.
fn word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Whether line `idx` (or the line above it) carries a
/// `lint: allow(reason)` escape comment.
fn has_allow(lines: &[StrippedLine], idx: usize) -> bool {
    let here = &lines[idx].comment;
    if here.contains("lint: allow(") {
        return true;
    }
    idx > 0 && lines[idx - 1].comment.contains("lint: allow(")
}

/// Whether a `SAFETY:` comment is adjacent to line `idx` (same line or
/// up to three lines above — comments may span the proof).
fn has_safety(lines: &[StrippedLine], idx: usize) -> bool {
    let lo = idx.saturating_sub(3);
    lines[lo..=idx]
        .iter()
        .any(|l| l.comment.contains("SAFETY:"))
}

/// Lints one file's source. `file` is the workspace-relative path used
/// for rule scoping and reporting.
pub fn lint_source(file: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let lines = strip(source);
    let tests = test_region_mask(&lines);
    let mut findings = Vec::new();
    let mut push = |line: usize, rule: Rule, message: String| {
        findings.push(Finding {
            file: file.to_string(),
            line: line + 1,
            rule,
            message,
        });
    };
    let panic_scoped = has_prefix(file, &cfg.panic_free_prefixes);
    let det_scoped = has_prefix(file, &cfg.deterministic_prefixes)
        && !listed(file, &cfg.deterministic_exceptions);
    for (i, l) in lines.iter().enumerate() {
        let code = &l.code;
        // Rule 1: unsafe hygiene (workspace-wide, tests included —
        // unchecked reads in a test are as unsound as anywhere).
        if word(code, "unsafe") {
            if !listed(file, &cfg.unsafe_allowed_files) {
                push(
                    i,
                    Rule::UnsafeOutsideAllowlist,
                    "`unsafe` outside the allowlisted modules (storage::page); \
                     extend Config::workspace() only with a reviewed bounds proof"
                        .into(),
                );
            }
            if !has_safety(&lines, i) {
                push(
                    i,
                    Rule::UnsafeNeedsSafety,
                    "`unsafe` without an adjacent `// SAFETY:` comment stating the proof".into(),
                );
            }
        }
        if tests[i] {
            continue; // remaining rules apply to non-test code only
        }
        // Rule 2: panic-free hot crates.
        if panic_scoped && !has_allow(&lines, i) {
            for tok in [
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ] {
                if code.contains(tok) {
                    push(
                        i,
                        Rule::PanicSite,
                        format!(
                            "`{tok}` in non-test hot-path code: propagate a typed ExecError, \
                             or mark the site infallible with `// lint: allow(reason)`"
                        ),
                    );
                }
            }
        }
        // Rule 3: deterministic time.
        if det_scoped && (word(code, "Instant") || word(code, "SystemTime")) {
            push(
                i,
                Rule::NondeterministicClock,
                "wall-clock read in a simulator-deterministic module; use virtual time \
                 (VTime) or move the code to a real-thread module"
                    .into(),
            );
        }
        // Rule 4: Relaxed-ordering allowlist.
        if code.contains("Ordering::Relaxed") && !listed(file, &cfg.relaxed_allowed_files) {
            push(
                i,
                Rule::RelaxedOrdering,
                "`Ordering::Relaxed` outside the audited allowlist; strengthen the ordering \
                 or argue the site into Config::workspace() with a model-check test"
                    .into(),
            );
        }
    }
    findings
}

/// Recursively collects `.rs` files under `dir`.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every crate source tree under `root` (`crates/*/src` plus the
/// facade `src/`). Returns findings plus the number of files scanned.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<_> = std::fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                rs_files(&src, &mut files)?;
            }
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        rs_files(&facade, &mut files)?;
    }
    let mut findings = Vec::new();
    let scanned = files.len();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &source, cfg));
    }
    Ok((findings, scanned))
}

/// Lints an explicit list of files or directories (CI's seeded-
/// violation check points this at a temp dir). Paths are reported as
/// given.
pub fn lint_paths(paths: &[PathBuf], cfg: &Config) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            rs_files(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    let mut findings = Vec::new();
    let scanned = files.len();
    for path in files {
        let rel = path.to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &source, cfg));
    }
    Ok((findings, scanned))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A config that scopes every rule onto the probed file name.
    fn cfg_for(file: &str) -> Config {
        Config {
            unsafe_allowed_files: vec![],
            panic_free_prefixes: vec![file.to_string()],
            deterministic_prefixes: vec![file.to_string()],
            deterministic_exceptions: vec![],
            relaxed_allowed_files: vec![],
        }
    }

    fn rules(src: &str) -> Vec<Rule> {
        lint_source("probe.rs", src, &cfg_for("probe.rs"))
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn seeded_unsafe_without_safety_is_caught() {
        let got = rules("fn f() { unsafe { core::hint::unreachable_unchecked() } }");
        assert!(got.contains(&Rule::UnsafeOutsideAllowlist), "{got:?}");
        assert!(got.contains(&Rule::UnsafeNeedsSafety), "{got:?}");
    }

    #[test]
    fn safety_comment_within_three_lines_satisfies_rule_one_half() {
        let src = "// SAFETY: i is proved in range above.\n\
                   // (second proof line)\n\
                   fn f(p: *const u8) { let _ = unsafe { *p }; }";
        let got = rules(src);
        assert!(!got.contains(&Rule::UnsafeNeedsSafety), "{got:?}");
        // Still outside the allowlist.
        assert!(got.contains(&Rule::UnsafeOutsideAllowlist), "{got:?}");
    }

    #[test]
    fn allowlisted_file_with_safety_is_clean() {
        let mut cfg = cfg_for("page.rs");
        cfg.unsafe_allowed_files = vec!["page.rs".into()];
        let src = "// SAFETY: bounds proved per page.\nfn f(p: *const u8) { unsafe { p.read() }; }";
        let got = lint_source("page.rs", src, &cfg);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn seeded_panic_sites_are_caught() {
        for src in [
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }",
            "fn f(x: Option<u8>) -> u8 { x.expect(\"set\") }",
            "fn f() { panic!(\"boom\") }",
            "fn f() { unreachable!() }",
            "fn f() { todo!() }",
            "fn f() { unimplemented!() }",
        ] {
            let got = rules(src);
            assert_eq!(got, vec![Rule::PanicSite], "{src}");
        }
    }

    #[test]
    fn lint_allow_escape_suppresses_panic_rule() {
        let same = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(len checked above)";
        assert!(rules(same).is_empty());
        let above = "// lint: allow(constructor guarantees Some)\n\
                     fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(rules(above).is_empty());
    }

    #[test]
    fn unwrap_or_variants_and_asserts_are_legal() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   assert!(true);\n\
                   debug_assert_eq!(1, 1);\n\
                   x.unwrap_or(0).max(x.unwrap_or_else(|| 1)).max(x.unwrap_or_default())\n\
                   }";
        assert!(rules(src).is_empty(), "{:?}", rules(src));
    }

    #[test]
    fn test_modules_are_exempt_from_panic_rule() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   #[test]\n\
                   fn t() { Some(1).unwrap(); panic!(\"fine in tests\"); }\n\
                   }";
        assert!(rules(src).is_empty(), "{:?}", rules(src));
    }

    #[test]
    fn panic_after_test_module_is_still_caught() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { Some(1).unwrap(); }\n\
                   }\n\
                   fn prod(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules(src), vec![Rule::PanicSite]);
    }

    #[test]
    fn tokens_inside_strings_and_comments_do_not_trip() {
        let src = "fn f() -> &'static str {\n\
                   // This comment mentions panic! and .unwrap() and unsafe.\n\
                   /* block comment: Ordering::Relaxed, Instant */\n\
                   \"panic! .unwrap() unsafe Ordering::Relaxed Instant SystemTime\"\n\
                   }";
        assert!(rules(src).is_empty(), "{:?}", rules(src));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let src = "fn f() -> &'static str { r#\"panic! unsafe \"quoted\" Instant\"# }";
        assert!(rules(src).is_empty(), "{:?}", rules(src));
    }

    #[test]
    fn seeded_clock_reads_are_caught() {
        let got = rules("use std::time::Instant;\nfn f() { let _t = Instant::now(); }");
        assert_eq!(got, vec![Rule::NondeterministicClock; 2]);
        let got = rules("fn f() { let _ = std::time::SystemTime::now(); }");
        assert_eq!(got, vec![Rule::NondeterministicClock]);
    }

    #[test]
    fn clock_rule_skips_exempt_and_unscoped_files() {
        let mut cfg = cfg_for("sim.rs");
        cfg.deterministic_exceptions = vec!["sim.rs".into()];
        let src = "use std::time::Instant;";
        assert!(lint_source("sim.rs", src, &cfg).is_empty());
        assert!(lint_source("other.rs", src, &cfg).is_empty());
    }

    #[test]
    fn identifier_containing_instant_does_not_trip() {
        assert!(rules("fn f(instantaneous: u8, x: InstantLike) {}").is_empty());
    }

    #[test]
    fn seeded_relaxed_ordering_is_caught() {
        let got = rules("fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }");
        assert_eq!(got, vec![Rule::RelaxedOrdering]);
    }

    #[test]
    fn relaxed_in_allowlisted_file_is_clean() {
        let mut cfg = cfg_for("memory.rs");
        cfg.relaxed_allowed_files = vec!["memory.rs".into()];
        let src = "fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }";
        assert!(lint_source("memory.rs", src, &cfg).is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_lex_cleanly() {
        // A brace in a char literal must not corrupt the test-region
        // brace balance; lifetimes must not open a bogus literal.
        let src = "fn f<'a>(x: &'a str) -> char { '{' }\n\
                   #[cfg(test)]\n\
                   mod tests { fn t() { Some('}').unwrap(); } }\n\
                   fn prod(o: Option<u8>) -> u8 { o.unwrap() }";
        assert_eq!(rules(src), vec![Rule::PanicSite]);
    }

    #[test]
    fn findings_carry_one_based_lines_and_display() {
        let f = &lint_source("probe.rs", "\nfn f() { panic!() }", &cfg_for("probe.rs"))[0];
        assert_eq!(f.line, 2);
        let shown = f.to_string();
        assert!(shown.starts_with("probe.rs:2: [panic-site]"), "{shown}");
    }

    #[test]
    fn workspace_config_names_existing_files() {
        // Guard against the allowlists rotting as files move.
        let cfg = Config::workspace();
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for f in cfg
            .unsafe_allowed_files
            .iter()
            .chain(&cfg.deterministic_exceptions)
            .chain(&cfg.relaxed_allowed_files)
        {
            assert!(root.join(f).is_file(), "allowlisted file {f} is gone");
        }
    }

    #[test]
    fn workspace_lint_is_clean() {
        // The gate CI enforces: the whole workspace under the real
        // policy, from inside the test suite too.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let (findings, scanned) =
            lint_workspace(&root, &Config::workspace()).expect("workspace readable");
        assert!(scanned > 50, "expected the full tree, scanned {scanned}");
        let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(
            findings.is_empty(),
            "workspace lint violations:\n{}",
            rendered.join("\n")
        );
    }
}
