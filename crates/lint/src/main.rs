//! `cordoba-lint`: the workspace's source-level correctness gate.
//!
//! ```text
//! cargo run --release -p cordoba-lint            # lint the workspace
//! cargo run --release -p cordoba-lint -- --paths <file-or-dir>...
//! ```
//!
//! Exit code 0 when clean, 1 on violations (one `file:line: [rule]
//! message` offender line each), 2 on usage/IO errors. `--paths` lints
//! an explicit file set under the same policy — CI uses it to prove the
//! gate actually fails on a seeded violation.

use cordoba_lint::{lint_paths, lint_workspace, Config};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // Prefer the invocation directory (CI runs from the repo root);
    // fall back to the compile-time manifest location for `cargo run`
    // from anywhere inside the tree.
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("crates").is_dir() && cwd.join("Cargo.toml").is_file() {
        return cwd;
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = Config::workspace();
    let result = match args.split_first() {
        None => lint_workspace(&workspace_root(), &cfg),
        Some((flag, rest)) if flag == "--paths" && !rest.is_empty() => {
            let paths: Vec<PathBuf> = rest.iter().map(PathBuf::from).collect();
            lint_paths(&paths, &cfg)
        }
        _ => {
            eprintln!("usage: cordoba-lint [--paths <file-or-dir>...]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok((findings, scanned)) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("cordoba-lint: {scanned} files scanned, 0 violations");
                ExitCode::SUCCESS
            } else {
                println!(
                    "cordoba-lint: {scanned} files scanned, {} violation(s)",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("cordoba-lint: {err}");
            ExitCode::from(2)
        }
    }
}
